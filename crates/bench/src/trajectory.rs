//! The library half of the `trajectory_check` regression gate: comparing a
//! directory of freshly generated `BENCH_*.json` documents against the
//! committed trajectory. See the binary's docs for the rules; keeping the
//! logic here makes it unit-testable.

use std::fmt;
use std::path::Path;

/// One violated rule.
#[derive(Debug, Clone)]
pub struct TrajectoryViolation {
    /// File the violation was found in.
    pub file: String,
    /// Human-readable description of what regressed.
    pub what: String,
}

/// The outcome of one trajectory comparison.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryReport {
    /// Number of documents compared.
    pub documents: usize,
    /// Per-speedup comparison lines (for the build log).
    pub comparisons: Vec<String>,
    /// Every violated rule.
    pub violations: Vec<TrajectoryViolation>,
}

impl TrajectoryReport {
    /// True when at least one rule was violated.
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

impl fmt::Display for TrajectoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in &self.comparisons {
            writeln!(f, "  {line}")?;
        }
        for violation in &self.violations {
            writeln!(f, "REGRESSION [{}]: {}", violation.file, violation.what)?;
        }
        Ok(())
    }
}

/// Recursively collects the value of every boolean field whose name matches
/// `wanted` (exactly, or with a `_`-joined prefix, e.g. both
/// `decisions_match` and `crash_restart_decisions_match`).
fn bool_flags(value: &serde_json::Value, path: &str, wanted: &str, out: &mut Vec<(String, bool)>) {
    match value {
        serde_json::Value::Object(map) => {
            for (key, child) in map.iter() {
                let child_path =
                    if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                if key == wanted || key.ends_with(&format!("_{wanted}")) {
                    if let Some(flag) = child.as_bool() {
                        out.push((child_path.clone(), flag));
                    }
                }
                bool_flags(child, &child_path, wanted, out);
            }
        }
        serde_json::Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                bool_flags(item, &format!("{path}[{i}]"), wanted, out);
            }
        }
        _ => {}
    }
}

/// The numeric `summary` fields whose names end in `suffix`.
fn summary_metrics(doc: &serde_json::Value, suffix: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(summary) =
        doc.as_object().and_then(|o| o.get("summary")).and_then(|s| s.as_object())
    {
        for (key, value) in summary.iter() {
            if key.ends_with(suffix) {
                if let Some(v) = value.as_f64() {
                    out.push((key.clone(), v));
                }
            }
        }
    }
    out
}

/// Recursively collects the `.`-joined path of every leaf (non-object)
/// value under a JSON object tree. Metric names already contain dots and
/// braces (`service.requests{shard=0}`), but both sides of the comparison
/// are built by this same function, so whole-path equality is what matters,
/// not separator parsing.
fn leaf_paths(value: &serde_json::Value, path: &str, out: &mut Vec<String>) {
    match value {
        serde_json::Value::Object(map) => {
            if map.is_empty() {
                out.push(path.to_string());
            }
            for (key, child) in map.iter() {
                let child_path =
                    if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                leaf_paths(child, &child_path, out);
            }
        }
        _ => out.push(path.to_string()),
    }
}

/// Compares one fresh document against its committed counterpart, appending
/// findings to `report`.
pub fn check_document(
    file: &str,
    fresh: &serde_json::Value,
    committed: &serde_json::Value,
    tolerance: f64,
    report: &mut TrajectoryReport,
) {
    report.documents += 1;

    // Rule 1: every gated boolean flag in the fresh document must hold —
    // decisions_match (the modes reached identical decisions),
    // live_set_bounded (a retention policy's live set stopped growing) and
    // recovered_identical (every recovery path rebuilt byte-identical
    // durable state).
    const GATED_FLAGS: [(&str, &str); 4] = [
        ("decisions_match", "the modes no longer reach identical decisions"),
        ("live_set_bounded", "the retention live set grows with history"),
        ("recovered_identical", "recovery no longer rebuilds byte-identical state"),
        ("converged_after_heal", "a healed partition no longer reconverges"),
    ];
    for (wanted, meaning) in GATED_FLAGS {
        let mut flags = Vec::new();
        bool_flags(fresh, "", wanted, &mut flags);
        for (path, flag) in flags {
            if !flag {
                report.violations.push(TrajectoryViolation {
                    file: file.to_string(),
                    what: format!("{path} is false — {meaning}"),
                });
            }
        }
    }

    // Rule 2: summary speedups may not regress past the tolerance. The
    // committed value is the reference; fresh >= committed * (1 - tolerance).
    let committed_speedups = summary_metrics(committed, "speedup");
    let fresh_speedups = summary_metrics(fresh, "speedup");
    for (key, reference) in committed_speedups {
        match fresh_speedups.iter().find(|(k, _)| *k == key) {
            Some((_, measured)) => {
                let floor = reference * (1.0 - tolerance);
                report.comparisons.push(format!(
                    "{file}: {key} committed {reference:.3} fresh {measured:.3} (floor {floor:.3})"
                ));
                if *measured < floor {
                    report.violations.push(TrajectoryViolation {
                        file: file.to_string(),
                        what: format!(
                            "summary.{key} regressed: committed {reference:.3}, fresh \
                             {measured:.3} (> {:.0}% below)",
                            tolerance * 100.0
                        ),
                    });
                }
            }
            None => report.violations.push(TrajectoryViolation {
                file: file.to_string(),
                what: format!("summary.{key} disappeared from the fresh document"),
            }),
        }
    }

    // Rule 3: tail latencies are gated the other way round — a summary
    // field ending in `p99_ms` is lower-is-better, so the fresh value must
    // stay within fresh <= committed * (1 + tolerance).
    let committed_tails = summary_metrics(committed, "p99_ms");
    let fresh_tails = summary_metrics(fresh, "p99_ms");
    for (key, reference) in committed_tails {
        match fresh_tails.iter().find(|(k, _)| *k == key) {
            Some((_, measured)) => {
                let ceiling = reference * (1.0 + tolerance);
                report.comparisons.push(format!(
                    "{file}: {key} committed {reference:.3} fresh {measured:.3} \
                     (ceiling {ceiling:.3})"
                ));
                if *measured > ceiling {
                    report.violations.push(TrajectoryViolation {
                        file: file.to_string(),
                        what: format!(
                            "summary.{key} regressed: committed {reference:.3} ms, fresh \
                             {measured:.3} ms (> {:.0}% above)",
                            tolerance * 100.0
                        ),
                    });
                }
            }
            None => report.violations.push(TrajectoryViolation {
                file: file.to_string(),
                what: format!("summary.{key} disappeared from the fresh document"),
            }),
        }
    }

    // Rule 4: observability coverage may not silently shrink. Every leaf
    // key under the committed document's `metrics` section (counter, gauge
    // and histogram-quantile names) must still be present in the fresh
    // document — an instrumented code path that stops reporting would
    // otherwise drop out of the trajectory unnoticed. Values are not gated
    // (they are raw counts, not ratios); only presence is.
    if let Some(committed_metrics) = committed.as_object().and_then(|o| o.get("metrics")) {
        let mut wanted = Vec::new();
        leaf_paths(committed_metrics, "metrics", &mut wanted);
        let mut present = Vec::new();
        if let Some(fresh_metrics) = fresh.as_object().and_then(|o| o.get("metrics")) {
            leaf_paths(fresh_metrics, "metrics", &mut present);
        }
        for path in wanted {
            if !present.contains(&path) {
                report.violations.push(TrajectoryViolation {
                    file: file.to_string(),
                    what: format!("{path} disappeared — an instrumented path stopped reporting"),
                });
            }
        }
    }
}

/// Compares every `BENCH_*.json` of the committed directory against the
/// fresh directory. Errors only when the directories cannot be read; a
/// missing or unparsable fresh document is a violation, not an error.
pub fn check_trajectory(
    fresh_dir: &Path,
    committed_dir: &Path,
    tolerance: f64,
) -> std::io::Result<TrajectoryReport> {
    let mut report = TrajectoryReport::default();
    let mut names: Vec<String> = std::fs::read_dir(committed_dir)?
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.file_name().to_string_lossy().into_owned())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    names.sort();
    for name in names {
        let committed: serde_json::Value = match std::fs::read_to_string(committed_dir.join(&name))
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
        {
            Some(doc) => doc,
            None => {
                report.violations.push(TrajectoryViolation {
                    file: name.clone(),
                    what: "committed document is unreadable".to_string(),
                });
                continue;
            }
        };
        let fresh: serde_json::Value = match std::fs::read_to_string(fresh_dir.join(&name))
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
        {
            Some(doc) => doc,
            None => {
                report.violations.push(TrajectoryViolation {
                    file: name.clone(),
                    what: format!(
                        "fresh document missing or unreadable under {}",
                        fresh_dir.display()
                    ),
                });
                continue;
            }
        };
        check_document(&name, &fresh, &committed, tolerance, &mut report);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(speedup: f64, decisions: bool) -> serde_json::Value {
        serde_json::from_str(&format!(
            r#"{{"benchmark":"churn","rows":[{{"x":1}}],
                "summary":{{"store_speedup":{speedup},"decisions_match":{decisions}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn matching_documents_pass() {
        let mut report = TrajectoryReport::default();
        check_document("BENCH_x.json", &doc(1.5, true), &doc(1.5, true), 0.25, &mut report);
        assert!(!report.failed());
        assert_eq!(report.documents, 1);
        assert_eq!(report.comparisons.len(), 1);
    }

    #[test]
    fn small_regressions_are_tolerated_large_ones_fail() {
        let mut report = TrajectoryReport::default();
        // 1.5 -> 1.2 is a 20% drop: inside the 25% tolerance.
        check_document("BENCH_x.json", &doc(1.2, true), &doc(1.5, true), 0.25, &mut report);
        assert!(!report.failed());
        // 1.5 -> 1.0 is a 33% drop: regression.
        check_document("BENCH_x.json", &doc(1.0, true), &doc(1.5, true), 0.25, &mut report);
        assert!(report.failed());
        assert!(format!("{report}").contains("regressed"));
    }

    #[test]
    fn false_decision_flags_fail_wherever_they_hide() {
        let mut report = TrajectoryReport::default();
        check_document("BENCH_x.json", &doc(2.0, false), &doc(1.5, true), 0.25, &mut report);
        assert!(report.failed());

        // Nested flags (e.g. crash_restart_decisions_match inside summary,
        // or flags inside row arrays) are found too.
        let nested: serde_json::Value = serde_json::from_str(
            r#"{"summary":{"crash_restart_decisions_match":false},"rows":[{"decisions_match":false}]}"#,
        )
        .unwrap();
        let mut report = TrajectoryReport::default();
        check_document("BENCH_y.json", &nested, &nested, 0.25, &mut report);
        assert_eq!(report.violations.len(), 2);
    }

    #[test]
    fn false_live_set_bounded_flags_fail() {
        let doc_with = |bounded: bool| -> serde_json::Value {
            serde_json::from_str(&format!(
                r#"{{"summary":{{"live_set_speedup":3.0,"live_set_bounded":{bounded},"decisions_match":true}}}}"#
            ))
            .unwrap()
        };
        let mut report = TrajectoryReport::default();
        check_document("BENCH_r.json", &doc_with(true), &doc_with(true), 0.25, &mut report);
        assert!(!report.failed());
        let mut report = TrajectoryReport::default();
        check_document("BENCH_r.json", &doc_with(false), &doc_with(true), 0.25, &mut report);
        assert!(report.failed());
        assert!(format!("{report}").contains("live set"));
        // The live-set speedup is also regression-gated like any speedup.
        let shrunk: serde_json::Value = serde_json::from_str(
            r#"{"summary":{"live_set_speedup":1.0,"live_set_bounded":true,"decisions_match":true}}"#,
        )
        .unwrap();
        let mut report = TrajectoryReport::default();
        check_document("BENCH_r.json", &shrunk, &doc_with(true), 0.25, &mut report);
        assert!(report.failed());
    }

    #[test]
    fn false_recovered_identical_flags_fail() {
        let doc_with = |identical: bool| -> serde_json::Value {
            serde_json::from_str(&format!(
                r#"{{"recovery":[{{"recovered_identical":true}},{{"recovered_identical":{identical}}}],
                    "summary":{{"replay_speedup":10.0,"decisions_match":true}}}}"#
            ))
            .unwrap()
        };
        let mut report = TrajectoryReport::default();
        check_document("BENCH_d.json", &doc_with(true), &doc_with(true), 0.25, &mut report);
        assert!(!report.failed());
        let mut report = TrajectoryReport::default();
        check_document("BENCH_d.json", &doc_with(false), &doc_with(true), 0.25, &mut report);
        assert!(report.failed());
        assert!(format!("{report}").contains("byte-identical"));
        // The replay speedup is regression-gated like any summary speedup.
        let slower: serde_json::Value = serde_json::from_str(
            r#"{"recovery":[{"recovered_identical":true}],
                "summary":{"replay_speedup":5.0,"decisions_match":true}}"#,
        )
        .unwrap();
        let mut report = TrajectoryReport::default();
        check_document("BENCH_d.json", &slower, &doc_with(true), 0.25, &mut report);
        assert!(report.failed());
    }

    #[test]
    fn false_converged_after_heal_flags_fail() {
        let doc_with = |converged: bool| -> serde_json::Value {
            serde_json::from_str(&format!(
                r#"{{"summary":{{"publish_concurrency_speedup":5.0,
                    "converged_after_heal":{converged},"decisions_match":true}}}}"#
            ))
            .unwrap()
        };
        let mut report = TrajectoryReport::default();
        check_document("BENCH_o.json", &doc_with(true), &doc_with(true), 0.25, &mut report);
        assert!(!report.failed());
        let mut report = TrajectoryReport::default();
        check_document("BENCH_o.json", &doc_with(false), &doc_with(true), 0.25, &mut report);
        assert!(report.failed());
        assert!(format!("{report}").contains("reconverges"));
        // The publish-concurrency speedup is regression-gated like any
        // summary speedup.
        let slower: serde_json::Value = serde_json::from_str(
            r#"{"summary":{"publish_concurrency_speedup":3.0,
                "converged_after_heal":true,"decisions_match":true}}"#,
        )
        .unwrap();
        let mut report = TrajectoryReport::default();
        check_document("BENCH_o.json", &slower, &doc_with(true), 0.25, &mut report);
        assert!(report.failed());
    }

    #[test]
    fn tail_latencies_are_gated_lower_is_better() {
        let doc_with = |p99: f64| -> serde_json::Value {
            serde_json::from_str(&format!(
                r#"{{"summary":{{"session_p99_ms":{p99},"session_p50_ms":1.0,
                    "decisions_match":true}}}}"#
            ))
            .unwrap()
        };
        // Equal and *improved* (lower) tails pass.
        let mut report = TrajectoryReport::default();
        check_document("BENCH_s.json", &doc_with(8.0), &doc_with(8.0), 0.25, &mut report);
        check_document("BENCH_s.json", &doc_with(2.0), &doc_with(8.0), 0.25, &mut report);
        assert!(!report.failed());
        assert!(format!("{report}").contains("ceiling"));
        // 8 -> 9.5 is a 19% rise: inside the 25% tolerance.
        let mut report = TrajectoryReport::default();
        check_document("BENCH_s.json", &doc_with(9.5), &doc_with(8.0), 0.25, &mut report);
        assert!(!report.failed());
        // 8 -> 11 is a 37% rise: regression.
        let mut report = TrajectoryReport::default();
        check_document("BENCH_s.json", &doc_with(11.0), &doc_with(8.0), 0.25, &mut report);
        assert!(report.failed());
        assert!(format!("{report}").contains("above"));
        // A vanished tail metric is a violation too.
        let gone: serde_json::Value =
            serde_json::from_str(r#"{"summary":{"decisions_match":true}}"#).unwrap();
        let mut report = TrajectoryReport::default();
        check_document("BENCH_s.json", &gone, &doc_with(8.0), 0.25, &mut report);
        assert!(report.failed());
        assert!(format!("{report}").contains("disappeared"));
        // Only the p99 tail is gated; p50 is informational.
        let p50_worse: serde_json::Value = serde_json::from_str(
            r#"{"summary":{"session_p99_ms":8.0,"session_p50_ms":99.0,"decisions_match":true}}"#,
        )
        .unwrap();
        let mut report = TrajectoryReport::default();
        check_document("BENCH_s.json", &p50_worse, &doc_with(8.0), 0.25, &mut report);
        assert!(!report.failed());
    }

    #[test]
    fn disappeared_metric_keys_fail_new_keys_and_changed_values_pass() {
        let committed: serde_json::Value = serde_json::from_str(
            r#"{"summary":{"decisions_match":true},
                "metrics":{"service":{"counters":{"service.requests":100,
                                                  "service.requests{shard=0}":40},
                           "histograms":{"service.batch_frames":{"count":5,"p99":8}}}}}"#,
        )
        .unwrap();
        // Same keys, different values, plus a brand-new counter: fine.
        let grown: serde_json::Value = serde_json::from_str(
            r#"{"summary":{"decisions_match":true},
                "metrics":{"service":{"counters":{"service.requests":7,
                                                  "service.requests{shard=0}":3,
                                                  "wal.appends":1},
                           "histograms":{"service.batch_frames":{"count":2,"p99":4}}}}}"#,
        )
        .unwrap();
        let mut report = TrajectoryReport::default();
        check_document("BENCH_m.json", &grown, &committed, 0.25, &mut report);
        assert!(!report.failed(), "{report}");
        // A dropped counter and a dropped histogram quantile each fail.
        let shrunk: serde_json::Value = serde_json::from_str(
            r#"{"summary":{"decisions_match":true},
                "metrics":{"service":{"counters":{"service.requests":7},
                           "histograms":{"service.batch_frames":{"count":2}}}}}"#,
        )
        .unwrap();
        let mut report = TrajectoryReport::default();
        check_document("BENCH_m.json", &shrunk, &committed, 0.25, &mut report);
        assert_eq!(report.violations.len(), 2, "{report}");
        assert!(format!("{report}").contains("service.requests{shard=0}"));
        assert!(format!("{report}").contains("stopped reporting"));
        // A fresh document with no metrics section at all loses every key.
        let gone: serde_json::Value =
            serde_json::from_str(r#"{"summary":{"decisions_match":true}}"#).unwrap();
        let mut report = TrajectoryReport::default();
        check_document("BENCH_m.json", &gone, &committed, 0.25, &mut report);
        assert_eq!(report.violations.len(), 4);
        // Committed documents without a metrics section gate nothing.
        let mut report = TrajectoryReport::default();
        check_document("BENCH_m.json", &gone, &gone, 0.25, &mut report);
        assert!(!report.failed());
    }

    #[test]
    fn disappeared_speedups_fail() {
        let fresh: serde_json::Value =
            serde_json::from_str(r#"{"summary":{"decisions_match":true}}"#).unwrap();
        let mut report = TrajectoryReport::default();
        check_document("BENCH_x.json", &fresh, &doc(1.5, true), 0.25, &mut report);
        assert!(report.failed());
        assert!(format!("{report}").contains("disappeared"));
    }

    #[test]
    fn directory_walk_flags_missing_fresh_documents() {
        let base =
            std::env::temp_dir().join(format!("orchestra-trajectory-test-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let committed = base.join("committed");
        let fresh = base.join("fresh");
        std::fs::create_dir_all(&committed).unwrap();
        std::fs::create_dir_all(&fresh).unwrap();
        std::fs::write(
            committed.join("BENCH_a.json"),
            serde_json::to_string(&doc(1.5, true)).unwrap(),
        )
        .unwrap();
        std::fs::write(
            committed.join("BENCH_b.json"),
            serde_json::to_string(&doc(2.0, true)).unwrap(),
        )
        .unwrap();
        // Only BENCH_a regenerated, and it held its speedup.
        std::fs::write(fresh.join("BENCH_a.json"), serde_json::to_string(&doc(1.6, true)).unwrap())
            .unwrap();
        let report = check_trajectory(&fresh, &committed, 0.25).unwrap();
        assert_eq!(report.documents, 1);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].file.contains("BENCH_b"));
        std::fs::remove_dir_all(&base).ok();
    }
}
