//! Shared store-side catalogue used by both update-store implementations.
//!
//! The centralised and DHT stores hold logically identical state: the epoch
//! registry, the published-transaction log, the per-participant decision
//! record, and the registered trust policies. They differ in *where* that
//! state lives and what communication is charged to access it. This module
//! factors out the logical state and the store-side computations (trust
//! evaluation and transaction-extension construction), so each store
//! implementation only adds its own cost model.

use orchestra_model::{
    Epoch, ParticipantId, Priority, ReconciliationId, Schema, Transaction, TransactionId,
    TrustPolicy,
};
use orchestra_recon::CandidateTransaction;
use orchestra_storage::{Decision, DecisionLog, EpochRegistry, Result, TransactionLog};
use rustc_hash::{FxHashMap, FxHashSet};

/// The logical contents of an update store.
#[derive(Debug, Clone)]
pub struct StoreCatalog {
    schema: Schema,
    registry: EpochRegistry,
    log: TransactionLog,
    decisions: DecisionLog,
    policies: FxHashMap<ParticipantId, TrustPolicy>,
}

impl StoreCatalog {
    /// Creates an empty catalogue for the given schema.
    pub fn new(schema: Schema) -> Self {
        StoreCatalog {
            schema,
            registry: EpochRegistry::new(),
            log: TransactionLog::new(),
            decisions: DecisionLog::new(),
            policies: FxHashMap::default(),
        }
    }

    /// The schema the store serves.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The published-transaction log.
    pub fn log(&self) -> &TransactionLog {
        &self.log
    }

    /// The epoch registry.
    pub fn registry(&self) -> &EpochRegistry {
        &self.registry
    }

    /// Registers (or replaces) a participant's trust policy.
    pub fn register_policy(&mut self, policy: TrustPolicy) {
        self.policies.insert(policy.owner(), policy);
    }

    /// The trust policy of a participant, if registered.
    pub fn policy(&self, participant: ParticipantId) -> Option<&TrustPolicy> {
        self.policies.get(&participant)
    }

    /// All registered participants.
    pub fn participants(&self) -> Vec<ParticipantId> {
        let mut ids: Vec<ParticipantId> = self.policies.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Publishes a batch of transactions from a peer as one epoch, marking
    /// the publisher's own transactions as accepted by it.
    pub fn publish(
        &mut self,
        participant: ParticipantId,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch> {
        let epoch = self.registry.begin_publish(participant);
        for txn in transactions {
            let id = txn.id();
            self.log.publish(epoch, txn)?;
            self.decisions.record(participant, id, Decision::Accepted);
        }
        self.registry.finish_publish(epoch)?;
        Ok(epoch)
    }

    /// Pins a reconciliation for the participant to the largest stable epoch
    /// and returns `(recno, previous epoch, reconciliation epoch)`.
    pub fn begin_reconciliation(
        &mut self,
        participant: ParticipantId,
    ) -> (ReconciliationId, Epoch, Epoch) {
        let recno = self.decisions.next_reconciliation_id(participant);
        let previous = self.decisions.last_reconciliation_epoch(participant);
        let epoch = self.registry.largest_stable_epoch();
        self.decisions.record_reconciliation(participant, recno, epoch);
        (recno, previous, epoch)
    }

    /// The relevant transactions for a reconciliation: every transaction
    /// published in `(previous, epoch]` that did not originate at the
    /// reconciling participant and that it has not already decided.
    pub fn relevant_transactions(
        &self,
        participant: ParticipantId,
        previous: Epoch,
        epoch: Epoch,
    ) -> Vec<Transaction> {
        self.log
            .in_range(previous, epoch)
            .into_iter()
            .filter(|t| t.origin() != participant)
            .filter(|t| !self.decisions.is_decided(participant, t.id()))
            .cloned()
            .collect()
    }

    /// The priority the participant's policy assigns to a transaction
    /// ([`Priority::UNTRUSTED`] if the participant has no registered policy).
    pub fn priority_for(&self, participant: ParticipantId, txn: &Transaction) -> Priority {
        self.policies
            .get(&participant)
            .map(|p| p.priority_of_transaction(txn, &self.schema))
            .unwrap_or(Priority::UNTRUSTED)
    }

    /// Builds the candidate (transaction extension plus priority) for a
    /// trusted transaction, excluding antecedents the participant has already
    /// accepted. Returns the candidate together with the number of extension
    /// members that had to be fetched (used by the DHT store's message
    /// accounting).
    pub fn build_candidate(
        &self,
        participant: ParticipantId,
        txn: &Transaction,
        priority: Priority,
    ) -> (CandidateTransaction, usize) {
        let accepted: FxHashSet<TransactionId> =
            self.decisions.accepted(participant).into_iter().collect();
        self.build_candidate_with(&accepted, txn, priority)
    }

    /// Like [`StoreCatalog::build_candidate`] but reuses an already-computed
    /// accepted set, so callers building many candidates for the same
    /// reconciliation do not recompute it per transaction.
    pub fn build_candidate_with(
        &self,
        accepted: &FxHashSet<TransactionId>,
        txn: &Transaction,
        priority: Priority,
    ) -> (CandidateTransaction, usize) {
        let member_ids = self.log.transaction_extension(txn, &self.schema, accepted);
        let mut members: Vec<Transaction> = Vec::with_capacity(member_ids.len());
        for id in &member_ids {
            if *id == txn.id() {
                continue;
            }
            if let Some(t) = self.log.get(*id) {
                members.push(t.clone());
            }
        }
        let fetched = members.len();
        (CandidateTransaction::new(txn, priority, members), fetched)
    }

    /// Records accept/reject decisions for a participant.
    pub fn record_decisions(
        &mut self,
        participant: ParticipantId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) {
        for id in accepted {
            self.decisions.record(participant, *id, Decision::Accepted);
        }
        for id in rejected {
            self.decisions.record(participant, *id, Decision::Rejected);
        }
    }

    /// The participant's most recent reconciliation number.
    pub fn current_reconciliation(&self, participant: ParticipantId) -> ReconciliationId {
        self.decisions.last_reconciliation(participant).map(|(r, _)| r).unwrap_or_default()
    }

    /// The participant's rejected set.
    pub fn rejected_set(&self, participant: ParticipantId) -> FxHashSet<TransactionId> {
        self.decisions.rejected(participant).into_iter().collect()
    }

    /// The transactions the participant has accepted, in publication order.
    /// This is the replay stream used to reconstruct a participant's instance
    /// from the store (the paper's soft-state property).
    pub fn accepted_in_publication_order(&self, participant: ParticipantId) -> Vec<Transaction> {
        let mut accepted: Vec<TransactionId> = self.decisions.accepted(participant);
        accepted.sort_by_key(|id| self.log.position_of(*id).unwrap_or(usize::MAX));
        accepted.into_iter().filter_map(|id| self.log.get(id).cloned()).collect()
    }

    /// The participant's accepted set.
    pub fn accepted_set(&self, participant: ParticipantId) -> FxHashSet<TransactionId> {
        self.decisions.accepted(participant).into_iter().collect()
    }

    /// Looks up a published transaction.
    pub fn transaction(&self, id: TransactionId) -> Option<Transaction> {
        self.log.get(id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{Tuple, Update};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn txn(i: u32, j: u64, updates: Vec<Update>) -> Transaction {
        Transaction::from_parts(p(i), j, updates).unwrap()
    }

    fn catalog_with_policies() -> StoreCatalog {
        let mut cat = StoreCatalog::new(bioinformatics_schema());
        cat.register_policy(TrustPolicy::new(p(1)).trusting(p(2), 1u32).trusting(p(3), 1u32));
        cat.register_policy(TrustPolicy::new(p(2)).trusting(p(1), 2u32).trusting(p(3), 1u32));
        cat.register_policy(TrustPolicy::new(p(3)).trusting(p(2), 1u32));
        cat
    }

    #[test]
    fn publish_assigns_epochs_and_marks_own_accepted() {
        let mut cat = catalog_with_policies();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let e = cat.publish(p(3), vec![x.clone()]).unwrap();
        assert_eq!(e, Epoch(1));
        assert!(cat.accepted_set(p(3)).contains(&x.id()));
        assert_eq!(cat.registry().largest_stable_epoch(), Epoch(1));
        assert_eq!(cat.transaction(x.id()).unwrap(), x);
        assert_eq!(cat.participants(), vec![p(1), p(2), p(3)]);
    }

    #[test]
    fn relevant_transactions_exclude_own_and_decided() {
        let mut cat = catalog_with_policies();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let x2 = txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(2))]);
        cat.publish(p(3), vec![x3.clone()]).unwrap();
        cat.publish(p(2), vec![x2.clone()]).unwrap();

        let (recno, prev, epoch) = cat.begin_reconciliation(p(2));
        assert_eq!(recno, ReconciliationId(1));
        assert_eq!(prev, Epoch::ZERO);
        assert_eq!(epoch, Epoch(2));
        let relevant = cat.relevant_transactions(p(2), prev, epoch);
        // p2's own transaction is excluded; p3's is relevant.
        assert_eq!(relevant.len(), 1);
        assert_eq!(relevant[0].id(), x3.id());

        // After p2 rejects it, it is no longer relevant.
        cat.record_decisions(p(2), &[], &[x3.id()]);
        let relevant = cat.relevant_transactions(p(2), prev, epoch);
        assert!(relevant.is_empty());
        assert!(cat.rejected_set(p(2)).contains(&x3.id()));
    }

    #[test]
    fn priorities_follow_registered_policies() {
        let mut cat = catalog_with_policies();
        let from1 = txn(1, 0, vec![Update::insert("Function", func("a", "b", "c"), p(1))]);
        cat.publish(p(1), vec![from1.clone()]).unwrap();
        assert_eq!(cat.priority_for(p(2), &from1), Priority(2));
        assert_eq!(cat.priority_for(p(3), &from1), Priority::UNTRUSTED);
        // Unregistered participants trust nothing.
        assert_eq!(cat.priority_for(p(9), &from1), Priority::UNTRUSTED);
        assert!(cat.policy(p(1)).is_some());
        assert!(cat.policy(p(9)).is_none());
    }

    #[test]
    fn candidates_include_undecided_antecedents() {
        let mut cat = catalog_with_policies();
        let x0 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "v1"), p(3))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "v1"),
                func("rat", "prot1", "v2"),
                p(2),
            )],
        );
        cat.publish(p(3), vec![x0.clone()]).unwrap();
        cat.publish(p(2), vec![x1.clone()]).unwrap();

        // p1 trusts both; the candidate for x1 must carry x0 as a member.
        let (cand, fetched) = cat.build_candidate(p(1), &x1, Priority(1));
        assert_eq!(fetched, 1);
        assert_eq!(cand.members.len(), 2);
        assert_eq!(cand.members[0].0, x0.id());
        assert_eq!(cand.members[1].0, x1.id());

        // Once p1 has accepted x0, the extension stops at x1.
        cat.record_decisions(p(1), &[x0.id()], &[]);
        let (cand, fetched) = cat.build_candidate(p(1), &x1, Priority(1));
        assert_eq!(fetched, 0);
        assert_eq!(cand.members.len(), 1);
    }

    #[test]
    fn reconciliation_epochs_advance() {
        let mut cat = catalog_with_policies();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        cat.publish(p(3), vec![x]).unwrap();
        let (r1, _, e1) = cat.begin_reconciliation(p(1));
        assert_eq!((r1, e1), (ReconciliationId(1), Epoch(1)));
        assert_eq!(cat.current_reconciliation(p(1)), ReconciliationId(1));

        let y = txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(2))]);
        cat.publish(p(2), vec![y]).unwrap();
        let (r2, prev, e2) = cat.begin_reconciliation(p(1));
        assert_eq!(r2, ReconciliationId(2));
        assert_eq!(prev, Epoch(1));
        assert_eq!(e2, Epoch(2));
    }
}
