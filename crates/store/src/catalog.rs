//! Shared store-side catalogue used by both update-store implementations.
//!
//! The centralised and DHT stores hold logically identical state: the epoch
//! registry, the published-transaction log, the per-participant decision
//! record, and the registered trust policies. They differ in *where* that
//! state lives and what communication is charged to access it. This module
//! factors out the logical state and the store-side computations (trust
//! evaluation and transaction-extension construction), so each store
//! implementation only adds its own cost model.
//!
//! # Incremental retrieval
//!
//! Reconciliation cost must scale with the *new* epochs a participant has not
//! yet seen, not with total history. The catalogue therefore maintains, in
//! addition to the raw log:
//!
//! * a **per-participant epoch cursor** — the epoch its last reconciliation
//!   was pinned to, advanced by [`StoreCatalog::begin_reconciliation`];
//! * a **per-epoch, trust-evaluated relevance index** — for every registered
//!   participant, each published epoch maps to the transactions that did not
//!   originate at that participant together with the priority its policy
//!   assigns them (evaluated once, at publication time, exactly where the
//!   paper pushes trust-predicate evaluation into the store);
//! * **incrementally maintained accepted/rejected sets** (inside
//!   [`DecisionLog`]), so the "already decided" filter is O(1) per candidate.
//!
//! Retrieval then walks only the index entries between the cursor and the
//! reconciliation epoch, and candidate extensions share the log's update
//! lists by reference count ([`Transaction::shared_updates`]) instead of
//! deep-cloning transactions. The pre-cursor full-log path is preserved as
//! [`StoreCatalog::relevant_transactions_rescan`] so the churn benchmark can
//! measure the improvement against an honest baseline.

use orchestra_model::{
    Epoch, ParticipantId, Priority, ReconciliationId, Schema, Transaction, TransactionId,
    TrustPolicy,
};
use orchestra_recon::CandidateTransaction;
use orchestra_storage::{Decision, DecisionLog, EpochRegistry, Result, TransactionLog};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;

/// One entry of the per-epoch relevance index: a transaction some participant
/// may need to consider, with the priority its policy assigned at publication
/// time. Untrusted entries are kept (with [`Priority::UNTRUSTED`]) because the
/// DHT cost model still charges a request/notification round trip for them.
type RelevanceEntry = (TransactionId, Priority);

/// The logical contents of an update store.
#[derive(Debug, Clone, Default)]
pub struct StoreCatalog {
    schema: Schema,
    registry: EpochRegistry,
    log: TransactionLog,
    decisions: DecisionLog,
    policies: FxHashMap<ParticipantId, TrustPolicy>,
    /// Per-participant, per-epoch trust-evaluated candidates.
    relevance: FxHashMap<ParticipantId, BTreeMap<u64, Vec<RelevanceEntry>>>,
    /// Per-participant epoch cursors (the epoch of the last reconciliation).
    cursors: FxHashMap<ParticipantId, Epoch>,
}

impl StoreCatalog {
    /// Creates an empty catalogue for the given schema.
    pub fn new(schema: Schema) -> Self {
        StoreCatalog { schema, ..Default::default() }
    }

    /// The schema the store serves.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The published-transaction log.
    pub fn log(&self) -> &TransactionLog {
        &self.log
    }

    /// The epoch registry.
    pub fn registry(&self) -> &EpochRegistry {
        &self.registry
    }

    /// Registers (or replaces) a participant's trust policy and (re)builds
    /// its slice of the relevance index from the already-published log.
    /// Registration is an out-of-band setup step; steady-state publications
    /// keep the index current incrementally.
    pub fn register_policy(&mut self, policy: TrustPolicy) {
        let participant = policy.owner();
        let mut index: BTreeMap<u64, Vec<RelevanceEntry>> = BTreeMap::new();
        for entry in self.log.entries() {
            let txn = &entry.transaction;
            if txn.origin() == participant {
                continue;
            }
            let priority = policy.priority_of_transaction(txn, &self.schema);
            index.entry(entry.epoch.as_u64()).or_default().push((txn.id(), priority));
        }
        self.relevance.insert(participant, index);
        self.policies.insert(participant, policy);
    }

    /// The trust policy of a participant, if registered.
    pub fn policy(&self, participant: ParticipantId) -> Option<&TrustPolicy> {
        self.policies.get(&participant)
    }

    /// All registered participants.
    pub fn participants(&self) -> Vec<ParticipantId> {
        let mut ids: Vec<ParticipantId> = self.policies.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Publishes a batch of transactions from a peer as one epoch, marking
    /// the publisher's own transactions as accepted by it and extending every
    /// other participant's relevance index with the new epoch's trust
    /// evaluation.
    pub fn publish(
        &mut self,
        participant: ParticipantId,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch> {
        let epoch = self.registry.begin_publish(participant);
        for txn in transactions {
            let id = txn.id();
            for (other, policy) in &self.policies {
                // Skip by transaction *origin* (not by publisher), matching
                // the relevance filter and `register_policy`'s rebuild: a
                // participant is never offered its own transactions even if
                // someone else published them on its behalf.
                if txn.origin() == *other {
                    continue;
                }
                let priority = policy.priority_of_transaction(&txn, &self.schema);
                self.relevance
                    .entry(*other)
                    .or_default()
                    .entry(epoch.as_u64())
                    .or_default()
                    .push((id, priority));
            }
            self.log.publish(epoch, txn)?;
            self.decisions.record(participant, id, Decision::Accepted);
        }
        self.registry.finish_publish(epoch)?;
        Ok(epoch)
    }

    /// The participant's epoch cursor: the epoch of its most recent
    /// reconciliation (`Epoch::ZERO` if it has never reconciled).
    pub fn epoch_cursor(&self, participant: ParticipantId) -> Epoch {
        self.cursors
            .get(&participant)
            .copied()
            .unwrap_or_else(|| self.decisions.last_reconciliation_epoch(participant))
    }

    /// Pins a reconciliation for the participant to the largest stable epoch,
    /// advances its epoch cursor, and returns `(recno, previous epoch,
    /// reconciliation epoch)`.
    pub fn begin_reconciliation(
        &mut self,
        participant: ParticipantId,
    ) -> (ReconciliationId, Epoch, Epoch) {
        let recno = self.decisions.next_reconciliation_id(participant);
        let previous = self.epoch_cursor(participant);
        let epoch = self.registry.largest_stable_epoch();
        self.decisions.record_reconciliation(participant, recno, epoch);
        self.cursors.insert(participant, epoch);
        (recno, previous, epoch)
    }

    /// The trust-evaluated, undecided transactions for a reconciliation over
    /// epochs `(previous, epoch]`, straight from the relevance index: every
    /// entry that did not originate at the participant and that it has not
    /// already decided, with the priority its policy assigned at publication
    /// time. Untrusted entries are included (the DHT cost model charges a
    /// notification for them); callers that only want candidates skip them.
    ///
    /// Work is proportional to the transactions published in the requested
    /// epoch range — the full log is never rescanned.
    pub fn relevant_candidates(
        &self,
        participant: ParticipantId,
        previous: Epoch,
        epoch: Epoch,
    ) -> Vec<(&Transaction, Priority)> {
        let mut out = Vec::new();
        if epoch <= previous {
            return out;
        }
        let Some(index) = self.relevance.get(&participant) else { return out };
        let accepted = self.decisions.accepted_set(participant);
        let rejected = self.decisions.rejected_set(participant);
        let decided = |id: &TransactionId| {
            accepted.map(|s| s.contains(id)).unwrap_or(false)
                || rejected.map(|s| s.contains(id)).unwrap_or(false)
        };
        for entries in index.range((previous.as_u64() + 1)..=epoch.as_u64()).map(|(_, e)| e) {
            for (id, priority) in entries {
                if decided(id) {
                    continue;
                }
                if let Some(txn) = self.log.get(*id) {
                    out.push((txn, *priority));
                }
            }
        }
        out
    }

    /// The pre-cursor retrieval path, kept as the baseline for the churn
    /// benchmark: rescans the full publication log, re-filters by origin,
    /// decision record and trust, and returns owned transactions. Semantics
    /// are identical to [`StoreCatalog::relevant_candidates`]; cost is
    /// O(total history) per call.
    pub fn relevant_transactions_rescan(
        &self,
        participant: ParticipantId,
        previous: Epoch,
        epoch: Epoch,
    ) -> Vec<(Transaction, Priority)> {
        // Rebuild the decided set from the decision record, as the
        // pre-cursor code did on every call.
        let decided: FxHashSet<TransactionId> = self
            .decisions
            .accepted(participant)
            .into_iter()
            .chain(self.decisions.rejected(participant))
            .collect();
        self.log
            .entries()
            .iter()
            .filter(|e| e.epoch > previous && e.epoch <= epoch)
            .map(|e| &e.transaction)
            .filter(|t| t.origin() != participant)
            .filter(|t| !decided.contains(&t.id()))
            .map(|t| (t.clone(), self.priority_for(participant, t)))
            .collect()
    }

    /// Baseline variant of [`StoreCatalog::build_candidate_with`] reproducing
    /// the pre-cursor costs: every extension member's update list is
    /// deep-copied (as the pre-interning code did) instead of shared with the
    /// log by reference count. Used only by the rescan retrieval mode that
    /// the churn benchmark measures against.
    pub fn build_candidate_rescan(
        &self,
        accepted: &FxHashSet<TransactionId>,
        txn: &Transaction,
        priority: Priority,
    ) -> (CandidateTransaction, usize) {
        let member_ids = self.log.transaction_extension(txn, &self.schema, accepted);
        let mut members = Vec::with_capacity(member_ids.len());
        let mut fetched = 0usize;
        for id in member_ids {
            if id == txn.id() {
                continue;
            }
            if let Some(t) = self.log.get(id) {
                members.push((id, std::sync::Arc::new(t.updates().to_vec())));
                fetched += 1;
            }
        }
        members.push((txn.id(), std::sync::Arc::new(txn.updates().to_vec())));
        (CandidateTransaction::from_members(txn.id(), priority, members), fetched)
    }

    /// Baseline accepted-set reconstruction, as the pre-cursor code performed
    /// on every reconciliation: enumerate the participant's decisions, sort,
    /// and collect into a fresh set.
    pub fn accepted_set_rescan(&self, participant: ParticipantId) -> FxHashSet<TransactionId> {
        self.decisions.accepted(participant).into_iter().collect()
    }

    /// The relevant transactions for a reconciliation: every transaction
    /// published in `(previous, epoch]` that did not originate at the
    /// reconciling participant and that it has not already decided.
    ///
    /// Served from the relevance index, so the participant must have been
    /// registered via [`StoreCatalog::register_policy`]; an unregistered
    /// participant has no index and gets an empty result.
    pub fn relevant_transactions(
        &self,
        participant: ParticipantId,
        previous: Epoch,
        epoch: Epoch,
    ) -> Vec<Transaction> {
        self.relevant_candidates(participant, previous, epoch)
            .into_iter()
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// The priority the participant's policy assigns to a transaction
    /// ([`Priority::UNTRUSTED`] if the participant has no registered policy).
    pub fn priority_for(&self, participant: ParticipantId, txn: &Transaction) -> Priority {
        self.policies
            .get(&participant)
            .map(|p| p.priority_of_transaction(txn, &self.schema))
            .unwrap_or(Priority::UNTRUSTED)
    }

    /// Builds the candidate (transaction extension plus priority) for a
    /// trusted transaction, excluding antecedents the participant has already
    /// accepted. Returns the candidate together with the number of extension
    /// members that had to be fetched (used by the DHT store's message
    /// accounting).
    pub fn build_candidate(
        &self,
        participant: ParticipantId,
        txn: &Transaction,
        priority: Priority,
    ) -> (CandidateTransaction, usize) {
        static EMPTY: std::sync::OnceLock<FxHashSet<TransactionId>> = std::sync::OnceLock::new();
        let accepted = self
            .decisions
            .accepted_set(participant)
            .unwrap_or_else(|| EMPTY.get_or_init(FxHashSet::default));
        self.build_candidate_with(accepted, txn, priority)
    }

    /// Like [`StoreCatalog::build_candidate`] but reuses an already-available
    /// accepted set. The extension members share the log's update lists by
    /// reference count — no update is copied.
    pub fn build_candidate_with(
        &self,
        accepted: &FxHashSet<TransactionId>,
        txn: &Transaction,
        priority: Priority,
    ) -> (CandidateTransaction, usize) {
        let member_ids = self.log.transaction_extension(txn, &self.schema, accepted);
        let mut members = Vec::with_capacity(member_ids.len());
        let mut fetched = 0usize;
        for id in member_ids {
            if id == txn.id() {
                continue;
            }
            if let Some(t) = self.log.get(id) {
                members.push((id, t.shared_updates()));
                fetched += 1;
            }
        }
        members.push((txn.id(), txn.shared_updates()));
        (CandidateTransaction::from_members(txn.id(), priority, members), fetched)
    }

    /// Records accept/reject decisions for a participant.
    pub fn record_decisions(
        &mut self,
        participant: ParticipantId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) {
        for id in accepted {
            self.decisions.record(participant, *id, Decision::Accepted);
        }
        for id in rejected {
            self.decisions.record(participant, *id, Decision::Rejected);
        }
    }

    /// The participant's most recent reconciliation number.
    pub fn current_reconciliation(&self, participant: ParticipantId) -> ReconciliationId {
        self.decisions.last_reconciliation(participant).map(|(r, _)| r).unwrap_or_default()
    }

    /// The participant's rejected set (a clone of the incrementally
    /// maintained record).
    pub fn rejected_set(&self, participant: ParticipantId) -> FxHashSet<TransactionId> {
        self.decisions.rejected_set(participant).cloned().unwrap_or_default()
    }

    /// The transactions the participant has accepted, in publication order.
    /// This is the replay stream used to reconstruct a participant's instance
    /// from the store (the paper's soft-state property).
    pub fn accepted_in_publication_order(&self, participant: ParticipantId) -> Vec<Transaction> {
        let mut accepted: Vec<TransactionId> = self.decisions.accepted(participant);
        accepted.sort_by_key(|id| self.log.position_of(*id).unwrap_or(usize::MAX));
        accepted.into_iter().filter_map(|id| self.log.get(id).cloned()).collect()
    }

    /// The participant's accepted set (a clone of the incrementally
    /// maintained record).
    pub fn accepted_set(&self, participant: ParticipantId) -> FxHashSet<TransactionId> {
        self.decisions.accepted_set(participant).cloned().unwrap_or_default()
    }

    /// A reference to the participant's incrementally maintained accepted
    /// set, if it has decided anything.
    pub fn accepted_set_ref(
        &self,
        participant: ParticipantId,
    ) -> Option<&FxHashSet<TransactionId>> {
        self.decisions.accepted_set(participant)
    }

    /// A reference to the participant's incrementally maintained rejected
    /// set, if it has decided anything.
    pub fn rejected_set_ref(
        &self,
        participant: ParticipantId,
    ) -> Option<&FxHashSet<TransactionId>> {
        self.decisions.rejected_set(participant)
    }

    /// Looks up a published transaction.
    pub fn transaction(&self, id: TransactionId) -> Option<Transaction> {
        self.log.get(id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{Tuple, Update};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn txn(i: u32, j: u64, updates: Vec<Update>) -> Transaction {
        Transaction::from_parts(p(i), j, updates).unwrap()
    }

    fn catalog_with_policies() -> StoreCatalog {
        let mut cat = StoreCatalog::new(bioinformatics_schema());
        cat.register_policy(TrustPolicy::new(p(1)).trusting(p(2), 1u32).trusting(p(3), 1u32));
        cat.register_policy(TrustPolicy::new(p(2)).trusting(p(1), 2u32).trusting(p(3), 1u32));
        cat.register_policy(TrustPolicy::new(p(3)).trusting(p(2), 1u32));
        cat
    }

    #[test]
    fn publish_assigns_epochs_and_marks_own_accepted() {
        let mut cat = catalog_with_policies();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let e = cat.publish(p(3), vec![x.clone()]).unwrap();
        assert_eq!(e, Epoch(1));
        assert!(cat.accepted_set(p(3)).contains(&x.id()));
        assert_eq!(cat.registry().largest_stable_epoch(), Epoch(1));
        assert_eq!(cat.transaction(x.id()).unwrap(), x);
        assert_eq!(cat.participants(), vec![p(1), p(2), p(3)]);
    }

    #[test]
    fn relevant_transactions_exclude_own_and_decided() {
        let mut cat = catalog_with_policies();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let x2 = txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(2))]);
        cat.publish(p(3), vec![x3.clone()]).unwrap();
        cat.publish(p(2), vec![x2.clone()]).unwrap();

        let (recno, prev, epoch) = cat.begin_reconciliation(p(2));
        assert_eq!(recno, ReconciliationId(1));
        assert_eq!(prev, Epoch::ZERO);
        assert_eq!(epoch, Epoch(2));
        let relevant = cat.relevant_transactions(p(2), prev, epoch);
        // p2's own transaction is excluded; p3's is relevant.
        assert_eq!(relevant.len(), 1);
        assert_eq!(relevant[0].id(), x3.id());

        // After p2 rejects it, it is no longer relevant.
        cat.record_decisions(p(2), &[], &[x3.id()]);
        let relevant = cat.relevant_transactions(p(2), prev, epoch);
        assert!(relevant.is_empty());
        assert!(cat.rejected_set(p(2)).contains(&x3.id()));
    }

    #[test]
    fn priorities_follow_registered_policies() {
        let mut cat = catalog_with_policies();
        let from1 = txn(1, 0, vec![Update::insert("Function", func("a", "b", "c"), p(1))]);
        cat.publish(p(1), vec![from1.clone()]).unwrap();
        assert_eq!(cat.priority_for(p(2), &from1), Priority(2));
        assert_eq!(cat.priority_for(p(3), &from1), Priority::UNTRUSTED);
        // Unregistered participants trust nothing.
        assert_eq!(cat.priority_for(p(9), &from1), Priority::UNTRUSTED);
        assert!(cat.policy(p(1)).is_some());
        assert!(cat.policy(p(9)).is_none());
    }

    #[test]
    fn candidates_include_undecided_antecedents() {
        let mut cat = catalog_with_policies();
        let x0 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "v1"), p(3))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "v1"),
                func("rat", "prot1", "v2"),
                p(2),
            )],
        );
        cat.publish(p(3), vec![x0.clone()]).unwrap();
        cat.publish(p(2), vec![x1.clone()]).unwrap();

        // p1 trusts both; the candidate for x1 must carry x0 as a member.
        let (cand, fetched) = cat.build_candidate(p(1), &x1, Priority(1));
        assert_eq!(fetched, 1);
        assert_eq!(cand.members.len(), 2);
        assert_eq!(cand.members[0].0, x0.id());
        assert_eq!(cand.members[1].0, x1.id());

        // Once p1 has accepted x0, the extension stops at x1.
        cat.record_decisions(p(1), &[x0.id()], &[]);
        let (cand, fetched) = cat.build_candidate(p(1), &x1, Priority(1));
        assert_eq!(fetched, 0);
        assert_eq!(cand.members.len(), 1);
    }

    #[test]
    fn reconciliation_epochs_advance() {
        let mut cat = catalog_with_policies();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        cat.publish(p(3), vec![x]).unwrap();
        assert_eq!(cat.epoch_cursor(p(1)), Epoch::ZERO);
        let (r1, _, e1) = cat.begin_reconciliation(p(1));
        assert_eq!((r1, e1), (ReconciliationId(1), Epoch(1)));
        assert_eq!(cat.current_reconciliation(p(1)), ReconciliationId(1));
        assert_eq!(cat.epoch_cursor(p(1)), Epoch(1));

        let y = txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(2))]);
        cat.publish(p(2), vec![y]).unwrap();
        let (r2, prev, e2) = cat.begin_reconciliation(p(1));
        assert_eq!(r2, ReconciliationId(2));
        assert_eq!(prev, Epoch(1));
        assert_eq!(e2, Epoch(2));
    }

    #[test]
    fn relevance_index_matches_rescan_baseline() {
        let mut cat = catalog_with_policies();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let x1 = txn(1, 0, vec![Update::insert("Function", func("dog", "prot9", "z"), p(1))]);
        let x2 = txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(2))]);
        cat.publish(p(3), vec![x3]).unwrap();
        cat.publish(p(1), vec![x1]).unwrap();
        cat.publish(p(2), vec![x2.clone()]).unwrap();
        cat.record_decisions(p(1), &[x2.id()], &[]);

        for participant in [p(1), p(2), p(3)] {
            let incremental: Vec<(TransactionId, Priority)> = cat
                .relevant_candidates(participant, Epoch::ZERO, Epoch(3))
                .into_iter()
                .map(|(t, pr)| (t.id(), pr))
                .collect();
            let rescan: Vec<(TransactionId, Priority)> = cat
                .relevant_transactions_rescan(participant, Epoch::ZERO, Epoch(3))
                .into_iter()
                .map(|(t, pr)| (t.id(), pr))
                .collect();
            assert_eq!(incremental, rescan, "divergence for participant {participant}");
        }
    }

    #[test]
    fn late_registration_rebuilds_the_relevance_index() {
        let mut cat = StoreCatalog::new(bioinformatics_schema());
        cat.register_policy(TrustPolicy::new(p(2)));
        let x2 = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        cat.publish(p(2), vec![x2.clone()]).unwrap();

        // p1 registers only after the publication; its index must cover the
        // already-published epoch.
        cat.register_policy(TrustPolicy::new(p(1)).trusting(p(2), 3u32));
        let found = cat.relevant_candidates(p(1), Epoch::ZERO, Epoch(1));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0.id(), x2.id());
        assert_eq!(found[0].1, Priority(3));
    }
}
