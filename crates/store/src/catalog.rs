//! Shared store-side catalogue used by both update-store implementations.
//!
//! The centralised and DHT stores hold logically identical state: the epoch
//! registry, the published-transaction log, the per-participant decision
//! record, and the registered trust policies. They differ in *where* that
//! state lives and what communication is charged to access it. This module
//! factors out the logical state and the store-side computations (trust
//! evaluation and transaction-extension construction), so each store
//! implementation only adds its own cost model.
//!
//! # Shard layout
//!
//! The catalogue is built for concurrent callers behind `&self`:
//!
//! * a **log shard** (`RwLock`) holds the epoch registry and the append-only
//!   publication log — the only globally shared mutable state. Publishes
//!   take its write lock (they serialise, exactly like the paper's single
//!   epoch allocator); retrievals share its read lock;
//! * a **per-participant shard** (`RwLock` each) holds that participant's
//!   trust policy, its slice of the per-epoch trust-evaluated relevance
//!   index, its epoch cursor and its durable decision record
//!   ([`orchestra_storage::ParticipantRecord`]). Reconciliations and
//!   decision commits from different participants touch different shards and
//!   proceed in parallel;
//! * a **session table** (`Mutex`, held only for pointer-sized bookkeeping)
//!   tracks open reconciliation sessions. Session state is soft: nothing
//!   durable changes until a session commits, so aborting one leaves the
//!   catalogue byte-identical.
//!
//! Lock order is strictly `log → shard map → shard`, with the session table
//! innermost: it may be taken while catalogue locks are held (session open
//! does, so a new session is visible to a concurrent prune before the log
//! lock is released), but no catalogue lock is ever acquired while holding
//! it. That discipline makes the catalogue deadlock-free by construction.
//!
//! # Incremental, paged retrieval
//!
//! Reconciliation cost must scale with the *new* epochs a participant has not
//! yet seen, not with total history. Each shard therefore maintains a
//! per-epoch, trust-evaluated relevance index (extended at publication time,
//! exactly where the paper pushes trust-predicate evaluation into the store)
//! and an epoch cursor advanced at session commit. Opening a session pins the
//! undecided `(transaction, priority)` entries between the cursor and the
//! session epoch; [`StoreCatalog::batch`] then materialises candidate
//! extensions page by page, sharing the log's update lists by reference count
//! — peak memory is bounded by the page size, not by history. The pre-cursor
//! full-log path survives as the `rescan` session mode purely as the churn
//! benchmark's baseline.
//!
//! # Convergence-horizon retention
//!
//! Left alone, the log, the relevance index and the durable state grow with
//! history. Under a non-default [`RetentionPolicy`] the catalogue prunes the
//! **converged prefix**: [`StoreCatalog::prune_to_horizon`] computes the
//! largest epoch `H` such that every registered, unretired participant's
//! cursor has passed `H` and every trusted relevant entry at or below `H` is
//! decided, caps it by the **membership frontier** (the operator's
//! declaration of how much history a late registrant may still need — see
//! [`StoreCatalog::advance_membership_frontier`]) and by any open session's
//! lower bound, and then removes everything at or below `H` except the
//! pinned-ancestor set
//! ([`orchestra_storage::TransactionLog::pinned_ancestors`]). Decision sets
//! always stay. Pruning is decision-invariant, WAL-logged (replayed
//! deterministically on recovery) and runs under the full
//! `log → shard map → shard` write-lock set, so no session or publish ever
//! observes a half-pruned catalogue.

use crate::api::{SessionId, SessionInfo};
use crate::durability::{Durability, FileWalBackend};
use orchestra_model::{
    AntichainClock, CausalStamp, Epoch, ParticipantId, Priority, ReconciliationId, Schema,
    Transaction, TransactionId, TrustPolicy,
};
use orchestra_recon::CandidateTransaction;
use orchestra_storage::snapshot::{self, ParticipantSnapshot, StoreSnapshot};
use orchestra_storage::wal::WalRecord;
use orchestra_storage::{
    Decision, EpochRegistry, InstanceCheckpoint, ParticipantRecord, PruneReport, Result,
    RetentionPolicy, SegmentedWal, StorageError, TransactionLog,
};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// One entry of the per-epoch relevance index: a transaction some participant
/// may need to consider, with the priority its policy assigned at publication
/// time. Untrusted entries are kept (with [`Priority::UNTRUSTED`]) because the
/// DHT cost model still charges a request/notification round trip for them.
type RelevanceEntry = (TransactionId, Priority);

/// The globally shared shard: epoch registry plus publication log, plus the
/// retention frontiers (all durable state — rendered by the canonical
/// `Debug` and carried by snapshots).
#[derive(Debug, Clone, Default)]
struct LogShard {
    registry: EpochRegistry,
    log: TransactionLog,
    /// No participant registering after this epoch needs relevance entries
    /// at or below it; the convergence horizon never passes it. `ZERO` (the
    /// default) means membership is open and nothing is prunable.
    membership_frontier: Epoch,
    /// Epochs at or below this have been pruned by retention.
    pruned_through: Epoch,
}

/// One participant's shard: policy, relevance index slice, epoch cursor and
/// durable decision record.
#[derive(Debug, Clone)]
struct ParticipantShard {
    policy: TrustPolicy,
    /// False for shards auto-created on behalf of a publisher that never
    /// registered a policy; such shards hold decisions but no relevance
    /// index and are not listed as participants. Also false again after the
    /// participant retires.
    registered: bool,
    /// True once the participant has been retired: it keeps its decision
    /// record but no longer pins the convergence horizon, receives no
    /// relevance entries and cannot open sessions (re-registering rejoins it
    /// as a late member).
    retired: bool,
    /// Per-epoch trust-evaluated candidates.
    relevance: BTreeMap<u64, Vec<RelevanceEntry>>,
    /// Relevance entries exist only for epochs strictly above this floor.
    /// Raised to the membership frontier at (late) registration and to the
    /// horizon at every prune, so a recovered shard's rebuilt index matches
    /// the live one exactly.
    relevance_floor: Epoch,
    /// The epoch of the last committed reconciliation (`None` until the
    /// first commit; falls back to the decision record's history).
    cursor: Option<Epoch>,
    record: ParticipantRecord,
    /// The participant's latest materialised instance checkpoint, if it has
    /// taken one (durable — carried by snapshots and the WAL, rendered by
    /// `Debug`). Lets `rebuild_from_store` survive ConvergedOnly pruning of
    /// the transactions the instance was built from.
    checkpoint: Option<InstanceCheckpoint>,
}

impl ParticipantShard {
    fn new(policy: TrustPolicy, registered: bool) -> Self {
        ParticipantShard {
            policy,
            registered,
            retired: false,
            relevance: BTreeMap::new(),
            relevance_floor: Epoch::ZERO,
            cursor: None,
            record: ParticipantRecord::new(),
            checkpoint: None,
        }
    }

    fn epoch_cursor(&self) -> Epoch {
        self.cursor.unwrap_or_else(|| {
            self.record.last_reconciliation().map(|(_, e)| e).unwrap_or_default()
        })
    }
}

/// Soft state of one open reconciliation session.
#[derive(Debug, Clone)]
struct SessionState {
    participant: ParticipantId,
    recno: ReconciliationId,
    epoch: Epoch,
    /// The cursor the session opened against (exclusive lower bound of its
    /// pinned entries). Open sessions pin the convergence horizon here, so a
    /// concurrent prune can never remove an entry a session still streams.
    /// (Defence in depth: the horizon is also capped by the owner's cursor,
    /// which cannot move while its one allowed session is open.)
    previous: Epoch,
    /// Undecided relevant entries pinned at open, in publication order
    /// (untrusted entries included for the DHT notification accounting).
    pending: Vec<RelevanceEntry>,
    /// Streaming position inside `pending`.
    next: usize,
    /// Accepted-set snapshot taken at open, used for extension pruning.
    accepted: Arc<FxHashSet<TransactionId>>,
    /// Baseline mode: deep-copy candidate update lists as the pre-cursor
    /// code did.
    rescan: bool,
}

/// A freshly opened session (see [`StoreCatalog::open_session`]).
#[derive(Debug, Clone, Copy)]
pub struct OpenedSession {
    /// The session handle.
    pub session: SessionId,
    /// Reconciliation number assigned at commit.
    pub recno: ReconciliationId,
    /// Epoch cursor before this session (exclusive lower bound).
    pub previous: Epoch,
    /// Epoch the session is pinned to (inclusive upper bound).
    pub epoch: Epoch,
    /// Number of pinned undecided entries (trusted and untrusted).
    pub pending: usize,
}

impl OpenedSession {
    /// The trait-level view of this session.
    pub fn info(&self) -> SessionInfo {
        SessionInfo {
            session: self.session,
            recno: self.recno,
            epoch: self.epoch,
            pending: self.pending,
        }
    }
}

/// One page of candidates streamed from a session (see
/// [`StoreCatalog::batch`]).
#[derive(Debug, Clone)]
pub struct SessionBatch {
    /// The session's participant.
    pub participant: ParticipantId,
    /// Trusted candidates with, for each, the number of extension members
    /// that had to be fetched (used by the DHT store's message accounting).
    pub candidates: Vec<(CandidateTransaction, usize)>,
    /// Untrusted entries consumed by this page — no candidate travels, but
    /// the DHT cost model charges a request/notification round trip each.
    pub untrusted: Vec<TransactionId>,
    /// True once the session has streamed every pinned entry.
    pub exhausted: bool,
}

/// The logical contents of an update store, sharded for concurrent access.
pub struct StoreCatalog {
    schema: Schema,
    log: RwLock<LogShard>,
    shards: RwLock<FxHashMap<ParticipantId, Arc<RwLock<ParticipantShard>>>>,
    sessions: Mutex<FxHashMap<u64, SessionState>>,
    next_session: AtomicU64,
    /// Where state-changing operations are logged (see [`Durability`]).
    /// Appends happen under the lock guarding the mutated state, so WAL
    /// order always matches apply order.
    durability: Durability,
    /// How aggressively converged history is pruned. Configuration, not
    /// durable state: a recovered catalogue starts at the default
    /// (`KeepAll`) until the operator sets it again.
    retention: RwLock<RetentionPolicy>,
    /// Simulated latency of one epoch-allocation round trip (configuration,
    /// like `retention` — not durable, not rendered by `Debug`). Scalar
    /// publishes pay it *inside* the log write lock (the central allocator is
    /// held across the round trip, so concurrent publishers serialise on it);
    /// causal publishes pay it before taking any lock (stamps are allocated
    /// client-side, so the waits overlap). Replay never pays it.
    alloc_latency: RwLock<Duration>,
}

impl StoreCatalog {
    /// Creates an empty, purely in-memory catalogue for the given schema.
    pub fn new(schema: Schema) -> Self {
        StoreCatalog::with_durability(schema, Durability::Ephemeral)
    }

    /// Creates an empty catalogue with an explicit durability backend.
    pub fn with_durability(schema: Schema, durability: Durability) -> Self {
        StoreCatalog {
            schema,
            log: RwLock::new(LogShard::default()),
            shards: RwLock::new(FxHashMap::default()),
            sessions: Mutex::new(FxHashMap::default()),
            next_session: AtomicU64::new(1),
            durability,
            retention: RwLock::new(RetentionPolicy::default()),
            alloc_latency: RwLock::new(Duration::ZERO),
        }
    }

    /// The catalogue's retention policy.
    pub fn retention(&self) -> RetentionPolicy {
        *self.retention.read().expect("retention lock")
    }

    /// Sets the retention policy. Takes effect at the next
    /// [`StoreCatalog::prune_to_horizon`]; nothing is pruned eagerly.
    pub fn set_retention(&self, policy: RetentionPolicy) {
        *self.retention.write().expect("retention lock") = policy;
    }

    /// The simulated epoch-allocation round-trip latency.
    pub fn alloc_latency(&self) -> Duration {
        *self.alloc_latency.read().expect("alloc latency lock")
    }

    /// Sets the simulated epoch-allocation round-trip latency. Scalar
    /// publishes sleep this long while holding the log write lock (the
    /// paper's central sequence round trip); causal publishes sleep it
    /// before locking anything, so publishes from distinct participants
    /// overlap their waits.
    pub fn set_alloc_latency(&self, latency: Duration) {
        *self.alloc_latency.write().expect("alloc latency lock") = latency;
    }

    /// Whether the catalogue is in causal mode (see
    /// [`StoreCatalog::enable_causal_mode`]).
    pub fn causal_mode(&self) -> bool {
        self.log.read().expect("log lock").registry.causal().is_enabled()
    }

    /// Switches the catalogue to causal mode: publishers allocate their own
    /// [`CausalStamp`]s client-side and publish through
    /// [`StoreCatalog::publish_causal`]; scalar [`StoreCatalog::publish`] is
    /// rejected from then on. Idempotent, durable (WAL-logged), and one-way —
    /// arrival epochs keep being allocated as the linear extension either
    /// way, so cursors, sessions and retention are unaffected.
    pub fn enable_causal_mode(&self) -> Result<()> {
        self.enable_causal_mode_impl(true)
    }

    fn enable_causal_mode_impl(&self, durable: bool) -> Result<()> {
        let mut log = self.log.write().expect("log lock");
        if log.registry.causal().is_enabled() {
            return Ok(());
        }
        let record = (durable && self.durability.is_durable())
            .then_some(WalRecord::EpochMode { causal: true });
        log.registry.causal_mut().enable();
        if let Some(record) = record {
            // Under the log write lock: every record after this one in the
            // stream was appended with causal mode already on.
            self.durability.append(&record)?;
        }
        Ok(())
    }

    /// The store's causal ingest frontier: the deepest ingested stamp per
    /// publisher. Participants merge this into their observed clock after
    /// reconciling (the store has everything at or behind its frontier).
    pub fn causal_frontier(&self) -> AntichainClock {
        self.log.read().expect("log lock").registry.causal().frontier().clone()
    }

    /// The sequence number the participant's next causal stamp must carry
    /// (per-publisher FIFO; 1 if it has never published). A rebuilt
    /// participant resynchronises its client-side sequence from this.
    pub fn next_publisher_seq(&self, participant: ParticipantId) -> u64 {
        self.log.read().expect("log lock").registry.causal().next_seq(participant)
    }

    /// The catalogue's durability backend.
    pub fn durability(&self) -> &Durability {
        &self.durability
    }

    /// The schema the store serves.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of published transactions in the log.
    pub fn log_len(&self) -> usize {
        self.log.read().expect("log lock").log.len()
    }

    /// The largest stable epoch (see
    /// [`orchestra_storage::EpochRegistry::largest_stable_epoch`]).
    pub fn largest_stable_epoch(&self) -> Epoch {
        self.log.read().expect("log lock").registry.largest_stable_epoch()
    }

    fn shard_of(&self, participant: ParticipantId) -> Option<Arc<RwLock<ParticipantShard>>> {
        self.shards.read().expect("shard map lock").get(&participant).cloned()
    }

    /// The shard for a participant, auto-created (unregistered, empty policy)
    /// if missing — a publisher or reconciler does not have to register a
    /// trust policy to own a decision record.
    fn ensure_shard(&self, participant: ParticipantId) -> Arc<RwLock<ParticipantShard>> {
        if let Some(shard) = self.shard_of(participant) {
            return shard;
        }
        let mut map = self.shards.write().expect("shard map lock");
        Arc::clone(map.entry(participant).or_insert_with(|| {
            Arc::new(RwLock::new(ParticipantShard::new(TrustPolicy::new(participant), false)))
        }))
    }

    /// Registers (or replaces) a participant's trust policy and (re)builds
    /// its slice of the relevance index from the already-published log.
    /// Registration is an out-of-band setup step; steady-state publications
    /// keep the index current incrementally.
    ///
    /// # Panics
    /// On a durable catalogue, panics if the WAL append fails — registration
    /// is setup-time work (the trait signature has no error channel), and a
    /// store whose very first writes fail should not come up at all.
    pub fn register_policy(&self, policy: TrustPolicy) {
        self.register_policy_impl(policy, true);
    }

    fn register_policy_impl(&self, policy: TrustPolicy, durable: bool) {
        let participant = policy.owner();
        // Lock order: log before shard map.
        let log = self.log.read().expect("log lock");
        let record = (durable && self.durability.is_durable())
            .then(|| WalRecord::RegisterPolicy { policy: policy.clone() });
        let shard = self.ensure_shard(participant);
        let mut shard = shard.write().expect("shard lock");
        // Every registration — first-time, rejoin after retirement, or a
        // policy replacement — sees only history above the membership
        // frontier (clamped to the epochs that actually exist): it joins
        // "at" the frontier. The rule is deliberately uniform. A policy
        // *change* re-evaluates relevance over history, and an entry that
        // was untrusted under the old policy (untrusted entries never pin
        // the horizon) may be trusted under the new one; if re-registration
        // looked below the frontier, an unpruned store would resurface such
        // an entry while a pruned store could not — the one way pruning
        // could change a decision. Flooring every registration at the
        // frontier keeps the two byte-for-byte interchangeable: the floor
        // depends only on the frontier and the allocated epochs (identical
        // on both), and `pruned_through ≤ frontier` always, so the final
        // `max` never differs either. With the default open membership
        // (frontier zero) this is the full history, exactly as before.
        let joined =
            Epoch(log.membership_frontier.as_u64().min(log.registry.latest_allocated().as_u64()));
        let floor = joined.max(log.pruned_through);
        shard.relevance = relevance_slice(&log.log, &self.schema, &policy, floor);
        shard.relevance_floor = floor;
        shard.policy = policy;
        shard.registered = true;
        shard.retired = false;
        if let Some(record) = record {
            // Appended inside the log read + shard write locks, so the WAL
            // interleaves registrations and publishes in apply order.
            self.durability.append(&record).expect("WAL append (registration)");
        }
        drop(shard);
        drop(log);
    }

    /// The trust policy of a participant, if registered.
    pub fn policy(&self, participant: ParticipantId) -> Option<TrustPolicy> {
        let shard = self.shard_of(participant)?;
        let shard = shard.read().expect("shard lock");
        shard.registered.then(|| shard.policy.clone())
    }

    /// All registered participants, in order.
    pub fn participants(&self) -> Vec<ParticipantId> {
        let map = self.shards.read().expect("shard map lock");
        let mut ids: Vec<ParticipantId> = map
            .iter()
            .filter(|(_, shard)| shard.read().expect("shard lock").registered)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }

    /// Publishes a batch of transactions from a peer as one epoch, marking
    /// the publisher's own transactions as accepted by it and extending every
    /// registered participant's relevance index with the new epoch's trust
    /// evaluation. Publishes serialise on the log shard's write lock; they
    /// run in parallel with session paging only up to that lock.
    pub fn publish(
        &self,
        participant: ParticipantId,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch> {
        self.publish_impl(participant, transactions, None, None)
    }

    /// Publishes a causally stamped batch (causal mode only). The stamp was
    /// allocated client-side — the store validates its per-publisher FIFO
    /// sequence and parent frontier, ingests it into the causal DAG, and
    /// assigns the arrival epoch exactly as a scalar publish would. Because
    /// no central sequence round trip happens inside the log lock, the
    /// simulated allocation latency is paid *before* locking: publishes from
    /// distinct participants overlap their waits instead of serialising.
    pub fn publish_causal(
        &self,
        stamp: CausalStamp,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch> {
        let latency = self.alloc_latency();
        if !latency.is_zero() {
            std::thread::sleep(latency);
        }
        self.publish_impl(stamp.publisher, transactions, None, Some(&stamp))
    }

    /// Appends a batch already published at another fabric shard, pinned to
    /// the epoch that shard assigned. The batch takes the replay path:
    /// no allocation latency (the home shard already paid it), no WAL append
    /// (fabric shards are ephemeral; a replica is not this store's publish),
    /// and **no relevance extension** — the epoch's candidates are served by
    /// its home shard, this store merely keeps its log and epoch numbering
    /// identical. The publisher's own-accept record *is* written, exactly as
    /// a local publish would. Errors if this store derives a different epoch
    /// — the fabric's fan-out reached shards in different orders.
    pub fn publish_replica(
        &self,
        participant: ParticipantId,
        epoch: Epoch,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch> {
        self.publish_impl(participant, transactions, Some(epoch), None)
    }

    /// Causal-mode counterpart of [`StoreCatalog::publish_replica`]: the
    /// stamp is validated and ingested exactly as the home shard did, so
    /// every shard's causal registry stays identical.
    pub fn publish_replica_stamped(
        &self,
        stamp: &CausalStamp,
        epoch: Epoch,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch> {
        self.publish_impl(stamp.publisher, transactions, Some(epoch), Some(stamp))
    }

    /// The publish path shared by scalar and causal publishes, live callers
    /// and WAL replay. Live calls (`replay_epoch` = `None`) append a
    /// [`WalRecord::Publish`] (or [`WalRecord::PublishCausal`] when `stamp`
    /// is given) inside the log write lock once the batch has fully applied;
    /// replay calls skip the append and instead assert that the re-derived
    /// epoch matches the recorded one.
    fn publish_impl(
        &self,
        participant: ParticipantId,
        transactions: Vec<Transaction>,
        replay_epoch: Option<Epoch>,
        stamp: Option<&CausalStamp>,
    ) -> Result<Epoch> {
        let durable = replay_epoch.is_none() && self.durability.is_durable();
        let publisher = self.ensure_shard(participant);
        let mut log = self.log.write().expect("log lock");

        // Validate everything before mutating anything, so a rejected batch
        // cannot leave a half-published epoch (or a dangling started epoch,
        // or a half-ingested stamp) behind.
        match stamp {
            // In causal mode the scalar path is closed: a scalar epoch
            // interleaved among stamped ones would be invisible to the
            // causal order.
            None => {
                if log.registry.causal().is_enabled() {
                    return Err(StorageError::Causal(format!(
                        "store is in causal mode; participant {participant} must publish \
                         with a causal stamp"
                    )));
                }
            }
            Some(stamp) => log.registry.causal().validate(stamp)?,
        }
        let mut batch_ids: FxHashSet<TransactionId> = FxHashSet::default();
        for txn in &transactions {
            if log.log.get(txn.id()).is_some() || !batch_ids.insert(txn.id()) {
                return Err(StorageError::TransactionLog(format!(
                    "transaction {} already published",
                    txn.id()
                )));
            }
        }

        // The scalar allocator's simulated round trip happens *here*, with
        // the log write lock held — concurrent scalar publishers queue on
        // the central sequence exactly as they do in the paper's store.
        if replay_epoch.is_none() && stamp.is_none() {
            let latency = self.alloc_latency();
            if !latency.is_zero() {
                std::thread::sleep(latency);
            }
        }

        let epoch = log.registry.begin_publish(participant);
        if let Some(expected) = replay_epoch {
            if epoch != expected {
                return Err(StorageError::Persistence(format!(
                    "replayed publish diverged: re-derived epoch {epoch}, caller \
                     expected {expected}"
                )));
            }
        }
        if let Some(stamp) = stamp {
            // Cannot fail: the stamp was validated above, before any
            // mutation, and the log lock has been held throughout.
            log.registry.causal_mut().ingest(stamp, epoch)?;
        }
        // Replay skips the per-shard relevance extension: the index is
        // derived state, and `recover` batch-rebuilds every shard's slice
        // from the final log in one pass at the end (exactly as a snapshot
        // load derives it) instead of re-evaluating trust shard by shard at
        // every replayed publish.
        if replay_epoch.is_none() {
            let shards: Vec<(ParticipantId, Arc<RwLock<ParticipantShard>>)> = {
                let map = self.shards.read().expect("shard map lock");
                map.iter().map(|(id, shard)| (*id, Arc::clone(shard))).collect()
            };
            // Each shard is locked once per *batch*, not once per
            // transaction — the whole block runs inside the log write lock,
            // so the serialised section should stay as short as possible.
            for (other, shard) in &shards {
                let mut shard = shard.write().expect("shard lock");
                if !shard.registered || shard.retired {
                    continue;
                }
                let mut entries: Vec<RelevanceEntry> = Vec::new();
                for txn in &transactions {
                    // Skip by transaction *origin* (not by publisher),
                    // matching the relevance filter and `register_policy`'s
                    // rebuild: a participant is never offered its own
                    // transactions even if someone else published them on
                    // its behalf.
                    if txn.origin() == *other {
                        continue;
                    }
                    entries
                        .push((txn.id(), shard.policy.priority_of_transaction(txn, &self.schema)));
                }
                if !entries.is_empty() {
                    shard.relevance.entry(epoch.as_u64()).or_default().extend(entries);
                }
            }
        }
        {
            let mut publisher = publisher.write().expect("shard lock");
            for txn in &transactions {
                publisher.record.record(txn.id(), Decision::Accepted);
            }
            let record = durable.then(|| match stamp {
                Some(stamp) => WalRecord::PublishCausal {
                    epoch,
                    stamp: stamp.clone(),
                    transactions: transactions.clone(),
                },
                None => {
                    WalRecord::Publish { participant, epoch, transactions: transactions.clone() }
                }
            });
            for txn in transactions {
                log.log.publish(epoch, txn)?;
            }
            log.registry.finish_publish(epoch)?;
            if let Some(record) = record {
                // Appended while still holding the log write lock *and* the
                // publisher's shard write lock: concurrent publishes reach
                // the WAL in epoch order, and a concurrent decision commit
                // for the publisher cannot slip its record in between this
                // publish's own-acceptance and the Publish record — the
                // per-participant record stream replays in apply order.
                self.durability.append(&record)?;
            }
        }
        Ok(epoch)
    }

    /// The participant's epoch cursor: the epoch of its most recent
    /// *committed* reconciliation (`Epoch::ZERO` if it has never reconciled).
    pub fn epoch_cursor(&self, participant: ParticipantId) -> Epoch {
        self.shard_of(participant)
            .map(|shard| shard.read().expect("shard lock").epoch_cursor())
            .unwrap_or_default()
    }

    /// Opens a reconciliation session: pins it to the largest stable epoch,
    /// snapshots the undecided relevant entries between the participant's
    /// cursor and that epoch, and returns the handle. Nothing durable changes
    /// until [`StoreCatalog::commit_session`]; aborting leaves the catalogue
    /// byte-identical.
    ///
    /// With `rescan` set, the entries are recomputed by scanning the full
    /// publication log (origin, decision and trust re-filtered per call, the
    /// decided set rebuilt from scratch) — the pre-cursor baseline the churn
    /// benchmark measures against. Semantics are identical; cost is O(total
    /// history) per open instead of O(new epochs).
    ///
    /// At most one session may be open per participant: overlapping sessions
    /// for the same participant would commit duplicate reconciliation
    /// numbers and could move the epoch cursor backwards, so the second
    /// open errors. Sessions for *different* participants overlap freely.
    pub fn open_session(&self, participant: ParticipantId, rescan: bool) -> Result<OpenedSession> {
        let shard_arc = self.ensure_shard(participant);
        // Lock order: log before shard.
        let log = self.log.read().expect("log lock");
        let shard = shard_arc.read().expect("shard lock");
        if shard.retired {
            return Err(StorageError::Retention(format!(
                "participant {participant} is retired and cannot reconcile"
            )));
        }
        let recno = shard.record.next_reconciliation_id();
        let previous = shard.epoch_cursor();
        let epoch = log.registry.largest_stable_epoch();

        let (pending, accepted) = if rescan {
            // Baseline: rebuild the decided set and re-evaluate trust over
            // the full log slice, as the pre-cursor code did on every call.
            let decided: FxHashSet<TransactionId> = shard
                .record
                .accepted_set()
                .iter()
                .chain(shard.record.rejected_set().iter())
                .copied()
                .collect();
            let pending: Vec<RelevanceEntry> = log
                .log
                .entries()
                .filter(|e| e.epoch > previous && e.epoch <= epoch)
                .map(|e| e.transaction.as_ref())
                .filter(|t| t.origin() != participant)
                .filter(|t| !decided.contains(&t.id()))
                .map(|t| (t.id(), shard.policy.priority_of_transaction(t, &self.schema)))
                .collect();
            let accepted: FxHashSet<TransactionId> =
                shard.record.accepted_set().iter().copied().collect();
            (pending, Arc::new(accepted))
        } else {
            // Incremental path: walk only the index entries between the
            // cursor and the session epoch; the decided filter is O(1) per
            // entry against the incrementally maintained sets.
            let mut pending = Vec::new();
            if epoch > previous {
                for entries in
                    shard.relevance.range((previous.as_u64() + 1)..=epoch.as_u64()).map(|(_, e)| e)
                {
                    for (id, priority) in entries {
                        if shard.record.decision(*id).is_none() {
                            pending.push((*id, *priority));
                        }
                    }
                }
            }
            (pending, shard.record.accepted_snapshot())
        };

        let state = SessionState {
            participant,
            recno,
            epoch,
            previous,
            pending,
            next: 0,
            accepted,
            rescan,
        };
        let handle = self.next_session.fetch_add(1, Ordering::Relaxed);
        let opened = OpenedSession {
            session: SessionId(handle),
            recno,
            previous,
            epoch,
            pending: state.pending.len(),
        };
        // Check-and-insert atomically under the session-table lock, so two
        // racing opens for the same participant cannot both succeed — and
        // *while still holding the log lock*: the moment the log lock is
        // released a concurrent `prune_to_horizon` may read its session
        // floor, and this session must already be visible to it. (For a
        // registered participant the cursor pins the horizon anyway; an
        // unregistered participant's session has only this pin.) The session
        // table is the innermost lock — no path acquires a catalogue lock
        // while holding it — so this nesting cannot deadlock.
        {
            let mut sessions = self.sessions.lock().expect("session table lock");
            if sessions.values().any(|s| s.participant == participant) {
                return Err(StorageError::Session(format!(
                    "participant {participant} already has an open reconciliation session"
                )));
            }
            sessions.insert(handle, state);
        }
        drop(shard);
        drop(log);
        Ok(opened)
    }

    /// Streams the next page of a session: at most `max_candidates` trusted
    /// candidates (with extensions), plus every untrusted entry passed over
    /// on the way. Entries stream in publication order; an exhausted session
    /// returns an empty page with `exhausted` set.
    ///
    /// Contract: a page with fewer than `max_candidates` candidates means
    /// the session is exhausted — the only way a page ends early is running
    /// out of pinned entries. Streaming drivers rely on this to avoid a
    /// final empty-page probe.
    pub fn batch(&self, session: SessionId, max_candidates: usize) -> Result<SessionBatch> {
        let max = max_candidates.max(1);
        // Take the page's entries under the session lock, then build
        // candidates under the log lock alone (the accepted snapshot was
        // pinned at open) — no catalogue lock is acquired while the session
        // table is held.
        let (participant, entries, accepted, rescan, exhausted) = {
            let mut sessions = self.sessions.lock().expect("session table lock");
            let state = sessions.get_mut(&session.as_u64()).ok_or_else(|| {
                StorageError::Session(format!("unknown session {}", session.as_u64()))
            })?;
            let mut entries = Vec::new();
            let mut trusted = 0usize;
            while state.next < state.pending.len() && trusted < max {
                let entry = state.pending[state.next];
                state.next += 1;
                if !entry.1.is_untrusted() {
                    trusted += 1;
                }
                entries.push(entry);
            }
            let exhausted = state.next >= state.pending.len();
            (state.participant, entries, Arc::clone(&state.accepted), state.rescan, exhausted)
        };

        let log = self.log.read().expect("log lock");
        let mut candidates = Vec::new();
        let mut untrusted = Vec::new();
        for (id, priority) in entries {
            if priority.is_untrusted() {
                untrusted.push(id);
                continue;
            }
            let Some(txn) = log.log.get(id) else { continue };
            let built = build_candidate(&log.log, &self.schema, &accepted, txn, priority, rescan);
            candidates.push(built);
        }
        Ok(SessionBatch { participant, candidates, untrusted, exhausted })
    }

    /// Commits a session: records the decisions, the reconciliation `(recno,
    /// epoch)` pair and the new epoch cursor in the participant's shard, and
    /// drops the session. Returns the participant and committed recno/epoch.
    pub fn commit_session(
        &self,
        session: SessionId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<(ParticipantId, ReconciliationId, Epoch)> {
        let state = self
            .sessions
            .lock()
            .expect("session table lock")
            .remove(&session.as_u64())
            .ok_or_else(|| {
                StorageError::Session(format!("unknown session {}", session.as_u64()))
            })?;
        let SessionState { participant, recno, epoch, accepted: snapshot, pending, .. } = state;
        // Release the session's accepted-set snapshot *before* recording:
        // while it is alive the shard's set is shared, and the first
        // `record` would `Arc::make_mut`-deep-copy the whole set — an
        // O(history) cost per commit.
        drop(snapshot);
        drop(pending);
        let record = self.durability.is_durable().then(|| WalRecord::CommitReconciliation {
            participant,
            recno,
            epoch,
            accepted: accepted.to_vec(),
            rejected: rejected.to_vec(),
        });
        let shard = self.ensure_shard(participant);
        let mut shard = shard.write().expect("shard lock");
        apply_reconciliation(&mut shard, recno, epoch, accepted, rejected);
        if let Some(record) = record {
            // Inside the shard write lock: a participant's decisions, its
            // reconciliation record and its cursor reach the WAL atomically
            // and in apply order.
            self.durability.append(&record)?;
        }
        Ok((participant, recno, epoch))
    }

    /// Aborts a session. Durable state is untouched; the handle is dropped.
    /// Returns whether the session existed.
    pub fn abort_session(&self, session: SessionId) -> bool {
        self.sessions.lock().expect("session table lock").remove(&session.as_u64()).is_some()
    }

    /// Number of currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.sessions.lock().expect("session table lock").len()
    }

    /// Records accept/reject decisions for a participant outside a session.
    /// Errors only on a failed WAL append (the in-memory state has been
    /// updated by then — like a failed publish append, the process should
    /// treat the store as no longer durable).
    pub fn record_decisions(
        &self,
        participant: ParticipantId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<()> {
        let record = self.durability.is_durable().then(|| WalRecord::Decisions {
            participant,
            accepted: accepted.to_vec(),
            rejected: rejected.to_vec(),
        });
        let shard = self.ensure_shard(participant);
        let mut shard = shard.write().expect("shard lock");
        for id in accepted {
            shard.record.record(*id, Decision::Accepted);
        }
        for id in rejected {
            shard.record.record(*id, Decision::Rejected);
        }
        if let Some(record) = record {
            self.durability.append(&record)?;
        }
        Ok(())
    }

    /// The membership frontier: no participant registering from now on needs
    /// relevance entries at or below it (late joiners see only post-frontier
    /// history). `Epoch::ZERO` (the initial value) means membership is open
    /// and the convergence horizon — and with it all pruning — is pinned at
    /// zero.
    pub fn membership_frontier(&self) -> Epoch {
        self.log.read().expect("log lock").membership_frontier
    }

    /// The epoch the catalogue has pruned through (`Epoch::ZERO` before the
    /// first effective prune).
    pub fn pruned_through(&self) -> Epoch {
        self.log.read().expect("log lock").pruned_through
    }

    /// Transactions ever published, including pruned ones (the log-length
    /// axis a KeepAll store's memory follows; compare
    /// [`StoreCatalog::log_len`], the live set).
    pub fn log_total_published(&self) -> u64 {
        self.log.read().expect("log lock").log.total_published()
    }

    /// Live relevance-index entries summed over every shard (the second
    /// component of the retention live set).
    pub fn relevance_len(&self) -> usize {
        let map = self.shards.read().expect("shard map lock");
        map.values()
            .map(|shard| {
                let shard = shard.read().expect("shard lock");
                shard.relevance.values().map(Vec::len).sum::<usize>()
            })
            .sum()
    }

    /// Advances the membership frontier to `epoch` (monotone; smaller values
    /// are a no-op). This is the operator's declaration that any participant
    /// registering *after* this call — including an existing participant
    /// re-registering a changed policy, which re-evaluates relevance — is
    /// content to see only history above `epoch`: its relevance index is
    /// floored there even on a KeepAll store, so the declaration (not the
    /// pruning) fixes the semantics and pruned and unpruned stores keep
    /// making identical decisions. Returns the frontier now in force.
    pub fn advance_membership_frontier(&self, epoch: Epoch) -> Result<Epoch> {
        self.advance_membership_frontier_impl(epoch, true)
    }

    fn advance_membership_frontier_impl(&self, epoch: Epoch, durable: bool) -> Result<Epoch> {
        let mut log = self.log.write().expect("log lock");
        if epoch <= log.membership_frontier {
            return Ok(log.membership_frontier);
        }
        let record = (durable && self.durability.is_durable())
            .then_some(WalRecord::MembershipFrontier { epoch });
        log.membership_frontier = epoch;
        if let Some(record) = record {
            self.durability.append(&record)?;
        }
        Ok(epoch)
    }

    /// Closes membership entirely: any participant registering later joins
    /// at the then-current epoch and sees no earlier history. Equivalent to
    /// advancing the frontier to `u64::MAX`; with membership closed, the
    /// convergence horizon is limited only by cursors and undecided entries.
    pub fn close_membership(&self) -> Result<Epoch> {
        self.advance_membership_frontier(Epoch(u64::MAX))
    }

    /// Retires a registered participant: it keeps its durable decision
    /// record (decisions are final) but stops pinning the convergence
    /// horizon, receives no further relevance entries and can no longer open
    /// reconciliation sessions. Re-registering a policy for the same id
    /// rejoins it as a late member (post-frontier history only). Erroring on
    /// unknown or unregistered participants keeps the WAL record stream
    /// replayable.
    pub fn retire_participant(&self, participant: ParticipantId) -> Result<()> {
        self.retire_participant_impl(participant, true)
    }

    fn retire_participant_impl(&self, participant: ParticipantId, durable: bool) -> Result<()> {
        let Some(shard) = self.shard_of(participant) else {
            return Err(StorageError::Retention(format!(
                "cannot retire unknown participant {participant}"
            )));
        };
        let record = (durable && self.durability.is_durable())
            .then_some(WalRecord::RetireParticipant { participant });
        let mut shard = shard.write().expect("shard lock");
        if !shard.registered {
            return Err(StorageError::Retention(format!(
                "cannot retire participant {participant}: not registered"
            )));
        }
        shard.registered = false;
        shard.retired = true;
        shard.relevance.clear();
        if let Some(record) = record {
            // Appended inside the shard write lock: the retirement lands in
            // the participant's record stream in apply order.
            self.durability.append(&record)?;
        }
        Ok(())
    }

    /// The smallest lower bound of any open session (`u64::MAX` when none):
    /// an open reconciliation pins the horizon at the cursor it opened
    /// against, so it never observes pruning. Sessions insert themselves
    /// into the table *before* `open_session` releases the log lock, so a
    /// session mid-open is either visible here or still holds the log lock
    /// the prune needs — there is no window in which it is neither.
    fn session_floor(&self) -> Epoch {
        self.sessions
            .lock()
            .expect("session table lock")
            .values()
            .map(|s| s.previous)
            .min()
            .unwrap_or(Epoch(u64::MAX))
    }

    /// Computes the (uncapped) convergence horizon together with the stable
    /// frontier, under the full read-lock set — lock order `log → shard map
    /// → shards` (sorted, matching every other multi-shard locker). This is
    /// the *advisory* read path: read locks do not exclude a session that is
    /// concurrently mid-open, so the value can be momentarily optimistic.
    /// The prune recomputes the horizon authoritatively under the write-lock
    /// set (where the session-visibility argument in
    /// [`StoreCatalog::session_floor`] does hold), so it never trusts a
    /// number from here.
    fn horizon_snapshot(&self) -> (Epoch, Epoch) {
        let log = self.log.read().expect("log lock");
        let map = self.shards.read().expect("shard map lock");
        let mut ids: Vec<ParticipantId> = map.keys().copied().collect();
        ids.sort();
        let guards: Vec<_> = ids
            .iter()
            .map(|id| map.get(id).expect("listed shard").read().expect("shard lock"))
            .collect();
        let session_floor = self.session_floor();
        let horizon = converged_horizon(&log, guards.iter().map(|g| &**g), session_floor);
        (horizon, log.registry.largest_stable_epoch())
    }

    /// Runs `f` under the catalogue's full *write*-lock set — the log write
    /// lock plus every shard's write lock, acquired in the same total order
    /// as [`StoreCatalog::horizon_snapshot`] and [`StoreCatalog::snapshot`].
    /// The prune paths go through here so the lock discipline lives in one
    /// place.
    fn with_all_shards_write<R>(
        &self,
        f: impl FnOnce(&mut LogShard, &mut [std::sync::RwLockWriteGuard<'_, ParticipantShard>]) -> R,
    ) -> R {
        let mut log = self.log.write().expect("log lock");
        let map = self.shards.read().expect("shard map lock");
        let mut ids: Vec<ParticipantId> = map.keys().copied().collect();
        ids.sort();
        let mut guards: Vec<_> = ids
            .iter()
            .map(|id| map.get(id).expect("listed shard").write().expect("shard lock"))
            .collect();
        f(&mut log, &mut guards)
    }

    /// The current convergence horizon: the largest epoch `H` such that
    /// every registered, unretired participant's cursor has passed `H` and
    /// every trusted relevant entry at or below `H` is decided by its
    /// participant — capped by the membership frontier and by open sessions.
    /// Below `H`, nothing can ever be offered as a candidate again. This is
    /// the raw horizon; [`StoreCatalog::advance_horizon`] applies the
    /// retention policy on top.
    pub fn convergence_horizon(&self) -> Epoch {
        self.horizon_snapshot().0
    }

    /// The epoch the next [`StoreCatalog::prune_to_horizon`] would prune
    /// through: the convergence horizon capped by the retention policy
    /// (`Epoch::ZERO` under `KeepAll`). A **read-only preview** — nothing is
    /// pruned and nothing is logged; call
    /// [`StoreCatalog::prune_to_horizon`] to actually prune. Advisory too:
    /// the prune recomputes the horizon under its write locks, so a session
    /// opening concurrently with this call can make the actual prune stop
    /// earlier.
    pub fn advance_horizon(&self) -> Epoch {
        let policy = self.retention();
        let (horizon, stable) = self.horizon_snapshot();
        policy.cap(horizon, stable)
    }

    /// Prunes everything at or below the policy-capped convergence horizon,
    /// except the pinned-ancestor set: log entries, per-epoch relevance
    /// slices and epoch publication records go; decision sets stay. Runs
    /// under the log write lock plus every shard's write lock (sorted — the
    /// same total order as [`StoreCatalog::snapshot`]), so sessions,
    /// publishes and commits never observe a half-pruned catalogue; the WAL
    /// `Prune` record is appended under those locks, so replay prunes at
    /// exactly this point in the record stream. A pass that finds nothing
    /// newly prunable returns a no-op report.
    pub fn prune_to_horizon(&self) -> Result<PruneReport> {
        let policy = self.retention();
        if policy == RetentionPolicy::KeepAll {
            return Ok(PruneReport {
                live_log_entries: self.log_len() as u64,
                ..PruneReport::default()
            });
        }
        self.with_all_shards_write(|log, guards| {
            // The session floor is read *after* the write locks are held:
            // any session mid-open either finished inserting itself before
            // releasing the log lock (visible here) or is still blocked
            // behind this prune and will open against the pruned state.
            let session_floor = self.session_floor();
            let horizon = converged_horizon(log, guards.iter().map(|g| &**g), session_floor);
            let target = policy.cap(horizon, log.registry.largest_stable_epoch());
            if target <= log.pruned_through {
                return Ok(PruneReport {
                    horizon: log.pruned_through,
                    live_log_entries: log.log.len() as u64,
                    ..PruneReport::default()
                });
            }
            let record =
                self.durability.is_durable().then_some(WalRecord::Prune { horizon: target });
            let report = prune_locked(log, guards, target, &self.schema);
            if let Some(record) = record {
                self.durability.append(&record)?;
            }
            Ok(report)
        })
    }

    /// Replays a recorded prune at the recorded horizon — no recomputation,
    /// mirroring how `Publish` replays assert the recorded epoch. The prune
    /// closure itself is deterministic over durable state, so
    /// recover-then-prune and prune-then-recover are byte-identical.
    fn replay_prune(&self, horizon: Epoch) -> Result<()> {
        self.with_all_shards_write(|log, guards| {
            if horizon <= log.pruned_through {
                return Err(StorageError::Persistence(format!(
                    "WAL replay diverged: Prune record horizon {horizon} at or below \
                     already-pruned {}",
                    log.pruned_through
                )));
            }
            prune_locked(log, guards, horizon, &self.schema);
            Ok(())
        })
    }

    /// The participant's most recent committed reconciliation number.
    pub fn current_reconciliation(&self, participant: ParticipantId) -> ReconciliationId {
        self.shard_of(participant)
            .and_then(|shard| shard.read().expect("shard lock").record.last_reconciliation())
            .map(|(r, _)| r)
            .unwrap_or_default()
    }

    /// A shared snapshot of the participant's rejected set (a reference-count
    /// bump over the incrementally maintained record).
    pub fn rejected_set(&self, participant: ParticipantId) -> Arc<FxHashSet<TransactionId>> {
        self.shard_of(participant)
            .map(|shard| shard.read().expect("shard lock").record.rejected_snapshot())
            .unwrap_or_default()
    }

    /// A shared snapshot of the participant's accepted set.
    pub fn accepted_set(&self, participant: ParticipantId) -> Arc<FxHashSet<TransactionId>> {
        self.shard_of(participant)
            .map(|shard| shard.read().expect("shard lock").record.accepted_snapshot())
            .unwrap_or_default()
    }

    /// The priority the participant's policy assigns to a transaction
    /// ([`Priority::UNTRUSTED`] if the participant has no registered policy).
    pub fn priority_for(&self, participant: ParticipantId, txn: &Transaction) -> Priority {
        self.policy(participant)
            .map(|p| p.priority_of_transaction(txn, &self.schema))
            .unwrap_or(Priority::UNTRUSTED)
    }

    /// The transactions the participant has accepted, in **acceptance
    /// order**, each sharing the log's copy. This is the replay stream used
    /// to reconstruct a participant's instance from the store (the paper's
    /// soft-state property). Acceptance order — not publication order — is
    /// the order the participant's instance applied the effects: a
    /// participant executes its own transactions against a lagging view, so
    /// its own write can land locally before a remotely published one it
    /// only accepts at a later reconciliation.
    pub fn accepted_in_acceptance_order(
        &self,
        participant: ParticipantId,
    ) -> Vec<Arc<Transaction>> {
        let Some(shard) = self.shard_of(participant) else { return Vec::new() };
        let accepted: Vec<TransactionId> = {
            let shard = shard.read().expect("shard lock");
            shard.record.accepted_in_order().to_vec()
        };
        let log = self.log.read().expect("log lock");
        accepted.into_iter().filter_map(|id| log.log.get_arc(id)).collect()
    }

    /// Looks up a published transaction, sharing the log's copy.
    pub fn transaction(&self, id: TransactionId) -> Option<Arc<Transaction>> {
        self.log.read().expect("log lock").log.get_arc(id)
    }

    /// The epoch in which a transaction was published, if it is in the log.
    pub fn epoch_of(&self, id: TransactionId) -> Option<Epoch> {
        self.log.read().expect("log lock").log.epoch_of(id)
    }

    /// The participant's accepted transactions in acceptance order, grouped
    /// into **replay units**: maximal runs in which each transaction is a
    /// direct antecedent of a later one in the same run. A unit is exactly
    /// the slice of one candidate's extension that was newly accepted with
    /// it, and the participant applied the unit's *flattened* net effect —
    /// so instance reconstruction must flatten per unit too (a
    /// modify-and-modify-back chain accepted as one extension applied
    /// nothing, which per-transaction replay would get wrong). Derived
    /// entirely from durable state: the acceptance order and the log's
    /// antecedent index.
    pub fn accepted_replay_units(&self, participant: ParticipantId) -> Vec<Vec<Arc<Transaction>>> {
        self.accepted_replay_units_after(participant, 0)
    }

    /// Like [`StoreCatalog::accepted_replay_units`], but skipping the first
    /// `skip` entries of the acceptance order — the prefix an
    /// [`InstanceCheckpoint`] already folds in. The skip counts *acceptance
    /// order* entries, pruned ones included: the grouping below silently
    /// drops ids the log no longer holds, so skipping against the returned
    /// units would over-skip live transactions on a pruned store.
    pub fn accepted_replay_units_after(
        &self,
        participant: ParticipantId,
        skip: u64,
    ) -> Vec<Vec<Arc<Transaction>>> {
        let Some(shard) = self.shard_of(participant) else { return Vec::new() };
        let order: Vec<TransactionId> = {
            let shard = shard.read().expect("shard lock");
            shard.record.accepted_in_order().iter().skip(skip as usize).copied().collect()
        };
        let log = self.log.read().expect("log lock");
        let mut units: Vec<Vec<Arc<Transaction>>> = Vec::new();
        let mut current: Vec<Arc<Transaction>> = Vec::new();
        let mut current_ids: FxHashSet<TransactionId> = FxHashSet::default();
        for id in order {
            let Some(txn) = log.log.get_arc(id) else { continue };
            let pos = log.log.position_of(id).unwrap_or(u64::MAX);
            let antecedents = log.log.antecedents_of(&txn, &self.schema, pos);
            let joins = !current.is_empty() && antecedents.iter().any(|a| current_ids.contains(a));
            if !joins && !current.is_empty() {
                units.push(std::mem::take(&mut current));
                current_ids.clear();
            }
            current_ids.insert(id);
            current.push(txn);
        }
        if !current.is_empty() {
            units.push(current);
        }
        units
    }

    /// Records a participant's instance checkpoint, replacing any earlier
    /// one. The checkpoint is durable state (WAL-logged, carried by
    /// snapshots): after ConvergedOnly retention has pruned the transactions
    /// an instance was built from, `rebuild_from_store` restarts from the
    /// checkpoint and replays only the acceptance-order suffix.
    pub fn record_instance_checkpoint(
        &self,
        participant: ParticipantId,
        checkpoint: InstanceCheckpoint,
    ) -> Result<()> {
        self.record_instance_checkpoint_impl(participant, checkpoint, true)
    }

    fn record_instance_checkpoint_impl(
        &self,
        participant: ParticipantId,
        checkpoint: InstanceCheckpoint,
        durable: bool,
    ) -> Result<()> {
        let record = (durable && self.durability.is_durable())
            .then(|| WalRecord::InstanceCheckpoint { participant, checkpoint: checkpoint.clone() });
        let shard = self.ensure_shard(participant);
        let mut shard = shard.write().expect("shard lock");
        shard.checkpoint = Some(checkpoint);
        if let Some(record) = record {
            // Inside the shard write lock: the checkpoint lands in the
            // participant's record stream in apply order, after every
            // decision it folds in.
            self.durability.append(&record)?;
        }
        Ok(())
    }

    /// The participant's latest instance checkpoint, if it has taken one.
    pub fn instance_checkpoint(&self, participant: ParticipantId) -> Option<InstanceCheckpoint> {
        self.shard_of(participant)
            .and_then(|shard| shard.read().expect("shard lock").checkpoint.clone())
    }

    /// The relevant, trusted transactions at or before the participant's
    /// epoch cursor that it has *not* yet decided — exactly the candidates
    /// its earlier reconciliations deferred. This is the recovery stream a
    /// rebuilt participant uses to reconstruct its deferred soft state (the
    /// paper's soft-state property); it is not charged to the reconciliation
    /// cost model. Candidates come back in publication order with their
    /// extensions, like a session batch.
    pub fn undecided_candidates(&self, participant: ParticipantId) -> Vec<CandidateTransaction> {
        let Some(shard) = self.shard_of(participant) else { return Vec::new() };
        // Lock order: log before shard.
        let log = self.log.read().expect("log lock");
        let shard = shard.read().expect("shard lock");
        let cursor = shard.epoch_cursor();
        if cursor == Epoch::ZERO {
            return Vec::new();
        }
        let accepted = shard.record.accepted_snapshot();
        let mut out = Vec::new();
        for entries in shard.relevance.range(1..=cursor.as_u64()).map(|(_, e)| e) {
            for (id, priority) in entries {
                if priority.is_untrusted() || shard.record.decision(*id).is_some() {
                    continue;
                }
                let Some(txn) = log.log.get(*id) else { continue };
                let (candidate, _) =
                    build_candidate(&log.log, &self.schema, &accepted, txn, *priority, false);
                out.push(candidate);
            }
        }
        out
    }

    /// Rebuilds a catalogue from a durability directory: loads the snapshot
    /// (if one exists), re-derives every index the snapshot does not carry
    /// (log indexes, the per-participant relevance slices, the `Arc`-snapshot
    /// accepted/rejected sets), replays the current WAL generation on top,
    /// and reattaches the write side so the recovered store keeps appending
    /// to the same log. The result is byte-identical durable state — the
    /// recovery tests pin this down through the canonical `Debug` rendering.
    pub fn recover(dir: &Path) -> Result<StoreCatalog> {
        let (snap, snap_codec) = match snapshot::read_snapshot_with_codec(dir)? {
            Some((snap, codec)) => (Some(snap), Some(codec)),
            None => (None, None),
        };
        let generation = snap.as_ref().map(|s| s.wal_generation).unwrap_or(0);
        let wal_file = snapshot::wal_path(dir, generation);
        if snap.is_none() && !wal_file.exists() {
            return Err(StorageError::Persistence(format!(
                "{} holds no snapshot and no WAL to recover from",
                dir.display()
            )));
        }
        // Open every segment of the generation and replay the merged
        // `(epoch, seq)` order — deterministic regardless of how many
        // segments the records were spread over. New appends continue in the
        // snapshot's codec, or the codec of the generation's first record
        // when there is no snapshot.
        let (wal, records) = SegmentedWal::open(dir, generation, snap_codec, true)?;
        let mut records = records.into_iter();

        let catalog = match snap {
            Some(snap) => StoreCatalog::from_snapshot(snap)?,
            None => match records.next() {
                Some(WalRecord::Init { schema }) => StoreCatalog::new(schema),
                other => {
                    return Err(StorageError::Persistence(format!(
                        "generation-0 WAL must start with an Init record, found {other:?}"
                    )))
                }
            },
        };
        for record in records {
            catalog.replay(record)?;
        }
        // Relevance indexes are derived state: replay defers them entirely
        // (see `publish_impl`) and one pass over the final log rebuilds every
        // registered shard's slice — byte-identical to the incrementally
        // maintained live index, as the recovery-equivalence tests pin down.
        catalog.rebuild_relevance();
        let mut catalog = catalog;
        catalog.durability = Durability::FileWal(FileWalBackend::reattach(dir, wal));
        Ok(catalog)
    }

    /// Rebuilds every registered shard's relevance-index slice from the log
    /// in a single pass (unregistered and retired shards hold none). The
    /// per-epoch entry order matches the publish-time extension because log
    /// positions are assigned in publication order and each epoch's
    /// transactions occupy a contiguous position range.
    fn rebuild_relevance(&self) {
        let log = self.log.read().expect("log lock");
        let map = self.shards.read().expect("shard map lock");
        let mut guards: Vec<std::sync::RwLockWriteGuard<'_, ParticipantShard>> =
            map.values().map(|shard| shard.write().expect("shard lock")).collect();
        for shard in guards.iter_mut() {
            shard.relevance = BTreeMap::new();
        }
        for entry in log.log.entries() {
            let txn = entry.transaction.as_ref();
            for shard in guards.iter_mut() {
                if !shard.registered
                    || entry.epoch <= shard.relevance_floor
                    || txn.origin() == shard.policy.owner()
                {
                    continue;
                }
                let priority = shard.policy.priority_of_transaction(txn, &self.schema);
                shard.relevance.entry(entry.epoch.as_u64()).or_default().push((txn.id(), priority));
            }
        }
    }

    /// Builds the in-memory state a snapshot describes, re-deriving the
    /// derived structures: log indexes and `Arc`-snapshot decision sets.
    /// Relevance-index slices are left empty — `recover` (the only caller)
    /// rebuilds them in one pass once the WAL tail has replayed.
    fn from_snapshot(snap: StoreSnapshot) -> Result<StoreCatalog> {
        let StoreSnapshot {
            schema,
            registry,
            mut log,
            membership_frontier,
            pruned_through,
            participants,
            ..
        } = snap;
        log.rebuild_indexes();
        let mut shards: FxHashMap<ParticipantId, Arc<RwLock<ParticipantShard>>> =
            FxHashMap::default();
        for p in participants {
            let mut record = p.record;
            record.rebuild_sets();
            shards.insert(
                p.id,
                Arc::new(RwLock::new(ParticipantShard {
                    policy: p.policy,
                    registered: p.registered,
                    retired: p.retired,
                    // Rebuilt by `recover`'s final `rebuild_relevance` pass,
                    // after the WAL tail has replayed on top.
                    relevance: BTreeMap::new(),
                    relevance_floor: p.relevance_floor,
                    cursor: p.cursor,
                    record,
                    checkpoint: p.checkpoint,
                })),
            );
        }
        Ok(StoreCatalog {
            schema,
            log: RwLock::new(LogShard { registry, log, membership_frontier, pruned_through }),
            shards: RwLock::new(shards),
            sessions: Mutex::new(FxHashMap::default()),
            next_session: AtomicU64::new(1),
            durability: Durability::Ephemeral,
            retention: RwLock::new(RetentionPolicy::default()),
            alloc_latency: RwLock::new(Duration::ZERO),
        })
    }

    /// Applies one WAL record during recovery, through the same code paths
    /// live callers use (minus the re-append).
    fn replay(&self, record: WalRecord) -> Result<()> {
        match record {
            WalRecord::Init { schema } => {
                if schema != self.schema {
                    return Err(StorageError::Persistence(
                        "WAL Init schema differs from the recovered schema".to_string(),
                    ));
                }
            }
            WalRecord::RegisterPolicy { policy } => self.register_policy_impl(policy, false),
            WalRecord::Publish { participant, epoch, transactions } => {
                self.publish_impl(participant, transactions, Some(epoch), None)?;
            }
            WalRecord::CommitReconciliation { participant, recno, epoch, accepted, rejected } => {
                let shard = self.ensure_shard(participant);
                let mut shard = shard.write().expect("shard lock");
                apply_reconciliation(&mut shard, recno, epoch, &accepted, &rejected);
            }
            WalRecord::Decisions { participant, accepted, rejected } => {
                let shard = self.ensure_shard(participant);
                let mut shard = shard.write().expect("shard lock");
                for id in accepted {
                    shard.record.record(id, Decision::Accepted);
                }
                for id in rejected {
                    shard.record.record(id, Decision::Rejected);
                }
            }
            WalRecord::MembershipFrontier { epoch } => {
                self.advance_membership_frontier_impl(epoch, false)?;
            }
            WalRecord::RetireParticipant { participant } => {
                self.retire_participant_impl(participant, false)?;
            }
            WalRecord::Prune { horizon } => {
                self.replay_prune(horizon)?;
            }
            WalRecord::EpochMode { causal } => {
                if causal {
                    self.enable_causal_mode_impl(false)?;
                }
            }
            WalRecord::PublishCausal { epoch, stamp, transactions } => {
                self.publish_impl(stamp.publisher, transactions, Some(epoch), Some(&stamp))?;
            }
            WalRecord::InstanceCheckpoint { participant, checkpoint } => {
                self.record_instance_checkpoint_impl(participant, checkpoint, false)?;
            }
        }
        Ok(())
    }

    /// Takes a compacting snapshot: captures a consistent cut of the durable
    /// state (log read lock plus every shard's read lock, in the usual
    /// order), installs it atomically, and starts a fresh WAL generation —
    /// the old generation's log is deleted, bounding the on-disk footprint.
    /// Returns the new generation. Errors on an ephemeral catalogue.
    pub fn snapshot(&self) -> Result<u64> {
        let Durability::FileWal(backend) = &self.durability else {
            return Err(StorageError::Persistence(
                "cannot snapshot an ephemeral catalogue".to_string(),
            ));
        };
        // Lock order: log → shard map → shards (all read). Holding every
        // read lock blocks writers, so no record can slip between the cut
        // and the generation switch.
        let log = self.log.read().expect("log lock");
        let map = self.shards.read().expect("shard map lock");
        let mut ids: Vec<ParticipantId> = map.keys().copied().collect();
        ids.sort();
        let guards: Vec<(ParticipantId, std::sync::RwLockReadGuard<'_, ParticipantShard>)> = ids
            .iter()
            .map(|id| (*id, map.get(id).expect("listed shard").read().expect("shard lock")))
            .collect();
        let participants = guards
            .iter()
            .map(|(id, shard)| ParticipantSnapshot {
                id: *id,
                policy: shard.policy.clone(),
                registered: shard.registered,
                retired: shard.retired,
                cursor: shard.cursor,
                relevance_floor: shard.relevance_floor,
                record: shard.record.clone(),
                checkpoint: shard.checkpoint.clone(),
            })
            .collect();
        let snap = StoreSnapshot {
            schema: self.schema.clone(),
            registry: log.registry.clone(),
            log: log.log.clone(),
            membership_frontier: log.membership_frontier,
            pruned_through: log.pruned_through,
            participants,
            wal_generation: 0, // stamped by install_snapshot
        };
        backend.install_snapshot(snap)
    }
}

/// Builds a participant's slice of the per-epoch relevance index from the
/// publication log restricted to epochs above `floor` — used when a policy is
/// registered late (the floor is the membership frontier) and when recovery
/// re-derives the index a snapshot does not carry (the floor is the shard's
/// recorded one, so a pruned store's pinned sub-horizon entries do not leak
/// back in). The slice skips the participant's own transactions (by
/// *origin*, matching the publish-time extension) and keeps untrusted
/// entries for the DHT notification accounting.
fn relevance_slice(
    log: &TransactionLog,
    schema: &Schema,
    policy: &TrustPolicy,
    floor: Epoch,
) -> BTreeMap<u64, Vec<RelevanceEntry>> {
    let participant = policy.owner();
    let mut index: BTreeMap<u64, Vec<RelevanceEntry>> = BTreeMap::new();
    for entry in log.entries() {
        if entry.epoch <= floor {
            continue;
        }
        let txn = entry.transaction.as_ref();
        if txn.origin() == participant {
            continue;
        }
        let priority = policy.priority_of_transaction(txn, schema);
        index.entry(entry.epoch.as_u64()).or_default().push((txn.id(), priority));
    }
    index
}

/// Computes the convergence horizon over already-guarded state: the minimum
/// of the membership frontier, the stable frontier, every open session's
/// lower bound, every registered participant's cursor, and — per registered
/// participant — one epoch short of its earliest undecided trusted relevance
/// entry. Unregistered (and retired) shards never receive candidates and do
/// not pin. Monotone in time: cursors and decisions only advance, so the
/// horizon never moves backwards.
fn converged_horizon<'a>(
    log: &LogShard,
    shards: impl Iterator<Item = &'a ParticipantShard>,
    session_floor: Epoch,
) -> Epoch {
    let mut h = log
        .membership_frontier
        .as_u64()
        .min(log.registry.largest_stable_epoch().as_u64())
        .min(session_floor.as_u64());
    for shard in shards {
        if !shard.registered || shard.retired {
            continue;
        }
        h = h.min(shard.epoch_cursor().as_u64());
        if h == 0 {
            return Epoch::ZERO;
        }
        // The relevance index is scanned in epoch order; the first epoch
        // holding an undecided trusted entry caps the horizon just below it.
        // Everything below the shard's floor was decided before the floor
        // rose (registration floors start empty, prune floors require full
        // decision), so the scan is over the live slice only.
        for (&epoch, entries) in shard.relevance.range(..=h) {
            let undecided = entries.iter().any(|(id, priority)| {
                !priority.is_untrusted() && shard.record.decision(*id).is_none()
            });
            if undecided {
                h = epoch - 1;
                break;
            }
        }
        if h == 0 {
            return Epoch::ZERO;
        }
    }
    Epoch(h)
}

/// Prunes the guarded state through `horizon`: drops sub-horizon log entries
/// outside the pinned-ancestor closure, sub-horizon epoch publication
/// records, and every shard's sub-horizon relevance slices; raises the
/// relevance floors and the pruned-through mark. Deterministic over durable
/// state — live pruning and WAL replay share this exact function.
fn prune_locked(
    log: &mut LogShard,
    shards: &mut [std::sync::RwLockWriteGuard<'_, ParticipantShard>],
    horizon: Epoch,
    schema: &Schema,
) -> PruneReport {
    let pinned = log.log.pinned_ancestors(schema, horizon);
    let pinned_count = pinned.len() as u64;
    let pruned_log_entries = log.log.prune_below(horizon, &pinned);
    let pruned_epoch_records = log.registry.prune_through(horizon);
    let mut pruned_relevance_entries = 0u64;
    let mut pruned_checkpoints = 0u64;
    for shard in shards.iter_mut() {
        if !shard.relevance.is_empty() {
            let keep = shard.relevance.split_off(&(horizon.as_u64() + 1));
            pruned_relevance_entries +=
                shard.relevance.values().map(|v| v.len() as u64).sum::<u64>();
            shard.relevance = keep;
        }
        if shard.registered {
            shard.relevance_floor = shard.relevance_floor.max(horizon);
        }
        // A checkpoint of a retired (or never-completed-registration) shard is
        // superseded once the horizon passes it: retirement is final — a
        // returning participant re-registers as a late member floored at the
        // membership frontier — so nothing will ever rebuild from the old
        // instance image. Registered shards keep theirs: it is the rebuild
        // base under ConvergedOnly retention.
        if (!shard.registered || shard.retired)
            && shard.checkpoint.as_ref().is_some_and(|c| c.epoch <= horizon)
        {
            shard.checkpoint = None;
            pruned_checkpoints += 1;
        }
    }
    log.pruned_through = horizon;
    PruneReport {
        horizon,
        pruned_log_entries,
        pruned_relevance_entries,
        pruned_epoch_records,
        pinned: pinned_count,
        live_log_entries: log.log.len() as u64,
        pruned_checkpoints,
    }
}

/// Applies a committed reconciliation to a participant shard: decisions,
/// the `(recno, epoch)` reconciliation record, and the epoch cursor move
/// together. Shared by the live commit path and WAL replay.
fn apply_reconciliation(
    shard: &mut ParticipantShard,
    recno: ReconciliationId,
    epoch: Epoch,
    accepted: &[TransactionId],
    rejected: &[TransactionId],
) {
    for id in accepted {
        shard.record.record(*id, Decision::Accepted);
    }
    for id in rejected {
        shard.record.record(*id, Decision::Rejected);
    }
    shard.record.record_reconciliation(recno, epoch);
    shard.cursor = Some(epoch);
}

/// Builds the candidate (transaction extension plus priority) for a trusted
/// transaction, excluding antecedents the participant has already accepted.
/// Returns the candidate together with the number of extension members that
/// had to be fetched (used by the DHT store's message accounting). In
/// `rescan` mode every member's update list is deep-copied, reproducing the
/// pre-interning baseline cost; otherwise members share the log's update
/// lists by reference count.
fn build_candidate(
    log: &TransactionLog,
    schema: &Schema,
    accepted: &FxHashSet<TransactionId>,
    txn: &Transaction,
    priority: Priority,
    rescan: bool,
) -> (CandidateTransaction, usize) {
    let member_ids = log.transaction_extension(txn, schema, accepted);
    let mut members = Vec::with_capacity(member_ids.len());
    let mut fetched = 0usize;
    for id in member_ids {
        if id == txn.id() {
            continue;
        }
        if let Some(t) = log.get(id) {
            let updates = if rescan { Arc::new(t.updates().to_vec()) } else { t.shared_updates() };
            members.push((id, updates));
            fetched += 1;
        }
    }
    let root_updates = if rescan { Arc::new(txn.updates().to_vec()) } else { txn.shared_updates() };
    members.push((txn.id(), root_updates));
    (CandidateTransaction::from_members(txn.id(), priority, members), fetched)
}

impl Clone for StoreCatalog {
    /// Deep-copies the durable catalogue state (log, registry, shards).
    /// Open sessions are soft state and are *not* cloned — the clone starts
    /// with an empty session table. The clone is always **ephemeral**: a WAL
    /// file has one writer, so a durable catalogue's clone is an in-memory
    /// copy (use [`StoreCatalog::recover`] to reopen durable state).
    fn clone(&self) -> Self {
        let log = self.log.read().expect("log lock").clone();
        let shards: FxHashMap<ParticipantId, Arc<RwLock<ParticipantShard>>> = self
            .shards
            .read()
            .expect("shard map lock")
            .iter()
            .map(|(id, shard)| {
                (*id, Arc::new(RwLock::new(shard.read().expect("shard lock").clone())))
            })
            .collect();
        StoreCatalog {
            schema: self.schema.clone(),
            log: RwLock::new(log),
            shards: RwLock::new(shards),
            sessions: Mutex::new(FxHashMap::default()),
            next_session: AtomicU64::new(1),
            durability: Durability::Ephemeral,
            retention: RwLock::new(self.retention()),
            alloc_latency: RwLock::new(self.alloc_latency()),
        }
    }
}

impl fmt::Debug for StoreCatalog {
    /// Renders the *durable* state only (schema, log shard, participant
    /// shards in id order). The session table and the handle counter are
    /// soft state and are deliberately excluded, so an aborted session
    /// leaves the Debug rendering byte-identical — the property the session
    /// tests pin down.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let log = self.log.read().expect("log lock");
        let shards = self.shards.read().expect("shard map lock");
        let ordered: BTreeMap<ParticipantId, ParticipantShard> = shards
            .iter()
            .map(|(id, shard)| (*id, shard.read().expect("shard lock").clone()))
            .collect();
        f.debug_struct("StoreCatalog")
            .field("schema", &self.schema)
            .field("log", &*log)
            .field("shards", &ordered)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{Tuple, Update};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn txn(i: u32, j: u64, updates: Vec<Update>) -> Transaction {
        Transaction::from_parts(p(i), j, updates).unwrap()
    }

    fn catalog_with_policies() -> StoreCatalog {
        let cat = StoreCatalog::new(bioinformatics_schema());
        cat.register_policy(TrustPolicy::new(p(1)).trusting(p(2), 1u32).trusting(p(3), 1u32));
        cat.register_policy(TrustPolicy::new(p(2)).trusting(p(1), 2u32).trusting(p(3), 1u32));
        cat.register_policy(TrustPolicy::new(p(3)).trusting(p(2), 1u32));
        cat
    }

    /// Drains every entry of a fresh session, committing nothing.
    fn session_entries(cat: &StoreCatalog, participant: ParticipantId) -> Vec<RelevanceEntry> {
        let opened = cat.open_session(participant, false).unwrap();
        let mut out = Vec::new();
        loop {
            let batch = cat.batch(opened.session, 100).unwrap();
            out.extend(batch.candidates.iter().map(|(c, _)| (c.id, c.priority)));
            out.extend(batch.untrusted.iter().map(|id| (*id, Priority::UNTRUSTED)));
            if batch.exhausted {
                break;
            }
        }
        cat.abort_session(opened.session);
        out
    }

    #[test]
    fn publish_assigns_epochs_and_marks_own_accepted() {
        let cat = catalog_with_policies();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let e = cat.publish(p(3), vec![x.clone()]).unwrap();
        assert_eq!(e, Epoch(1));
        assert!(cat.accepted_set(p(3)).contains(&x.id()));
        assert_eq!(cat.largest_stable_epoch(), Epoch(1));
        assert_eq!(cat.transaction(x.id()).unwrap().as_ref(), &x);
        assert_eq!(cat.participants(), vec![p(1), p(2), p(3)]);
        assert_eq!(cat.log_len(), 1);
    }

    #[test]
    fn sessions_exclude_own_and_decided() {
        let cat = catalog_with_policies();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let x2 = txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(2))]);
        cat.publish(p(3), vec![x3.clone()]).unwrap();
        cat.publish(p(2), vec![x2.clone()]).unwrap();

        let opened = cat.open_session(p(2), false).unwrap();
        assert_eq!(opened.recno, ReconciliationId(1));
        assert_eq!(opened.previous, Epoch::ZERO);
        assert_eq!(opened.epoch, Epoch(2));
        let batch = cat.batch(opened.session, 10).unwrap();
        // p2's own transaction is excluded; p3's is relevant.
        assert_eq!(batch.candidates.len(), 1);
        assert_eq!(batch.candidates[0].0.id, x3.id());
        cat.abort_session(opened.session);

        // After p2 rejects it, it is no longer relevant.
        cat.record_decisions(p(2), &[], &[x3.id()]).unwrap();
        assert!(session_entries(&cat, p(2)).is_empty());
        assert!(cat.rejected_set(p(2)).contains(&x3.id()));
    }

    #[test]
    fn priorities_follow_registered_policies() {
        let cat = catalog_with_policies();
        let from1 = txn(1, 0, vec![Update::insert("Function", func("a", "b", "c"), p(1))]);
        cat.publish(p(1), vec![from1.clone()]).unwrap();
        assert_eq!(cat.priority_for(p(2), &from1), Priority(2));
        assert_eq!(cat.priority_for(p(3), &from1), Priority::UNTRUSTED);
        // Unregistered participants trust nothing.
        assert_eq!(cat.priority_for(p(9), &from1), Priority::UNTRUSTED);
        assert!(cat.policy(p(1)).is_some());
        assert!(cat.policy(p(9)).is_none());
        // The publisher's auto-created shard never lists it as registered.
        let unregistered = StoreCatalog::new(bioinformatics_schema());
        unregistered
            .publish(
                p(7),
                vec![txn(7, 0, vec![Update::insert("Function", func("x", "y", "z"), p(7))])],
            )
            .unwrap();
        assert!(unregistered.participants().is_empty());
        assert!(unregistered.policy(p(7)).is_none());
    }

    #[test]
    fn candidates_include_undecided_antecedents() {
        let cat = catalog_with_policies();
        let x0 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "v1"), p(3))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "v1"),
                func("rat", "prot1", "v2"),
                p(2),
            )],
        );
        cat.publish(p(3), vec![x0.clone()]).unwrap();
        cat.publish(p(2), vec![x1.clone()]).unwrap();

        // p1 trusts both; the candidate for x1 must carry x0 as a member.
        let opened = cat.open_session(p(1), false).unwrap();
        let batch = cat.batch(opened.session, 10).unwrap();
        cat.abort_session(opened.session);
        let (cand, fetched) =
            batch.candidates.iter().find(|(c, _)| c.id == x1.id()).cloned().unwrap();
        assert_eq!(fetched, 1);
        assert_eq!(cand.members.len(), 2);
        assert_eq!(cand.members[0].0, x0.id());
        assert_eq!(cand.members[1].0, x1.id());

        // Once p1 has accepted x0, the extension stops at x1.
        cat.record_decisions(p(1), &[x0.id()], &[]).unwrap();
        let opened = cat.open_session(p(1), false).unwrap();
        let batch = cat.batch(opened.session, 10).unwrap();
        cat.abort_session(opened.session);
        let (cand, fetched) =
            batch.candidates.iter().find(|(c, _)| c.id == x1.id()).cloned().unwrap();
        assert_eq!(fetched, 0);
        assert_eq!(cand.members.len(), 1);
    }

    #[test]
    fn committed_sessions_advance_the_cursor_and_recno() {
        let cat = catalog_with_policies();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        cat.publish(p(3), vec![x]).unwrap();
        assert_eq!(cat.epoch_cursor(p(1)), Epoch::ZERO);
        let opened = cat.open_session(p(1), false).unwrap();
        assert_eq!((opened.recno, opened.epoch), (ReconciliationId(1), Epoch(1)));
        // Nothing durable changed yet.
        assert_eq!(cat.current_reconciliation(p(1)), ReconciliationId::default());
        assert_eq!(cat.epoch_cursor(p(1)), Epoch::ZERO);
        cat.commit_session(opened.session, &[], &[]).unwrap();
        assert_eq!(cat.current_reconciliation(p(1)), ReconciliationId(1));
        assert_eq!(cat.epoch_cursor(p(1)), Epoch(1));

        let y = txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(2))]);
        cat.publish(p(2), vec![y]).unwrap();
        let opened = cat.open_session(p(1), false).unwrap();
        assert_eq!(opened.recno, ReconciliationId(2));
        assert_eq!(opened.previous, Epoch(1));
        assert_eq!(opened.epoch, Epoch(2));
        cat.commit_session(opened.session, &[], &[]).unwrap();
    }

    #[test]
    fn aborted_sessions_change_nothing_and_unknown_handles_error() {
        let cat = catalog_with_policies();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        cat.publish(p(3), vec![x]).unwrap();
        let before = format!("{cat:?}");
        let opened = cat.open_session(p(1), false).unwrap();
        assert_eq!(cat.open_sessions(), 1);
        assert!(cat.abort_session(opened.session));
        assert_eq!(cat.open_sessions(), 0);
        assert_eq!(format!("{cat:?}"), before);
        // Double abort is a no-op; batch/commit on the dead handle error.
        assert!(!cat.abort_session(opened.session));
        assert!(matches!(cat.batch(opened.session, 1), Err(StorageError::Session(_))));
        assert!(matches!(
            cat.commit_session(opened.session, &[], &[]),
            Err(StorageError::Session(_))
        ));
    }

    #[test]
    fn overlapping_sessions_for_one_participant_are_rejected() {
        // Two live sessions for the same participant would commit duplicate
        // recnos and could move the epoch cursor backwards; the second open
        // must fail until the first finishes. Different participants overlap
        // freely (covered by the interleaved-session integration test).
        let cat = catalog_with_policies();
        let first = cat.open_session(p(1), false).unwrap();
        assert!(matches!(cat.open_session(p(1), false), Err(StorageError::Session(_))));
        let other = cat.open_session(p(2), false).unwrap();
        cat.abort_session(other.session);
        cat.commit_session(first.session, &[], &[]).unwrap();
        // After the commit, a fresh session opens with the next recno.
        let second = cat.open_session(p(1), false).unwrap();
        assert_eq!(second.recno, ReconciliationId(2));
        cat.abort_session(second.session);
    }

    #[test]
    fn duplicate_publication_is_rejected_atomically() {
        // A batch containing an already-published (or internally duplicated)
        // id fails before anything is mutated: no epoch is allocated, no
        // relevance entry or decision leaks.
        let cat = catalog_with_policies();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        cat.publish(p(3), vec![x.clone()]).unwrap();
        let before = format!("{cat:?}");
        let y = txn(3, 1, vec![Update::insert("Function", func("rat", "prot2", "b"), p(3))]);
        assert!(cat.publish(p(3), vec![y.clone(), x.clone()]).is_err());
        assert!(cat.publish(p(3), vec![y.clone(), y.clone()]).is_err());
        assert_eq!(format!("{cat:?}"), before, "failed publish mutated the catalogue");
        assert_eq!(cat.largest_stable_epoch(), Epoch(1));
    }

    #[test]
    fn relevance_index_matches_rescan_baseline() {
        let cat = catalog_with_policies();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let x1 = txn(1, 0, vec![Update::insert("Function", func("dog", "prot9", "z"), p(1))]);
        let x2 = txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(2))]);
        cat.publish(p(3), vec![x3]).unwrap();
        cat.publish(p(1), vec![x1]).unwrap();
        cat.publish(p(2), vec![x2.clone()]).unwrap();
        cat.record_decisions(p(1), &[x2.id()], &[]).unwrap();

        for participant in [p(1), p(2), p(3)] {
            let incremental = session_entries(&cat, participant);
            let opened = cat.open_session(participant, true).unwrap();
            let mut rescan = Vec::new();
            loop {
                let batch = cat.batch(opened.session, 100).unwrap();
                rescan.extend(batch.candidates.iter().map(|(c, _)| (c.id, c.priority)));
                rescan.extend(batch.untrusted.iter().map(|id| (*id, Priority::UNTRUSTED)));
                if batch.exhausted {
                    break;
                }
            }
            cat.abort_session(opened.session);
            assert_eq!(incremental, rescan, "divergence for participant {participant}");
        }
    }

    #[test]
    fn late_registration_rebuilds_the_relevance_index() {
        let cat = StoreCatalog::new(bioinformatics_schema());
        cat.register_policy(TrustPolicy::new(p(2)));
        let x2 = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        cat.publish(p(2), vec![x2.clone()]).unwrap();

        // p1 registers only after the publication; its index must cover the
        // already-published epoch.
        cat.register_policy(TrustPolicy::new(p(1)).trusting(p(2), 3u32));
        let found = session_entries(&cat, p(1));
        assert_eq!(found, vec![(x2.id(), Priority(3))]);
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("orchestra-catalog-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn durable_catalog(dir: &Path) -> StoreCatalog {
        let schema = bioinformatics_schema();
        let backend = FileWalBackend::create(dir, &schema).unwrap();
        let cat = StoreCatalog::with_durability(schema, Durability::FileWal(backend));
        cat.register_policy(TrustPolicy::new(p(1)).trusting(p(2), 1u32).trusting(p(3), 1u32));
        cat.register_policy(TrustPolicy::new(p(2)).trusting(p(1), 2u32).trusting(p(3), 1u32));
        cat.register_policy(TrustPolicy::new(p(3)).trusting(p(2), 1u32));
        cat
    }

    /// A small durable history: publishes, a session commit, an
    /// out-of-session decision and a late registration.
    fn run_history(cat: &StoreCatalog) {
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let x2 = txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(2))]);
        let x1 = txn(1, 0, vec![Update::insert("Function", func("dog", "prot9", "z"), p(1))]);
        cat.publish(p(3), vec![x3.clone()]).unwrap();
        cat.publish(p(2), vec![x2.clone()]).unwrap();
        let opened = cat.open_session(p(1), false).unwrap();
        cat.commit_session(opened.session, &[x3.id()], &[x2.id()]).unwrap();
        cat.publish(p(1), vec![x1]).unwrap();
        cat.record_decisions(p(2), &[], &[x3.id()]).unwrap();
        cat.register_policy(TrustPolicy::new(p(4)).trusting(p(1), 3u32));
    }

    #[test]
    fn wal_replay_rebuilds_byte_identical_state() {
        let dir = tmp_dir("replay");
        let cat = durable_catalog(&dir);
        run_history(&cat);
        let live = format!("{cat:?}");
        drop(cat);

        let recovered = StoreCatalog::recover(&dir).unwrap();
        assert_eq!(format!("{recovered:?}"), live, "recovered state diverged");
        // The recovered catalogue still serves sessions and stays durable:
        // another publish lands in the same WAL and survives another crash.
        let y = txn(2, 1, vec![Update::insert("Function", func("cat", "prot5", "q"), p(2))]);
        recovered.publish(p(2), vec![y]).unwrap();
        let live2 = format!("{recovered:?}");
        drop(recovered);
        let recovered2 = StoreCatalog::recover(&dir).unwrap();
        assert_eq!(format!("{recovered2:?}"), live2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_compacts_and_recovery_replays_on_top() {
        let dir = tmp_dir("snapshot");
        let cat = durable_catalog(&dir);
        run_history(&cat);
        let records_before = cat.durability().file_backend().unwrap().wal_records();
        assert!(records_before > 1);
        let generation = cat.snapshot().unwrap();
        assert_eq!(generation, 1);
        assert_eq!(cat.durability().file_backend().unwrap().wal_records(), 0);
        // The old generation's log is gone; the snapshot carries the state.
        assert!(!snapshot::wal_path(&dir, 0).exists());

        // Post-snapshot records replay on top of the snapshot.
        let z = txn(3, 1, vec![Update::insert("Function", func("owl", "prot7", "w"), p(3))]);
        cat.publish(p(3), vec![z]).unwrap();
        let live = format!("{cat:?}");
        drop(cat);
        let recovered = StoreCatalog::recover(&dir).unwrap();
        assert_eq!(format!("{recovered:?}"), live);
        assert_eq!(recovered.durability().file_backend().unwrap().generation(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ephemeral_catalogues_refuse_to_snapshot() {
        let cat = catalog_with_policies();
        assert!(matches!(cat.snapshot(), Err(StorageError::Persistence(_))));
        assert!(!cat.durability().is_durable());
    }

    #[test]
    fn recover_from_an_empty_directory_errors() {
        let dir = tmp_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(StoreCatalog::recover(&dir), Err(StorageError::Persistence(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn undecided_candidates_mirror_the_deferred_set() {
        let cat = catalog_with_policies();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let x2 = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "b"), p(2))]);
        cat.publish(p(3), vec![x3.clone()]).unwrap();
        cat.publish(p(2), vec![x2.clone()]).unwrap();
        // Before any reconciliation the cursor is zero: nothing was offered,
        // so nothing counts as previously deferred.
        assert!(cat.undecided_candidates(p(1)).is_empty());

        // p1 reconciles, deciding x3 but leaving x2 undecided (deferred
        // client-side); the store's recovery stream must re-offer exactly x2.
        let opened = cat.open_session(p(1), false).unwrap();
        cat.commit_session(opened.session, &[x3.id()], &[]).unwrap();
        let undecided = cat.undecided_candidates(p(1));
        assert_eq!(undecided.len(), 1);
        assert_eq!(undecided[0].id, x2.id());
        assert_eq!(undecided[0].priority, Priority(1));
        // Unknown participants have no recovery stream.
        assert!(cat.undecided_candidates(p(9)).is_empty());
        assert_eq!(cat.epoch_of(x3.id()), Some(Epoch(1)));
        assert_eq!(cat.epoch_of(TransactionId::new(p(9), 9)), None);
    }

    /// A fully trusting confederation of `n` participants (everyone trusts
    /// everyone at priority 1), used by the retention tests so every
    /// published transaction is relevant to every other participant.
    fn fully_trusting(n: u32) -> StoreCatalog {
        let cat = StoreCatalog::new(bioinformatics_schema());
        for i in 1..=n {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=n {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            cat.register_policy(policy);
        }
        cat
    }

    /// Opens a session, accepts every streamed candidate (roots and
    /// members) and commits.
    fn reconcile_accept_all(cat: &StoreCatalog, participant: ParticipantId) {
        let opened = cat.open_session(participant, false).unwrap();
        let mut accepted = Vec::new();
        loop {
            let batch = cat.batch(opened.session, 64).unwrap();
            for (cand, _) in &batch.candidates {
                accepted.extend(cand.members.iter().map(|(id, _)| *id));
            }
            if batch.exhausted {
                break;
            }
        }
        cat.commit_session(opened.session, &accepted, &[]).unwrap();
    }

    /// insert → delete → re-insert of one value: after everyone converges,
    /// only the final insert is reachable (the delete writes nothing and the
    /// first insert is superseded), so pruning removes exactly two entries.
    fn converged_insert_delete_insert(cat: &StoreCatalog) -> (Transaction, Transaction) {
        let x1 = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "v1"), p(1))]);
        let x2 = txn(2, 0, vec![Update::delete("Function", func("rat", "prot1", "v1"), p(2))]);
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "v1"), p(3))]);
        cat.publish(p(1), vec![x1.clone()]).unwrap();
        cat.publish(p(2), vec![x2]).unwrap();
        cat.publish(p(3), vec![x3.clone()]).unwrap();
        for i in 1..=3 {
            reconcile_accept_all(cat, p(i));
        }
        (x1, x3)
    }

    #[test]
    fn horizon_needs_frontier_cursors_and_decisions() {
        let cat = fully_trusting(3);
        // Membership open: nothing is ever prunable.
        assert_eq!(cat.convergence_horizon(), Epoch::ZERO);
        cat.close_membership().unwrap();
        assert_eq!(cat.membership_frontier(), Epoch(u64::MAX));
        // Empty store: stable frontier caps at zero.
        assert_eq!(cat.convergence_horizon(), Epoch::ZERO);

        let x = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))]);
        cat.publish(p(1), vec![x.clone()]).unwrap();
        // Cursors still at zero.
        assert_eq!(cat.convergence_horizon(), Epoch::ZERO);
        reconcile_accept_all(&cat, p(1));
        reconcile_accept_all(&cat, p(2));
        // p3 has not reconciled: its cursor pins the horizon.
        assert_eq!(cat.convergence_horizon(), Epoch::ZERO);
        reconcile_accept_all(&cat, p(3));
        assert_eq!(cat.convergence_horizon(), Epoch(1));

        // An undecided trusted entry below a cursor pins the horizon even
        // after every cursor has passed: p1 defers (commits no decision).
        let y = txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(2))]);
        cat.publish(p(2), vec![y.clone()]).unwrap();
        let opened = cat.open_session(p(1), false).unwrap();
        cat.commit_session(opened.session, &[], &[]).unwrap(); // deferred
        reconcile_accept_all(&cat, p(2));
        reconcile_accept_all(&cat, p(3));
        assert_eq!(cat.convergence_horizon(), Epoch(1));
        // Once p1 decides out of session (conflict resolution), it unpins.
        cat.record_decisions(p(1), &[], &[y.id()]).unwrap();
        assert_eq!(cat.convergence_horizon(), Epoch(2));

        // Under KeepAll the policy-capped horizon stays zero.
        assert_eq!(cat.retention(), RetentionPolicy::KeepAll);
        assert_eq!(cat.advance_horizon(), Epoch::ZERO);
        cat.set_retention(RetentionPolicy::ConvergedOnly);
        assert_eq!(cat.advance_horizon(), Epoch(2));
    }

    #[test]
    fn open_sessions_pin_the_horizon() {
        let cat = fully_trusting(2);
        cat.close_membership().unwrap();
        let x = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))]);
        cat.publish(p(1), vec![x]).unwrap();
        reconcile_accept_all(&cat, p(1));
        reconcile_accept_all(&cat, p(2));
        assert_eq!(cat.convergence_horizon(), Epoch(1));
        // An unregistered participant's session pins at its (zero) cursor —
        // the session opened against the pre-horizon state.
        let opened = cat.open_session(p(9), false).unwrap();
        assert_eq!(cat.convergence_horizon(), Epoch::ZERO);
        cat.abort_session(opened.session);
        assert_eq!(cat.convergence_horizon(), Epoch(1));
    }

    #[test]
    fn prune_drops_converged_history_and_preserves_decisions() {
        let cat = fully_trusting(3);
        cat.set_retention(RetentionPolicy::ConvergedOnly);
        cat.close_membership().unwrap();
        let (x1, x3) = converged_insert_delete_insert(&cat);

        // Keep an unpruned twin: every later decision must match it.
        let unpruned = cat.clone();
        unpruned.set_retention(RetentionPolicy::KeepAll);

        assert_eq!(cat.advance_horizon(), Epoch(3));
        let report = cat.prune_to_horizon().unwrap();
        assert_eq!(report.horizon, Epoch(3));
        assert_eq!(report.pruned_log_entries, 2);
        assert_eq!(report.pinned, 1, "the live value's last writer is pinned");
        assert_eq!(report.live_log_entries, 1);
        assert!(report.pruned_relevance_entries > 0);
        assert_eq!(report.pruned_epoch_records, 3);
        assert_eq!(cat.pruned_through(), Epoch(3));
        assert_eq!(cat.log_len(), 1);
        assert_eq!(cat.log_total_published(), 3);
        assert_eq!(cat.relevance_len(), 0);

        // Decisions survive pruning even for pruned transactions.
        assert!(cat.accepted_set(p(2)).contains(&x1.id()));
        assert!(cat.transaction(x1.id()).is_none(), "pruned entry is gone");
        assert!(cat.transaction(x3.id()).is_some(), "pinned entry stays");

        // A second pass with nothing new is a no-op.
        let again = cat.prune_to_horizon().unwrap();
        assert!(again.is_noop());

        // The schedule continues identically on both stores: a delete of the
        // live value must chase to the pinned writer on each.
        let x4 = txn(2, 1, vec![Update::delete("Function", func("rat", "prot1", "v1"), p(2))]);
        for store in [&cat, &unpruned] {
            store.publish(p(2), vec![x4.clone()]).unwrap();
        }
        for participant in [p(1), p(3)] {
            let collect = |store: &StoreCatalog| {
                let opened = store.open_session(participant, false).unwrap();
                let batch = store.batch(opened.session, 64).unwrap();
                store.abort_session(opened.session);
                batch
                    .candidates
                    .iter()
                    .map(|(c, _)| (c.id, c.members.iter().map(|(id, _)| *id).collect::<Vec<_>>()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(collect(&cat), collect(&unpruned), "candidates diverged after pruning");
        }
    }

    #[test]
    fn keep_last_n_holds_back_a_recent_window() {
        let cat = fully_trusting(2);
        cat.set_retention(RetentionPolicy::KeepLastN(2));
        cat.close_membership().unwrap();
        for i in 0..4u64 {
            let x = txn(
                1,
                i,
                vec![Update::insert("Function", func("rat", &format!("prot{i}"), "a"), p(1))],
            );
            cat.publish(p(1), vec![x]).unwrap();
        }
        reconcile_accept_all(&cat, p(1));
        reconcile_accept_all(&cat, p(2));
        assert_eq!(cat.convergence_horizon(), Epoch(4));
        // Converged through 4, but the last 2 epochs are held back.
        assert_eq!(cat.advance_horizon(), Epoch(2));
        let report = cat.prune_to_horizon().unwrap();
        assert_eq!(report.horizon, Epoch(2));
        assert_eq!(cat.pruned_through(), Epoch(2));
    }

    #[test]
    fn laggards_pin_and_retirement_releases() {
        let cat = fully_trusting(3);
        cat.set_retention(RetentionPolicy::ConvergedOnly);
        cat.close_membership().unwrap();
        let x = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))]);
        cat.publish(p(1), vec![x.clone()]).unwrap();
        reconcile_accept_all(&cat, p(1));
        reconcile_accept_all(&cat, p(2));

        // p3 never reconciles: the horizon sits at its cursor and pruning is
        // a no-op.
        assert_eq!(cat.convergence_horizon(), Epoch::ZERO);
        assert!(cat.prune_to_horizon().unwrap().is_noop());

        // Retiring the laggard releases the pin; its decisions (none) and
        // the others' stay. It can no longer reconcile, is not listed, and
        // receives no relevance for later publishes.
        cat.retire_participant(p(3)).unwrap();
        assert_eq!(cat.participants(), vec![p(1), p(2)]);
        assert!(matches!(cat.open_session(p(3), false), Err(StorageError::Retention(_))));
        assert_eq!(cat.convergence_horizon(), Epoch(1));
        let report = cat.prune_to_horizon().unwrap();
        assert_eq!(report.horizon, Epoch(1));

        let y = txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(2))]);
        cat.publish(p(2), vec![y]).unwrap();
        assert_eq!(cat.relevance_len(), 1, "only p1 indexes the new epoch");

        // Retiring twice, or retiring an unknown/unregistered participant,
        // errors.
        assert!(matches!(cat.retire_participant(p(3)), Err(StorageError::Retention(_))));
        assert!(matches!(cat.retire_participant(p(42)), Err(StorageError::Retention(_))));
    }

    #[test]
    fn late_registration_is_floored_at_the_frontier_on_pruned_and_unpruned_stores() {
        let build = |prune: bool| {
            let cat = fully_trusting(2);
            cat.set_retention(RetentionPolicy::ConvergedOnly);
            let x = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))]);
            cat.publish(p(1), vec![x]).unwrap();
            reconcile_accept_all(&cat, p(1));
            reconcile_accept_all(&cat, p(2));
            cat.advance_membership_frontier(Epoch(1)).unwrap();
            if prune {
                assert_eq!(cat.prune_to_horizon().unwrap().horizon, Epoch(1));
            }
            // p3 joins late: on both stores its index starts above the
            // frontier — the declaration, not the pruning, fixes this.
            let mut policy = TrustPolicy::new(p(3));
            for j in 1..=2 {
                policy = policy.trusting(p(j), 1u32);
            }
            cat.register_policy(policy);
            let y = txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(2))]);
            cat.publish(p(2), vec![y]).unwrap();
            session_entries(&cat, p(3))
        };
        let pruned = build(true);
        let unpruned = build(false);
        assert_eq!(pruned, unpruned);
        assert_eq!(pruned.len(), 1, "only the post-frontier epoch is offered");
    }

    #[test]
    fn policy_change_reregistration_is_invariant_under_pruning() {
        // An entry untrusted under a participant's old policy never pins the
        // horizon, so its log entry can be pruned while the participant
        // never decided it. If the participant then re-registers a *broader*
        // policy, the rebuild must not resurface the entry on an unpruned
        // store when a pruned one cannot offer it — every registration is
        // floored at the membership frontier, so both behave identically.
        let build = |prune: bool| {
            let cat = StoreCatalog::new(bioinformatics_schema());
            cat.register_policy(TrustPolicy::new(p(1)).trusting(p(2), 1u32).trusting(p(3), 1u32));
            cat.register_policy(TrustPolicy::new(p(2)).trusting(p(1), 1u32).trusting(p(3), 1u32));
            // p3 initially distrusts p2.
            cat.register_policy(TrustPolicy::new(p(3)).trusting(p(1), 1u32));
            cat.set_retention(RetentionPolicy::ConvergedOnly);
            cat.close_membership().unwrap();
            // T from p2 is untrusted for p3; it is later superseded (delete +
            // re-insert) so it leaves the pinned-ancestor set.
            let t = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "v"), p(2))]);
            let del = txn(1, 0, vec![Update::delete("Function", func("rat", "prot1", "v"), p(1))]);
            let re = txn(1, 1, vec![Update::insert("Function", func("rat", "prot1", "v"), p(1))]);
            cat.publish(p(2), vec![t.clone()]).unwrap();
            cat.publish(p(1), vec![del]).unwrap();
            cat.publish(p(1), vec![re]).unwrap();
            for i in 1..=3 {
                reconcile_accept_all(&cat, p(i));
            }
            if prune {
                let report = cat.prune_to_horizon().unwrap();
                assert!(report.pruned_log_entries > 0, "T must actually be pruned");
                assert!(cat.transaction(t.id()).is_none());
            }
            // p3 re-registers, now trusting p2: the rebuild floors at the
            // frontier on both stores, so the long-decided-by-everyone-else
            // (but never by p3) transaction T is not resurfaced anywhere.
            cat.register_policy(TrustPolicy::new(p(3)).trusting(p(1), 1u32).trusting(p(2), 1u32));
            session_entries(&cat, p(3))
        };
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn frontier_advances_are_monotone() {
        let cat = fully_trusting(2);
        assert_eq!(cat.advance_membership_frontier(Epoch(5)).unwrap(), Epoch(5));
        // A smaller value is a no-op, not a rollback.
        assert_eq!(cat.advance_membership_frontier(Epoch(3)).unwrap(), Epoch(5));
        assert_eq!(cat.membership_frontier(), Epoch(5));
    }

    #[test]
    fn pruned_durable_state_recovers_byte_identically() {
        for snapshot_after_prune in [false, true] {
            let dir = tmp_dir(&format!("retention-{snapshot_after_prune}"));
            let cat = {
                let schema = bioinformatics_schema();
                let backend = FileWalBackend::create(&dir, &schema).unwrap();
                let cat = StoreCatalog::with_durability(schema, Durability::FileWal(backend));
                for i in 1..=3 {
                    let mut policy = TrustPolicy::new(p(i));
                    for j in 1..=3 {
                        if i != j {
                            policy = policy.trusting(p(j), 1u32);
                        }
                    }
                    cat.register_policy(policy);
                }
                cat
            };
            cat.set_retention(RetentionPolicy::ConvergedOnly);
            cat.close_membership().unwrap();
            converged_insert_delete_insert(&cat);
            cat.retire_participant(p(3)).unwrap();
            let report = cat.prune_to_horizon().unwrap();
            assert!(report.pruned_log_entries > 0);
            if snapshot_after_prune {
                cat.snapshot().unwrap();
            }
            // Post-prune activity lands after the Prune record (or in the
            // fresh generation).
            let z = txn(2, 1, vec![Update::insert("Function", func("owl", "prot7", "w"), p(2))]);
            cat.publish(p(2), vec![z]).unwrap();
            let live = format!("{cat:?}");
            drop(cat);
            let recovered = StoreCatalog::recover(&dir).unwrap();
            assert_eq!(format!("{recovered:?}"), live, "pruned recovery diverged");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn recover_then_prune_equals_prune_then_recover() {
        let dir = tmp_dir("prune-order");
        let schema = bioinformatics_schema();
        let backend = FileWalBackend::create(&dir, &schema).unwrap();
        let cat = StoreCatalog::with_durability(schema, Durability::FileWal(backend));
        for i in 1..=3 {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=3 {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            cat.register_policy(policy);
        }
        cat.set_retention(RetentionPolicy::ConvergedOnly);
        cat.close_membership().unwrap();
        converged_insert_delete_insert(&cat);

        // Path A: prune the live store (twin of what a pre-crash prune
        // would leave), rendered from an ephemeral clone so the durable
        // directory stays at the pre-prune point for path B.
        let twin = cat.clone();
        twin.prune_to_horizon().unwrap();
        let pruned_live = format!("{twin:?}");
        drop(cat);

        // Path B: crash before the prune, recover, then prune.
        let recovered = StoreCatalog::recover(&dir).unwrap();
        recovered.set_retention(RetentionPolicy::ConvergedOnly);
        recovered.prune_to_horizon().unwrap();
        assert_eq!(format!("{recovered:?}"), pruned_live, "prune/recover order changed state");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clones_copy_durable_state_but_not_sessions() {
        let cat = catalog_with_policies();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        cat.publish(p(3), vec![x.clone()]).unwrap();
        let opened = cat.open_session(p(1), false).unwrap();
        let copy = cat.clone();
        assert_eq!(copy.open_sessions(), 0);
        assert_eq!(copy.log_len(), 1);
        assert_eq!(copy.participants(), cat.participants());
        // The clone is independent: decisions recorded in one do not leak
        // into the other.
        copy.record_decisions(p(1), &[x.id()], &[]).unwrap();
        assert!(!cat.accepted_set(p(1)).contains(&x.id()));
        cat.abort_session(opened.session);
    }

    fn stamp(cat: &StoreCatalog, publisher: ParticipantId) -> CausalStamp {
        CausalStamp::new(publisher, cat.next_publisher_seq(publisher), cat.causal_frontier())
    }

    #[test]
    fn causal_mode_closes_the_scalar_path_and_vice_versa() {
        let cat = catalog_with_policies();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        // Scalar mode rejects stamped publishes.
        assert!(!cat.causal_mode());
        let premature = CausalStamp::new(p(3), 1, AntichainClock::default());
        assert!(matches!(
            cat.publish_causal(premature, vec![x.clone()]),
            Err(StorageError::Causal(_))
        ));
        cat.publish(p(3), vec![x]).unwrap();

        cat.enable_causal_mode().unwrap();
        cat.enable_causal_mode().unwrap(); // idempotent
        assert!(cat.causal_mode());
        // Causal mode rejects scalar publishes, atomically.
        let before = format!("{cat:?}");
        let y = txn(3, 1, vec![Update::insert("Function", func("rat", "prot2", "b"), p(3))]);
        assert!(matches!(cat.publish(p(3), vec![y.clone()]), Err(StorageError::Causal(_))));
        assert_eq!(format!("{cat:?}"), before, "rejected scalar publish mutated the catalogue");
        // The stamped path works and keeps allocating arrival epochs.
        let epoch = cat.publish_causal(stamp(&cat, p(3)), vec![y]).unwrap();
        assert_eq!(epoch, Epoch(2));
        assert_eq!(cat.largest_stable_epoch(), Epoch(2));
        assert_eq!(cat.causal_frontier().to_string(), "{p3:1}");
        assert_eq!(cat.next_publisher_seq(p(3)), 2);
    }

    #[test]
    fn out_of_order_stamps_are_rejected_atomically() {
        let cat = catalog_with_policies();
        cat.enable_causal_mode().unwrap();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        cat.publish_causal(stamp(&cat, p(3)), vec![x]).unwrap();
        let before = format!("{cat:?}");
        // A sequence gap, a replayed sequence and an unknown parent all fail
        // without allocating an epoch or leaking a relevance entry.
        let y = txn(3, 1, vec![Update::insert("Function", func("rat", "prot2", "b"), p(3))]);
        for bad in [
            CausalStamp::new(p(3), 3, cat.causal_frontier()),
            CausalStamp::new(p(3), 1, cat.causal_frontier()),
            CausalStamp::new(
                p(3),
                2,
                AntichainClock::from_stamps([orchestra_model::StampId::new(p(1), 7)]),
            ),
        ] {
            assert!(matches!(
                cat.publish_causal(bad, vec![y.clone()]),
                Err(StorageError::Causal(_))
            ));
        }
        assert_eq!(format!("{cat:?}"), before, "rejected stamp mutated the catalogue");
        assert_eq!(cat.largest_stable_epoch(), Epoch(1));
    }

    #[test]
    fn causal_history_recovers_byte_identically() {
        let dir = tmp_dir("causal-replay");
        let cat = durable_catalog(&dir);
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        cat.publish(p(3), vec![x3.clone()]).unwrap();
        cat.enable_causal_mode().unwrap();
        let x2 = txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(2))]);
        cat.publish_causal(stamp(&cat, p(2)), vec![x2.clone()]).unwrap();
        let opened = cat.open_session(p(1), false).unwrap();
        cat.commit_session(opened.session, &[x3.id()], &[x2.id()]).unwrap();
        let x1 = txn(1, 0, vec![Update::insert("Function", func("dog", "prot9", "z"), p(1))]);
        cat.publish_causal(stamp(&cat, p(1)), vec![x1]).unwrap();
        let live = format!("{cat:?}");
        drop(cat);

        let recovered = StoreCatalog::recover(&dir).unwrap();
        assert_eq!(format!("{recovered:?}"), live, "recovered causal state diverged");
        assert!(recovered.causal_mode());
        assert_eq!(recovered.next_publisher_seq(p(2)), 2);
        // The recovered store keeps accepting stamped publishes — and the
        // mode switch survives a snapshot compaction too.
        recovered.snapshot().unwrap();
        let y = txn(2, 1, vec![Update::insert("Function", func("cat", "prot5", "q"), p(2))]);
        recovered.publish_causal(stamp(&recovered, p(2)), vec![y]).unwrap();
        let live2 = format!("{recovered:?}");
        drop(recovered);
        let recovered2 = StoreCatalog::recover(&dir).unwrap();
        assert_eq!(format!("{recovered2:?}"), live2);
        assert!(recovered2.causal_mode());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn instance_checkpoints_are_durable_and_survive_compaction() {
        let dir = tmp_dir("checkpoint");
        let cat = durable_catalog(&dir);
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        cat.publish(p(3), vec![x3.clone()]).unwrap();
        let checkpoint = InstanceCheckpoint {
            relations: BTreeMap::from([("Function".to_string(), vec![func("rat", "prot1", "a")])]),
            next_local: 1,
            epoch: Epoch(1),
            accepted_through: 1,
        };
        cat.record_instance_checkpoint(p(3), checkpoint.clone()).unwrap();
        assert_eq!(cat.instance_checkpoint(p(3)), Some(checkpoint.clone()));
        assert_eq!(cat.instance_checkpoint(p(1)), None);
        let live = format!("{cat:?}");
        drop(cat);

        // WAL replay restores the checkpoint…
        let recovered = StoreCatalog::recover(&dir).unwrap();
        assert_eq!(format!("{recovered:?}"), live);
        assert_eq!(recovered.instance_checkpoint(p(3)), Some(checkpoint.clone()));
        // …and so does a snapshot compaction.
        recovered.snapshot().unwrap();
        drop(recovered);
        let recovered2 = StoreCatalog::recover(&dir).unwrap();
        assert_eq!(recovered2.instance_checkpoint(p(3)), Some(checkpoint));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retired_checkpoints_prune_past_the_horizon_and_commute_with_recovery() {
        let dir = tmp_dir("checkpoint-prune");
        let cat = {
            let schema = bioinformatics_schema();
            let backend = FileWalBackend::create(&dir, &schema).unwrap();
            let cat = StoreCatalog::with_durability(schema, Durability::FileWal(backend));
            for i in 1..=4 {
                let mut policy = TrustPolicy::new(p(i));
                for j in 1..=4 {
                    if i != j {
                        policy = policy.trusting(p(j), 1u32);
                    }
                }
                cat.register_policy(policy);
            }
            cat
        };
        cat.set_retention(RetentionPolicy::ConvergedOnly);
        cat.close_membership().unwrap();
        converged_insert_delete_insert(&cat);
        reconcile_accept_all(&cat, p(4));
        let checkpoint = |epoch: u64| InstanceCheckpoint {
            relations: BTreeMap::new(),
            next_local: 0,
            epoch: Epoch(epoch),
            accepted_through: 0,
        };
        // Three checkpoints at the converged point: a registered shard (kept
        // — it is the ConvergedOnly rebuild base), a retired shard behind the
        // horizon (superseded — dropped), and a retired shard whose
        // checkpoint claims an epoch past the horizon (kept until the
        // horizon passes it).
        cat.record_instance_checkpoint(p(2), checkpoint(3)).unwrap();
        cat.record_instance_checkpoint(p(3), checkpoint(3)).unwrap();
        cat.record_instance_checkpoint(p(4), checkpoint(9)).unwrap();
        cat.retire_participant(p(3)).unwrap();
        cat.retire_participant(p(4)).unwrap();

        let report = cat.prune_to_horizon().unwrap();
        assert_eq!(report.horizon, Epoch(3));
        assert_eq!(report.pruned_checkpoints, 1);
        assert_eq!(cat.instance_checkpoint(p(3)), None);
        assert!(cat.instance_checkpoint(p(2)).is_some(), "registered rebuild base kept");
        assert!(cat.instance_checkpoint(p(4)).is_some(), "post-horizon checkpoint kept");

        // A second pass with an unchanged horizon is a no-op.
        assert!(cat.prune_to_horizon().unwrap().is_noop());

        // The WAL-replayed prune drops exactly the same checkpoint.
        let live = format!("{cat:?}");
        drop(cat);
        let recovered = StoreCatalog::recover(&dir).unwrap();
        assert_eq!(format!("{recovered:?}"), live, "replayed prune diverged from the live one");
        assert_eq!(recovered.instance_checkpoint(p(3)), None);
        assert!(recovered.instance_checkpoint(p(2)).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_units_after_skip_count_pruned_entries() {
        // Acceptance order [x1, x2, x3] where pruning removes x1 and x2 (the
        // superseded insert and the delete). A checkpoint through the first
        // two acceptance entries must still replay x3: the skip indexes the
        // full acceptance order, not the surviving units.
        let cat = fully_trusting(3);
        cat.set_retention(RetentionPolicy::ConvergedOnly);
        cat.close_membership().unwrap();
        let (_, x3) = converged_insert_delete_insert(&cat);
        let order: Vec<TransactionId> = {
            let shard = cat.shard_of(p(1)).unwrap();
            let shard = shard.read().expect("shard lock");
            shard.record.accepted_in_order().to_vec()
        };
        assert_eq!(order.len(), 3);
        let report = cat.prune_to_horizon().unwrap();
        assert!(report.pruned_log_entries > 0);
        let after = cat.accepted_replay_units_after(p(1), 2);
        let ids: Vec<TransactionId> = after.iter().flatten().map(|t| t.id()).collect();
        assert_eq!(ids, vec![x3.id()]);
        // Skipping the full prefix leaves nothing.
        assert!(cat.accepted_replay_units_after(p(1), 3).is_empty());
    }

    #[test]
    fn scalar_alloc_latency_serialises_and_causal_overlaps() {
        use std::time::Instant;
        let latency = Duration::from_millis(40);
        let elapsed_publishing = |cat: &StoreCatalog, causal: bool| {
            cat.set_alloc_latency(latency);
            let start = Instant::now();
            std::thread::scope(|scope| {
                for i in 1..=3u32 {
                    let cat = &*cat;
                    scope.spawn(move || {
                        let t = txn(
                            i,
                            0,
                            vec![Update::insert(
                                "Function",
                                func("rat", &format!("prot{i}"), "a"),
                                p(i),
                            )],
                        );
                        if causal {
                            // Stamp against whatever frontier is current;
                            // retry on FIFO races is unnecessary: distinct
                            // publishers never contend on sequences.
                            cat.publish_causal(stamp(cat, p(i)), vec![t]).unwrap();
                        } else {
                            cat.publish(p(i), vec![t]).unwrap();
                        }
                    });
                }
            });
            start.elapsed()
        };

        let scalar = catalog_with_policies();
        let scalar_elapsed = elapsed_publishing(&scalar, false);
        // Three publishers queue on the central allocator: ≥ 3 round trips.
        assert!(scalar_elapsed >= latency * 3, "scalar publishes overlapped: {scalar_elapsed:?}");

        let causal = catalog_with_policies();
        causal.enable_causal_mode().unwrap();
        let causal_elapsed = elapsed_publishing(&causal, true);
        // Client-side stamping pays the round trip outside any lock: the
        // waits overlap, so the wall clock stays well under 3 round trips.
        assert!(
            causal_elapsed < latency * 3,
            "causal publishes serialised their allocation waits: {causal_elapsed:?}"
        );
        assert_eq!(causal.log_len(), 3);
    }
}
