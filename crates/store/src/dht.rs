//! The distributed, DHT-based update store (Section 5.2.2).
//!
//! State and computation are spread over the network of peers: one node (the
//! owner of a predesignated key) is the *epoch allocator*; the owner of the
//! hash of an epoch number is that epoch's *epoch controller*; the owner of
//! the hash of a transaction id is its *transaction controller*. Publication
//! follows the message sequence of the paper's Figure 6, and retrieval of the
//! transactions needed by a reconciliation follows Figure 7, with antecedent
//! chains requested one transaction at a time.
//!
//! The store's logical contents are identical to the centralised store (the
//! shared [`StoreCatalog`]); what differs is the cost model: every protocol
//! message is charged through the simulated network, which adds the
//! configured per-message latency (500 µs by default, as in the paper's
//! setup) and counts messages.

use crate::api::{RelevantTransactions, StoreTiming, UpdateStore};
use crate::catalog::StoreCatalog;
use orchestra_model::{
    Epoch, ParticipantId, ReconciliationId, Schema, Transaction, TransactionId, TrustPolicy,
};
use orchestra_net::{NetworkStats, NodeId, SimNetwork};
use orchestra_storage::Result;
use rustc_hash::{FxHashMap, FxHashSet};
use std::time::{Duration, Instant};

/// Approximate request size in bytes (ids and headers).
const REQUEST_BYTES: u64 = 64;
/// Approximate per-update payload size in bytes.
const UPDATE_BYTES: u64 = 128;

/// Distributed update store over the simulated Pastry-style overlay.
#[derive(Debug, Clone)]
pub struct DhtStore {
    catalog: StoreCatalog,
    network: SimNetwork,
    peer_nodes: FxHashMap<ParticipantId, NodeId>,
    allocator_key: NodeId,
    timing: StoreTiming,
}

impl DhtStore {
    /// Creates an empty DHT store with the paper's 500 µs per-message
    /// latency.
    pub fn new(schema: Schema) -> Self {
        DhtStore::with_latency(schema, Duration::from_micros(SimNetwork::PAPER_LATENCY_US))
    }

    /// Creates an empty DHT store with a custom per-message latency.
    pub fn with_latency(schema: Schema, latency: Duration) -> Self {
        DhtStore {
            catalog: StoreCatalog::new(schema),
            network: SimNetwork::with_latency(Vec::new(), latency),
            peer_nodes: FxHashMap::default(),
            allocator_key: NodeId::hash_str("orchestra/epoch-allocator"),
            timing: StoreTiming::default(),
        }
    }

    /// The underlying catalogue (for inspection in tests and tools).
    pub fn catalog(&self) -> &StoreCatalog {
        &self.catalog
    }

    /// Cumulative network statistics (messages, hops, bytes, latency).
    pub fn network_stats(&self) -> NetworkStats {
        self.network.stats()
    }

    /// Mutable access to the simulated network, used by the network-centric
    /// reconciliation mode to charge its additional message pattern. The
    /// latency charged through this handle is folded into the store timing of
    /// the next [`UpdateStore::take_timing`] call.
    pub(crate) fn network_mut(&mut self) -> &mut SimNetwork {
        &mut self.network
    }

    /// Folds network latency charged outside the timed catalogue wrapper into
    /// the store timing (used by the network-centric reconciliation mode).
    pub(crate) fn record_network_latency(&mut self, micros: u64) {
        self.timing.network += Duration::from_micros(micros);
    }

    fn node_of(&self, participant: ParticipantId) -> NodeId {
        self.peer_nodes
            .get(&participant)
            .copied()
            .unwrap_or_else(|| NodeId::hash_str(&format!("participant-{}", participant.as_u32())))
    }

    fn epoch_key(epoch: Epoch) -> NodeId {
        NodeId::hash_str(&format!("epoch/{}", epoch.as_u64()))
    }

    fn txn_key(id: TransactionId) -> NodeId {
        NodeId::hash_str(&format!("txn/{}/{}", id.participant.as_u32(), id.local))
    }

    fn peer_coordinator_key(participant: ParticipantId) -> NodeId {
        NodeId::hash_str(&format!("coordinator/{}", participant.as_u32()))
    }

    fn txn_bytes(txn: &Transaction) -> u64 {
        REQUEST_BYTES + UPDATE_BYTES * txn.len() as u64
    }

    /// Runs a closure over the catalogue while measuring compute time and the
    /// network latency the closure charges.
    fn timed<T>(&mut self, f: impl FnOnce(&mut StoreCatalog, &mut SimNetwork, &DhtKeys) -> T) -> T {
        let keys = DhtKeys { allocator: self.allocator_key };
        let net_before = self.network.stats().latency_us;
        let start = Instant::now();
        let out = f(&mut self.catalog, &mut self.network, &keys);
        self.timing.compute += start.elapsed();
        let net_after = self.network.stats().latency_us;
        self.timing.network += Duration::from_micros(net_after - net_before);
        out
    }
}

/// Well-known keys of the DHT protocol.
struct DhtKeys {
    allocator: NodeId,
}

impl UpdateStore for DhtStore {
    fn register_participant(&mut self, policy: TrustPolicy) {
        let participant = policy.owner();
        let node = NodeId::hash_str(&format!("participant-{}", participant.as_u32()));
        self.peer_nodes.insert(participant, node);
        self.network.join(node);
        // Trust conditions are distributed to the transaction controllers;
        // registering them is an out-of-band setup step and is not charged to
        // reconciliation time.
        self.catalog.register_policy(policy);
    }

    fn publish(
        &mut self,
        participant: ParticipantId,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch> {
        let peer = self.node_of(participant);
        self.timed(|cat, net, keys| {
            // The logical publication (epoch allocation + log append) happens
            // first so that every Figure 6 message is charged against the
            // *actually allocated* epoch. An earlier version previewed the
            // epoch number before allocation; had the preview ever diverged
            // from the allocation, messages 2-3 would have been charged to
            // the wrong epoch controller's key.
            let txn_refs: Vec<(TransactionId, u64)> =
                transactions.iter().map(|t| (t.id(), DhtStore::txn_bytes(t))).collect();
            let epoch = cat.publish(participant, transactions)?;

            // Figure 6, messages 1-4: epoch allocation round trip, with the
            // allocator informing the epoch controller of the allocated
            // epoch.
            let allocator = net.send_to_key(peer, keys.allocator, REQUEST_BYTES).unwrap_or(peer);
            let epoch_controller = net
                .send_to_key(allocator, DhtStore::epoch_key(epoch), REQUEST_BYTES)
                .unwrap_or(allocator);
            net.send_direct(epoch_controller, allocator, REQUEST_BYTES);
            net.send_direct(allocator, peer, REQUEST_BYTES);

            // Figure 6, message 5: publish the transaction IDs at the epoch
            // controller; message 6: confirmation.
            let id_bytes = REQUEST_BYTES + 16 * txn_refs.len() as u64;
            let controller =
                net.send_to_key(peer, DhtStore::epoch_key(epoch), id_bytes).unwrap_or(peer);
            net.send_direct(controller, peer, REQUEST_BYTES);

            // The peer then sends each transaction to its transaction
            // controller.
            for (id, bytes) in txn_refs {
                net.send_to_key(peer, DhtStore::txn_key(id), bytes);
            }
            Ok(epoch)
        })
    }

    fn begin_reconciliation(&mut self, participant: ParticipantId) -> Result<RelevantTransactions> {
        let peer = self.node_of(participant);
        self.timed(|cat, net, keys| {
            // Ask the epoch allocator for the most recent epoch.
            net.round_trip(peer, keys.allocator, REQUEST_BYTES, REQUEST_BYTES);

            let (recno, previous, epoch) = cat.begin_reconciliation(participant);

            // Request the contents of every epoch since the previous
            // reconciliation from its epoch controller.
            for e in (previous.as_u64() + 1)..=epoch.as_u64() {
                net.round_trip(peer, DhtStore::epoch_key(Epoch(e)), REQUEST_BYTES, REQUEST_BYTES);
            }

            // Record the reconciliation epoch at the peer coordinator.
            net.round_trip(
                peer,
                DhtStore::peer_coordinator_key(participant),
                REQUEST_BYTES,
                REQUEST_BYTES,
            );

            // Request every undecided transaction published in the covered
            // epochs from its transaction controller, straight from the
            // per-epoch relevance index (the message pattern is unchanged:
            // untrusted or irrelevant transactions still cost a request and a
            // short notification reply; trusted ones also pull their
            // antecedent chains, one request per antecedent).
            let relevant = cat.relevant_candidates(participant, previous, epoch);
            let empty = FxHashSet::default();
            let accepted = cat.accepted_set_ref(participant).unwrap_or(&empty);
            let mut candidates = Vec::new();
            for (txn, priority) in relevant {
                if priority.is_untrusted() {
                    // Request + "untrusted" notification.
                    net.round_trip(peer, DhtStore::txn_key(txn.id()), REQUEST_BYTES, REQUEST_BYTES);
                    continue;
                }
                net.round_trip(
                    peer,
                    DhtStore::txn_key(txn.id()),
                    REQUEST_BYTES,
                    DhtStore::txn_bytes(txn),
                );
                let (cand, fetched_members) = cat.build_candidate_with(accepted, txn, priority);
                // Each undecided antecedent is fetched from its own
                // transaction controller.
                for (member_id, member_updates) in cand.members.iter().take(fetched_members) {
                    let bytes = REQUEST_BYTES + UPDATE_BYTES * member_updates.len() as u64;
                    net.round_trip(peer, DhtStore::txn_key(*member_id), REQUEST_BYTES, bytes);
                }
                candidates.push(cand);
            }
            Ok(RelevantTransactions { recno, epoch, candidates })
        })
    }

    fn record_decisions(
        &mut self,
        participant: ParticipantId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<()> {
        let peer = self.node_of(participant);
        self.timed(|cat, net, _keys| {
            // Notify each transaction controller of the decision.
            for id in accepted.iter().chain(rejected.iter()) {
                net.send_to_key(peer, DhtStore::txn_key(*id), REQUEST_BYTES);
            }
            cat.record_decisions(participant, accepted, rejected);
        });
        Ok(())
    }

    fn current_reconciliation(&self, participant: ParticipantId) -> ReconciliationId {
        self.catalog.current_reconciliation(participant)
    }

    fn rejected_set(&self, participant: ParticipantId) -> FxHashSet<TransactionId> {
        self.catalog.rejected_set(participant)
    }

    fn accepted_set(&self, participant: ParticipantId) -> FxHashSet<TransactionId> {
        self.catalog.accepted_set(participant)
    }

    fn transaction(&self, id: TransactionId) -> Option<Transaction> {
        self.catalog.transaction(id)
    }

    fn accepted_transactions(&self, participant: ParticipantId) -> Vec<Transaction> {
        self.catalog.accepted_in_publication_order(participant)
    }

    fn take_timing(&mut self) -> StoreTiming {
        std::mem::take(&mut self.timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{Tuple, Update};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn txn(i: u32, j: u64, updates: Vec<Update>) -> Transaction {
        Transaction::from_parts(p(i), j, updates).unwrap()
    }

    fn store(n: u32) -> DhtStore {
        let mut s = DhtStore::new(bioinformatics_schema());
        for i in 1..=n {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=n {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            s.register_participant(policy);
        }
        s
    }

    #[test]
    fn registration_joins_peers_to_the_overlay() {
        let s = store(5);
        assert_eq!(s.network.ring().len(), 5);
        assert_eq!(s.catalog().participants().len(), 5);
    }

    #[test]
    fn publish_charges_protocol_messages() {
        let mut s = store(5);
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let before = s.network_stats().messages;
        let epoch = s.publish(p(3), vec![x]).unwrap();
        assert_eq!(epoch, Epoch(1));
        let after = s.network_stats().messages;
        // At least the six messages of Figure 6 plus one per transaction.
        assert!(after - before >= 7, "only {} messages charged", after - before);
        let timing = s.take_timing();
        assert!(timing.network > Duration::ZERO);
    }

    #[test]
    fn publish_charges_the_allocated_epoch_with_a_stable_pattern() {
        // Regression guard for the epoch-preview bug: the Figure 6 controller
        // messages are charged only after `cat.publish` has allocated the
        // epoch, so they are always keyed by the epoch actually assigned.
        // The observable contract: epochs come back sequential, and the
        // per-publication message pattern is independent of history (6
        // protocol messages + 1 per transaction, each counted with its
        // routing hops).
        let mut s = store(4);
        let mut per_publish = Vec::new();
        for i in 0..3u64 {
            let x = txn(
                2,
                i,
                vec![Update::insert("Function", func("rat", &format!("p{i}"), "v"), p(2))],
            );
            let before = s.network_stats().messages;
            let epoch = s.publish(p(2), vec![x]).unwrap();
            assert_eq!(epoch, Epoch(i + 1), "epochs must be allocated sequentially");
            per_publish.push(s.network_stats().messages - before);
        }
        // Identical batches route to differently-keyed controllers, but the
        // logical message count (ignoring per-hop variation) never shrinks
        // with history; each publish charges at least the 7 Figure 6 legs.
        for &m in &per_publish {
            assert!(m >= 7, "a publish charged only {m} messages");
        }
    }

    #[test]
    fn reconciliation_charges_per_transaction_and_antecedent_requests() {
        let mut s = store(5);
        let x0 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "v1"), p(3))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "v1"),
                func("rat", "prot1", "v2"),
                p(2),
            )],
        );
        s.publish(p(3), vec![x0.clone()]).unwrap();
        s.publish(p(2), vec![x1.clone()]).unwrap();
        s.take_timing();
        let stats_before = s.network_stats().messages;

        let rel = s.begin_reconciliation(p(1)).unwrap();
        assert_eq!(rel.candidates.len(), 2);
        let cand_x1 = rel.candidates.iter().find(|c| c.id == x1.id()).unwrap();
        assert_eq!(cand_x1.members.len(), 2);

        let stats_after = s.network_stats().messages;
        // Allocator round trip (2) + 2 epoch controllers (4) + coordinator
        // (2) + 2 transaction requests (4) + 1 antecedent request (2) = 14
        // minimum.
        assert!(
            stats_after - stats_before >= 14,
            "only {} messages charged",
            stats_after - stats_before
        );
        let timing = s.take_timing();
        assert!(timing.network >= Duration::from_micros(14 * 500));
    }

    #[test]
    fn untrusted_transactions_still_cost_a_notification() {
        let mut s = DhtStore::new(bioinformatics_schema());
        // p1 trusts nobody; p2 publishes something.
        s.register_participant(TrustPolicy::new(p(1)));
        s.register_participant(TrustPolicy::new(p(2)).trusting(p(1), 1u32));
        let x = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        s.publish(p(2), vec![x]).unwrap();
        s.take_timing();
        let before = s.network_stats().messages;
        let rel = s.begin_reconciliation(p(1)).unwrap();
        assert!(rel.candidates.is_empty());
        assert!(s.network_stats().messages > before);
    }

    #[test]
    fn decisions_are_recorded_and_charged() {
        let mut s = store(3);
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        s.publish(p(3), vec![x.clone()]).unwrap();
        s.begin_reconciliation(p(1)).unwrap();
        let before = s.network_stats().messages;
        s.record_decisions(p(1), &[x.id()], &[]).unwrap();
        assert!(s.network_stats().messages > before);
        assert!(s.accepted_set(p(1)).contains(&x.id()));
        assert_eq!(s.current_reconciliation(p(1)), ReconciliationId(1));
        assert_eq!(s.transaction(x.id()).unwrap(), x);
    }

    #[test]
    fn custom_latency_scales_network_time() {
        let mut fast = DhtStore::with_latency(bioinformatics_schema(), Duration::from_micros(10));
        fast.register_participant(TrustPolicy::new(p(1)).trusting(p(2), 1u32));
        fast.register_participant(TrustPolicy::new(p(2)).trusting(p(1), 1u32));
        let x = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        fast.publish(p(2), vec![x]).unwrap();
        fast.begin_reconciliation(p(1)).unwrap();
        let fast_time = fast.take_timing().network;

        let mut slow = DhtStore::with_latency(bioinformatics_schema(), Duration::from_millis(5));
        slow.register_participant(TrustPolicy::new(p(1)).trusting(p(2), 1u32));
        slow.register_participant(TrustPolicy::new(p(2)).trusting(p(1), 1u32));
        let x = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        slow.publish(p(2), vec![x]).unwrap();
        slow.begin_reconciliation(p(1)).unwrap();
        let slow_time = slow.take_timing().network;
        assert!(slow_time > fast_time);
    }
}
