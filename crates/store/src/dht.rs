//! The distributed, DHT-based update store (Section 5.2.2).
//!
//! State and computation are spread over the network of peers: one node (the
//! owner of a predesignated key) is the *epoch allocator*; the owner of the
//! hash of an epoch number is that epoch's *epoch controller*; the owner of
//! the hash of a transaction id is its *transaction controller*. Publication
//! follows the message sequence of the paper's Figure 6, and retrieval of the
//! transactions needed by a reconciliation follows Figure 7, with antecedent
//! chains requested one transaction at a time.
//!
//! The store's logical contents are identical to the centralised store (the
//! shared, sharded [`StoreCatalog`]); what differs is the cost model: every
//! protocol message is charged through the simulated network, which adds the
//! configured per-message latency (500 µs by default, as in the paper's
//! setup) and counts messages. Under the session API the Figure 7 message
//! pattern is charged as the session streams: the allocator, epoch-controller
//! and coordinator round trips at [`UpdateStore::begin_reconciliation`], and
//! the per-transaction and per-antecedent requests with each
//! [`UpdateStore::next_batch`] page. The totals are identical to the old
//! single-shot retrieval.
//!
//! The simulated network is a virtual-time model behind one `Mutex`: message
//! charging is serialised (and each call's latency is attributed exactly to
//! that call), while the logical catalogue work still proceeds in parallel
//! across participant shards.

use crate::api::{SessionId, SessionInfo, StoreTiming, Timed, UpdateStore};
use crate::catalog::StoreCatalog;
use orchestra_model::{
    Epoch, ParticipantId, ReconciliationId, Schema, Transaction, TransactionId, TrustPolicy,
};
use orchestra_net::{NetworkStats, NodeId, SimNetwork};
use orchestra_recon::CandidateTransaction;
use orchestra_storage::Result;
use rustc_hash::FxHashSet;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Approximate request size in bytes (ids and headers).
pub(crate) const REQUEST_BYTES: u64 = 64;
/// Approximate per-update payload size in bytes.
pub(crate) const UPDATE_BYTES: u64 = 128;

/// Distributed update store over the simulated Pastry-style overlay.
#[derive(Debug)]
pub struct DhtStore {
    catalog: StoreCatalog,
    network: Mutex<SimNetwork>,
    allocator_key: NodeId,
}

impl DhtStore {
    /// Creates an empty DHT store with the paper's 500 µs per-message
    /// latency.
    pub fn new(schema: Schema) -> Self {
        DhtStore::with_latency(schema, Duration::from_micros(SimNetwork::PAPER_LATENCY_US))
    }

    /// Creates an empty DHT store with a custom per-message latency.
    pub fn with_latency(schema: Schema, latency: Duration) -> Self {
        DhtStore {
            catalog: StoreCatalog::new(schema),
            network: Mutex::new(SimNetwork::with_latency(Vec::new(), latency)),
            allocator_key: NodeId::hash_str("orchestra/epoch-allocator"),
        }
    }

    /// Creates an empty DHT store over an explicit durability backend (see
    /// [`crate::Durability`]), with the paper's default latency. In a real
    /// deployment each controller would persist its own slice; the simulated
    /// store persists the shared catalogue, which holds the same logical
    /// contents.
    pub fn with_durability(schema: Schema, durability: crate::Durability) -> Self {
        DhtStore {
            catalog: StoreCatalog::with_durability(schema, durability),
            network: Mutex::new(SimNetwork::with_latency(
                Vec::new(),
                Duration::from_micros(SimNetwork::PAPER_LATENCY_US),
            )),
            allocator_key: NodeId::hash_str("orchestra/epoch-allocator"),
        }
    }

    /// Creates an empty DHT store whose state is made durable in `dir`
    /// through the file-backed write-ahead log, with the default
    /// [`crate::WalOptions`]. Refuses to clobber an existing durable store —
    /// use [`DhtStore::recover`] for that.
    pub fn durable(schema: Schema, dir: &std::path::Path) -> Result<Self> {
        DhtStore::durable_with(schema, dir, crate::WalOptions::default())
    }

    /// Like [`DhtStore::durable`], but with explicit [`crate::WalOptions`].
    pub fn durable_with(
        schema: Schema,
        dir: &std::path::Path,
        options: crate::WalOptions,
    ) -> Result<Self> {
        let backend = crate::FileWalBackend::create_with(dir, &schema, options)?;
        Ok(DhtStore::with_durability(schema, crate::Durability::FileWal(backend)))
    }

    /// Reopens a durable DHT store from its durability directory, exactly
    /// like [`crate::CentralStore::recover`]: snapshot load plus merged
    /// segment replay rebuild byte-identical catalogue state, and the store
    /// keeps appending to the same segments. The simulated network restarts
    /// empty (message statistics are not durable state).
    pub fn recover(dir: &std::path::Path) -> Result<Self> {
        Ok(DhtStore {
            catalog: StoreCatalog::recover(dir)?,
            network: Mutex::new(SimNetwork::with_latency(
                Vec::new(),
                Duration::from_micros(SimNetwork::PAPER_LATENCY_US),
            )),
            allocator_key: NodeId::hash_str("orchestra/epoch-allocator"),
        })
    }

    /// Takes a compacting snapshot of a durable store (see
    /// [`StoreCatalog::snapshot`]). Returns the new WAL generation.
    pub fn snapshot(&self) -> Result<u64> {
        self.catalog.snapshot()
    }

    /// The underlying catalogue (for inspection in tests and tools).
    pub fn catalog(&self) -> &StoreCatalog {
        &self.catalog
    }

    /// Sets the retention policy. The DHT store shares the catalogue's
    /// retention machinery: epoch controllers drop their pruned epochs'
    /// state, transaction controllers their pruned transactions'.
    pub fn set_retention(&self, policy: orchestra_storage::RetentionPolicy) {
        self.catalog.set_retention(policy);
    }

    /// The retention policy in force.
    pub fn retention(&self) -> orchestra_storage::RetentionPolicy {
        self.catalog.retention()
    }

    /// Prunes converged history per the retention policy (see
    /// [`StoreCatalog::prune_to_horizon`]). Not charged to the cost model:
    /// in a real deployment each controller prunes its own slice locally.
    pub fn prune_to_horizon(&self) -> Result<orchestra_storage::PruneReport> {
        self.catalog.prune_to_horizon()
    }

    /// Cumulative network statistics (messages, hops, bytes, latency).
    pub fn network_stats(&self) -> NetworkStats {
        self.network.lock().expect("network lock").stats()
    }

    /// Number of overlay members.
    pub fn overlay_len(&self) -> usize {
        self.network.lock().expect("network lock").ring().len()
    }

    /// The overlay node of a participant (public for the network-centric
    /// driver and for tests).
    pub fn peer_node(&self, participant: ParticipantId) -> NodeId {
        NodeId::hash_str(&format!("participant-{}", participant.as_u32()))
    }

    pub(crate) fn epoch_key(epoch: Epoch) -> NodeId {
        NodeId::hash_str(&format!("epoch/{}", epoch.as_u64()))
    }

    pub(crate) fn txn_key(id: TransactionId) -> NodeId {
        NodeId::hash_str(&format!("txn/{}/{}", id.participant.as_u32(), id.local))
    }

    fn peer_coordinator_key(participant: ParticipantId) -> NodeId {
        NodeId::hash_str(&format!("coordinator/{}", participant.as_u32()))
    }

    fn txn_bytes(txn: &Transaction) -> u64 {
        REQUEST_BYTES + UPDATE_BYTES * txn.len() as u64
    }

    /// Runs a message-charging block under the network lock, returning the
    /// closure's value and the virtual latency charged by *this* block alone
    /// (exact even under concurrent callers, because the lock is held for
    /// the whole block).
    pub(crate) fn charged<T>(&self, f: impl FnOnce(&mut SimNetwork) -> T) -> (T, Duration) {
        let mut net: MutexGuard<'_, SimNetwork> = self.network.lock().expect("network lock");
        let before = net.stats().latency_us;
        let out = f(&mut net);
        let after = net.stats().latency_us;
        (out, Duration::from_micros(after - before))
    }
}

impl Clone for DhtStore {
    /// Deep-copies the durable store state; open sessions are not cloned.
    fn clone(&self) -> Self {
        DhtStore {
            catalog: self.catalog.clone(),
            network: Mutex::new(self.network.lock().expect("network lock").clone()),
            allocator_key: self.allocator_key,
        }
    }
}

impl UpdateStore for DhtStore {
    fn register_participant(&self, policy: TrustPolicy) {
        let participant = policy.owner();
        let node = self.peer_node(participant);
        self.network.lock().expect("network lock").join(node);
        // Trust conditions are distributed to the transaction controllers;
        // registering them is an out-of-band setup step and is not charged to
        // reconciliation time.
        self.catalog.register_policy(policy);
    }

    fn publish(
        &self,
        participant: ParticipantId,
        transactions: Vec<Transaction>,
    ) -> Result<Timed<Epoch>> {
        let peer = self.peer_node(participant);
        let start = Instant::now();
        // The logical publication (epoch allocation + log append) happens
        // first so that every Figure 6 message is charged against the
        // *actually allocated* epoch.
        let txn_refs: Vec<(TransactionId, u64)> =
            transactions.iter().map(|t| (t.id(), DhtStore::txn_bytes(t))).collect();
        let epoch = self.catalog.publish(participant, transactions)?;
        let compute = start.elapsed();

        let ((), network) = self.charged(|net| {
            // Figure 6, messages 1-4: epoch allocation round trip, with the
            // allocator informing the epoch controller of the allocated
            // epoch.
            let allocator =
                net.send_to_key(peer, self.allocator_key, REQUEST_BYTES).unwrap_or(peer);
            let epoch_controller = net
                .send_to_key(allocator, DhtStore::epoch_key(epoch), REQUEST_BYTES)
                .unwrap_or(allocator);
            net.send_direct(epoch_controller, allocator, REQUEST_BYTES);
            net.send_direct(allocator, peer, REQUEST_BYTES);

            // Figure 6, message 5: publish the transaction IDs at the epoch
            // controller; message 6: confirmation.
            let id_bytes = REQUEST_BYTES + 16 * txn_refs.len() as u64;
            let controller =
                net.send_to_key(peer, DhtStore::epoch_key(epoch), id_bytes).unwrap_or(peer);
            net.send_direct(controller, peer, REQUEST_BYTES);

            // The peer then sends each transaction to its transaction
            // controller.
            for (id, bytes) in &txn_refs {
                net.send_to_key(peer, DhtStore::txn_key(*id), *bytes);
            }
        });
        Ok(Timed::new(epoch, StoreTiming { compute, network }))
    }

    fn begin_reconciliation(&self, participant: ParticipantId) -> Result<Timed<SessionInfo>> {
        let peer = self.peer_node(participant);
        let start = Instant::now();
        let opened = self.catalog.open_session(participant, false)?;
        let compute = start.elapsed();

        let ((), network) = self.charged(|net| {
            // Ask the epoch allocator for the most recent epoch.
            net.round_trip(peer, self.allocator_key, REQUEST_BYTES, REQUEST_BYTES);
            // Request the contents of every epoch since the previous
            // reconciliation from its epoch controller.
            for e in (opened.previous.as_u64() + 1)..=opened.epoch.as_u64() {
                net.round_trip(peer, DhtStore::epoch_key(Epoch(e)), REQUEST_BYTES, REQUEST_BYTES);
            }
            // Record the reconciliation epoch at the peer coordinator.
            net.round_trip(
                peer,
                DhtStore::peer_coordinator_key(participant),
                REQUEST_BYTES,
                REQUEST_BYTES,
            );
        });
        Ok(Timed::new(opened.info(), StoreTiming { compute, network }))
    }

    fn next_batch(
        &self,
        session: SessionId,
        max_candidates: usize,
    ) -> Result<Timed<Vec<CandidateTransaction>>> {
        let start = Instant::now();
        let batch = self.catalog.batch(session, max_candidates)?;
        let compute = start.elapsed();
        let peer = self.peer_node(batch.participant);

        // Charge the Figure 7 per-transaction traffic for this page: a
        // request/notification round trip for every untrusted entry, a
        // request/payload round trip for every trusted candidate, and one
        // round trip per fetched antecedent.
        let ((), network) = self.charged(|net| {
            for id in &batch.untrusted {
                net.round_trip(peer, DhtStore::txn_key(*id), REQUEST_BYTES, REQUEST_BYTES);
            }
            for (cand, fetched) in &batch.candidates {
                let root_bytes = cand
                    .members
                    .last()
                    .map(|(_, updates)| REQUEST_BYTES + UPDATE_BYTES * updates.len() as u64)
                    .unwrap_or(REQUEST_BYTES);
                net.round_trip(peer, DhtStore::txn_key(cand.id), REQUEST_BYTES, root_bytes);
                for (member_id, member_updates) in cand.members.iter().take(*fetched) {
                    let bytes = REQUEST_BYTES + UPDATE_BYTES * member_updates.len() as u64;
                    net.round_trip(peer, DhtStore::txn_key(*member_id), REQUEST_BYTES, bytes);
                }
            }
        });
        let candidates = batch.candidates.into_iter().map(|(c, _)| c).collect();
        Ok(Timed::new(candidates, StoreTiming { compute, network }))
    }

    fn commit_reconciliation(
        &self,
        session: SessionId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<StoreTiming> {
        let start = Instant::now();
        let (participant, _recno, _epoch) =
            self.catalog.commit_session(session, accepted, rejected)?;
        let compute = start.elapsed();
        let peer = self.peer_node(participant);
        let ((), network) = self.charged(|net| {
            // Notify each transaction controller of the decision.
            for id in accepted.iter().chain(rejected.iter()) {
                net.send_to_key(peer, DhtStore::txn_key(*id), REQUEST_BYTES);
            }
        });
        Ok(StoreTiming { compute, network })
    }

    fn abort_reconciliation(&self, session: SessionId) -> Result<()> {
        self.catalog.abort_session(session);
        Ok(())
    }

    fn retire_participant(&self, participant: ParticipantId) -> Result<()> {
        // Like registration, retirement is an out-of-band membership step and
        // is not charged to the reconciliation cost model.
        self.catalog.retire_participant(participant)
    }

    fn record_decisions(
        &self,
        participant: ParticipantId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<StoreTiming> {
        let peer = self.peer_node(participant);
        let start = Instant::now();
        self.catalog.record_decisions(participant, accepted, rejected)?;
        let compute = start.elapsed();
        let ((), network) = self.charged(|net| {
            for id in accepted.iter().chain(rejected.iter()) {
                net.send_to_key(peer, DhtStore::txn_key(*id), REQUEST_BYTES);
            }
        });
        Ok(StoreTiming { compute, network })
    }

    fn current_reconciliation(&self, participant: ParticipantId) -> ReconciliationId {
        self.catalog.current_reconciliation(participant)
    }

    fn rejected_set(&self, participant: ParticipantId) -> Arc<FxHashSet<TransactionId>> {
        self.catalog.rejected_set(participant)
    }

    fn accepted_set(&self, participant: ParticipantId) -> Arc<FxHashSet<TransactionId>> {
        self.catalog.accepted_set(participant)
    }

    fn transaction(&self, id: TransactionId) -> Option<Arc<Transaction>> {
        self.catalog.transaction(id)
    }

    fn accepted_transactions(&self, participant: ParticipantId) -> Vec<Arc<Transaction>> {
        self.catalog.accepted_in_acceptance_order(participant)
    }

    fn epoch_of(&self, id: TransactionId) -> Option<Epoch> {
        self.catalog.epoch_of(id)
    }

    fn accepted_replay_units(&self, participant: ParticipantId) -> Vec<Vec<Arc<Transaction>>> {
        self.catalog.accepted_replay_units(participant)
    }

    fn epoch_cursor(&self, participant: ParticipantId) -> Epoch {
        self.catalog.epoch_cursor(participant)
    }

    fn undecided_candidates(&self, participant: ParticipantId) -> Vec<CandidateTransaction> {
        self.catalog.undecided_candidates(participant)
    }

    fn causal_mode(&self) -> bool {
        self.catalog.causal_mode()
    }

    fn enable_causal_mode(&self) -> Result<()> {
        self.catalog.enable_causal_mode()
    }

    fn causal_frontier(&self) -> orchestra_model::AntichainClock {
        self.catalog.causal_frontier()
    }

    fn next_publisher_seq(&self, participant: ParticipantId) -> u64 {
        self.catalog.next_publisher_seq(participant)
    }

    fn publish_stamped(
        &self,
        stamp: orchestra_model::CausalStamp,
        transactions: Vec<Transaction>,
    ) -> Result<Timed<Epoch>> {
        let participant = stamp.publisher;
        let peer = self.peer_node(participant);
        let start = Instant::now();
        let txn_refs: Vec<(TransactionId, u64)> =
            transactions.iter().map(|t| (t.id(), DhtStore::txn_bytes(t))).collect();
        let epoch = self.catalog.publish_causal(stamp, transactions)?;
        let compute = start.elapsed();

        let ((), network) = self.charged(|net| {
            // Causal publication skips Figure 6's allocation round trip (the
            // stamp was allocated client-side): the peer publishes the id
            // list straight at the arrival epoch's controller and then each
            // transaction at its controller.
            let id_bytes = REQUEST_BYTES + 16 * txn_refs.len() as u64;
            let controller =
                net.send_to_key(peer, DhtStore::epoch_key(epoch), id_bytes).unwrap_or(peer);
            net.send_direct(controller, peer, REQUEST_BYTES);
            for (id, bytes) in &txn_refs {
                net.send_to_key(peer, DhtStore::txn_key(*id), *bytes);
            }
        });
        Ok(Timed::new(epoch, StoreTiming { compute, network }))
    }

    fn record_instance_checkpoint(
        &self,
        participant: ParticipantId,
        checkpoint: orchestra_storage::InstanceCheckpoint,
    ) -> Result<()> {
        // A recovery/setup path like registration: not charged to the
        // reconciliation cost model.
        self.catalog.record_instance_checkpoint(participant, checkpoint)
    }

    fn instance_checkpoint(
        &self,
        participant: ParticipantId,
    ) -> Option<orchestra_storage::InstanceCheckpoint> {
        self.catalog.instance_checkpoint(participant)
    }

    fn accepted_replay_units_after(
        &self,
        participant: ParticipantId,
        skip: u64,
    ) -> Vec<Vec<Arc<Transaction>>> {
        self.catalog.accepted_replay_units_after(participant, skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ReconciliationSession;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{Tuple, Update};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn txn(i: u32, j: u64, updates: Vec<Update>) -> Transaction {
        Transaction::from_parts(p(i), j, updates).unwrap()
    }

    fn store(n: u32) -> DhtStore {
        let s = DhtStore::new(bioinformatics_schema());
        for i in 1..=n {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=n {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            s.register_participant(policy);
        }
        s
    }

    #[test]
    fn registration_joins_peers_to_the_overlay() {
        let s = store(5);
        assert_eq!(s.overlay_len(), 5);
        assert_eq!(s.catalog().participants().len(), 5);
    }

    #[test]
    fn publish_charges_protocol_messages() {
        let s = store(5);
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let before = s.network_stats().messages;
        let published = s.publish(p(3), vec![x]).unwrap();
        assert_eq!(published.value, Epoch(1));
        let after = s.network_stats().messages;
        // At least the six messages of Figure 6 plus one per transaction.
        assert!(after - before >= 7, "only {} messages charged", after - before);
        assert!(published.timing.network > Duration::ZERO);
    }

    #[test]
    fn publish_charges_the_allocated_epoch_with_a_stable_pattern() {
        // Regression guard for the epoch-preview bug: the Figure 6 controller
        // messages are charged only after the catalogue has allocated the
        // epoch, so they are always keyed by the epoch actually assigned.
        let s = store(4);
        let mut per_publish = Vec::new();
        for i in 0..3u64 {
            let x = txn(
                2,
                i,
                vec![Update::insert("Function", func("rat", &format!("p{i}"), "v"), p(2))],
            );
            let before = s.network_stats().messages;
            let published = s.publish(p(2), vec![x]).unwrap();
            assert_eq!(published.value, Epoch(i + 1), "epochs must be allocated sequentially");
            per_publish.push(s.network_stats().messages - before);
        }
        for &m in &per_publish {
            assert!(m >= 7, "a publish charged only {m} messages");
        }
    }

    #[test]
    fn reconciliation_charges_per_transaction_and_antecedent_requests() {
        let s = store(5);
        let x0 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "v1"), p(3))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "v1"),
                func("rat", "prot1", "v2"),
                p(2),
            )],
        );
        s.publish(p(3), vec![x0.clone()]).unwrap();
        s.publish(p(2), vec![x1.clone()]).unwrap();
        let stats_before = s.network_stats().messages;

        let mut session = ReconciliationSession::open(&s, p(1)).unwrap();
        let candidates = session.drain(16).unwrap();
        assert_eq!(candidates.len(), 2);
        let cand_x1 = candidates.iter().find(|c| c.id == x1.id()).unwrap();
        assert_eq!(cand_x1.members.len(), 2);

        let stats_after = s.network_stats().messages;
        // Allocator round trip (2) + 2 epoch controllers (4) + coordinator
        // (2) + 2 transaction requests (4) + 1 antecedent request (2) = 14
        // minimum.
        assert!(
            stats_after - stats_before >= 14,
            "only {} messages charged",
            stats_after - stats_before
        );
        let timing = session.timing();
        assert!(timing.network >= Duration::from_micros(14 * 500));
        session.abort().unwrap();
    }

    #[test]
    fn paging_splits_but_preserves_the_message_pattern() {
        // The same published state drained in one page versus many: the
        // candidate stream and the total message count are identical.
        let build = || {
            let s = store(5);
            for i in 2..=5u32 {
                let t = txn(
                    i,
                    0,
                    vec![Update::insert("Function", func("rat", &format!("prot{i}"), "v"), p(i))],
                );
                s.publish(p(i), vec![t]).unwrap();
            }
            s
        };

        let one_page = build();
        let before = one_page.network_stats().messages;
        let mut session = ReconciliationSession::open(&one_page, p(1)).unwrap();
        let all = session.drain(100).unwrap();
        session.abort().unwrap();
        let one_page_messages = one_page.network_stats().messages - before;

        let paged = build();
        let before = paged.network_stats().messages;
        let mut session = ReconciliationSession::open(&paged, p(1)).unwrap();
        let pages = session.drain(1).unwrap();
        session.abort().unwrap();
        let paged_messages = paged.network_stats().messages - before;

        assert_eq!(
            all.iter().map(|c| c.id).collect::<Vec<_>>(),
            pages.iter().map(|c| c.id).collect::<Vec<_>>()
        );
        assert_eq!(one_page_messages, paged_messages);
    }

    #[test]
    fn untrusted_transactions_still_cost_a_notification() {
        let s = DhtStore::new(bioinformatics_schema());
        // p1 trusts nobody; p2 publishes something.
        s.register_participant(TrustPolicy::new(p(1)));
        s.register_participant(TrustPolicy::new(p(2)).trusting(p(1), 1u32));
        let x = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        s.publish(p(2), vec![x]).unwrap();
        let before = s.network_stats().messages;
        let mut session = ReconciliationSession::open(&s, p(1)).unwrap();
        assert!(session.drain(16).unwrap().is_empty());
        session.abort().unwrap();
        assert!(s.network_stats().messages > before);
    }

    #[test]
    fn decisions_are_recorded_and_charged() {
        let s = store(3);
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        s.publish(p(3), vec![x.clone()]).unwrap();
        let session = ReconciliationSession::open(&s, p(1)).unwrap();
        let before = s.network_stats().messages;
        session.commit(&[x.id()], &[]).unwrap();
        assert!(s.network_stats().messages > before);
        assert!(s.accepted_set(p(1)).contains(&x.id()));
        assert_eq!(s.current_reconciliation(p(1)), ReconciliationId(1));
        assert_eq!(s.transaction(x.id()).unwrap().as_ref(), &x);
    }

    #[test]
    fn custom_latency_scales_network_time() {
        let run = |latency| {
            let s = DhtStore::with_latency(bioinformatics_schema(), latency);
            s.register_participant(TrustPolicy::new(p(1)).trusting(p(2), 1u32));
            s.register_participant(TrustPolicy::new(p(2)).trusting(p(1), 1u32));
            let x = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
            let mut timing = s.publish(p(2), vec![x]).unwrap().timing;
            let mut session = ReconciliationSession::open(&s, p(1)).unwrap();
            session.drain(16).unwrap();
            timing.accumulate(session.timing());
            session.abort().unwrap();
            timing.network
        };
        assert!(run(Duration::from_millis(5)) > run(Duration::from_micros(10)));
    }
}
