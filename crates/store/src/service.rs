//! Confederation-as-a-service: the update store served over framed
//! request/response messages.
//!
//! Until PR 8 every driver called the [`UpdateStore`] trait in-process and a
//! confederation-scale run needed one OS thread per reconciling participant.
//! This module turns the store into a *service*: the paged session protocol
//! ([`UpdateStore::begin_reconciliation`] / [`UpdateStore::next_batch`] /
//! [`UpdateStore::commit_reconciliation`] / [`UpdateStore::abort_reconciliation`])
//! plus [`UpdateStore::publish`] / [`UpdateStore::publish_stamped`] become
//! [`StoreRequest`] / [`StoreResponse`] frames carried over a
//! [`SimNetwork`], served by a **bounded worker pool** on the hand-rolled
//! [`orchestra_rt`] runtime.
//!
//! # Architecture
//!
//! * Requests are routed to `participant % workers`, one bounded inbox per
//!   worker, so every participant's frames are handled **FIFO** by a single
//!   worker while distinct participants spread across the pool.
//! * Inboxes are bounded: a full inbox *parks* the sending client task until
//!   the worker drains (real backpressure, not a simulated flag).
//! * Workers drain their inbox in batches (up to
//!   [`ServiceConfig::max_batch`] frames per wake-up) and pay the simulated
//!   store access latency **once per batch** — the request-batching win.
//! * Admission control: at most [`ServiceConfig::max_open_sessions`]
//!   reconciliation sessions may be open at once. A `Begin` past the cap is
//!   answered with the retryable [`StoreResponse::Busy`];
//!   [`ServiceClient::begin_session`] retries with linear virtual backoff.
//! * Latency is virtual: each frame costs
//!   [`ServiceConfig::frame_latency_us`] on the driver's
//!   [`VirtualClock`], so thousands of in-flight sessions overlap their
//!   wait time on one OS thread.
//!
//! A retention [`AutoPruner`] can be attached to the service
//! ([`StoreService::attach_pruner`]); it is stopped (thread joined) when the
//! service shuts down or is dropped, tying the background prune loop to the
//! server lifecycle.

use crate::api::{SessionId, SessionInfo, UpdateStore};
use crate::protocol::{StoreRequest, StoreResponse};
use crate::pruner::AutoPruner;
use orchestra_model::{CausalStamp, Epoch, ParticipantId, Transaction, TransactionId};
use orchestra_net::{NodeId, SimNetwork, Transport};
use orchestra_obs::{key_with, Counter, Histogram, Obs, Tracer};
use orchestra_recon::CandidateTransaction;
use orchestra_rt::{
    channel, oneshot, LocalExecutor, OneshotSender, Receiver, Sender, VirtualClock,
};
use orchestra_storage::{PruneReport, Result, StorageError};
use rustc_hash::FxHashSet;
use std::cell::RefCell;
use std::rc::Rc;

/// Tuning knobs for a [`StoreService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker tasks serving requests. Participants are sharded across
    /// workers by id, so this bounds store-call concurrency.
    pub workers: usize,
    /// Frames a worker inbox holds before senders park (backpressure).
    pub inbox_capacity: usize,
    /// Admission-control cap: reconciliation sessions open at once before
    /// `Begin` is answered [`StoreResponse::Busy`].
    pub max_open_sessions: usize,
    /// Frames a worker drains per wake-up, amortising one store access
    /// latency over the batch.
    pub max_batch: usize,
    /// Virtual one-way latency per frame, in microseconds. The default is
    /// the paper's 500 µs per message.
    pub frame_latency_us: u64,
    /// Virtual store access latency a worker pays per drained batch, in
    /// microseconds.
    pub store_latency_us: u64,
    /// Base backoff before a client retries a [`StoreResponse::Busy`]
    /// `Begin`; attempt `n` waits `n * busy_backoff_us` of virtual time.
    pub busy_backoff_us: u64,
    /// `Busy` retries before [`ServiceClient::begin_session`] gives up with
    /// an admission-control error.
    pub busy_retries: u32,
    /// The observability sink the service reports into: request/shed/batch
    /// counters always, trace events when the sink's tracer is enabled. The
    /// default is a private registry with a disabled tracer, so an
    /// unobserved service costs only relaxed atomics.
    pub obs: Obs,
    /// The fabric shard this service is, if any: labels the service's
    /// metric keys (`service.requests{shard=N}`) and stamps every trace
    /// event with a `shard` field so per-shard skew is directly visible.
    pub obs_shard: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            inbox_capacity: 64,
            max_open_sessions: 1024,
            max_batch: 16,
            frame_latency_us: SimNetwork::PAPER_LATENCY_US,
            store_latency_us: 0,
            busy_backoff_us: SimNetwork::PAPER_LATENCY_US,
            busy_retries: 10_000,
            obs: Obs::disabled(),
            obs_shard: None,
        }
    }
}

impl ServiceConfig {
    /// Starts building a config from the defaults; see
    /// [`ServiceConfigBuilder`]. Invariants are validated once at
    /// [`ServiceConfigBuilder::build`] time.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder { config: ServiceConfig::default() }
    }

    /// Checks the config's invariants: at least one worker, at least one
    /// frame per worker batch, a non-zero inbox and a non-zero session cap.
    pub fn validate(&self) -> Result<()> {
        fn invalid(what: &str) -> StorageError {
            StorageError::Session(format!("service config: {what}"))
        }
        if self.workers < 1 {
            return Err(invalid("a store service needs at least one worker"));
        }
        if self.max_batch < 1 {
            return Err(invalid("a worker batch holds at least one frame"));
        }
        if self.inbox_capacity < 1 {
            return Err(invalid("a worker inbox holds at least one frame"));
        }
        if self.max_open_sessions < 1 {
            return Err(invalid("admission control needs at least one session slot"));
        }
        Ok(())
    }
}

/// Builds a [`ServiceConfig`], validating invariants (workers ≥ 1,
/// max_batch ≥ 1, inbox_capacity ≥ 1, max_open_sessions ≥ 1) once at
/// [`ServiceConfigBuilder::build`] time instead of panicking inside
/// [`StoreService::start`]:
///
/// ```
/// use orchestra_store::ServiceConfig;
/// let config = ServiceConfig::builder()
///     .workers(4)
///     .max_open_sessions(64)
///     .store_latency_us(1_000)
///     .build()
///     .unwrap();
/// assert_eq!(config.workers, 4);
/// assert!(ServiceConfig::builder().workers(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the number of worker tasks (must end up ≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the per-worker inbox capacity (must end up ≥ 1).
    pub fn inbox_capacity(mut self, capacity: usize) -> Self {
        self.config.inbox_capacity = capacity;
        self
    }

    /// Sets the admission-control session cap (must end up ≥ 1).
    pub fn max_open_sessions(mut self, cap: usize) -> Self {
        self.config.max_open_sessions = cap;
        self
    }

    /// Sets the frames a worker drains per wake-up (must end up ≥ 1).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Sets the virtual one-way frame latency, in microseconds.
    pub fn frame_latency_us(mut self, latency_us: u64) -> Self {
        self.config.frame_latency_us = latency_us;
        self
    }

    /// Sets the virtual per-batch store access latency, in microseconds.
    pub fn store_latency_us(mut self, latency_us: u64) -> Self {
        self.config.store_latency_us = latency_us;
        self
    }

    /// Sets the base backoff before a `Busy` retry, in microseconds.
    pub fn busy_backoff_us(mut self, backoff_us: u64) -> Self {
        self.config.busy_backoff_us = backoff_us;
        self
    }

    /// Sets how many `Busy` rejections a `Begin` retries before giving up.
    pub fn busy_retries(mut self, retries: u32) -> Self {
        self.config.busy_retries = retries;
        self
    }

    /// Sets the observability sink the service reports into.
    pub fn observability(mut self, obs: Obs) -> Self {
        self.config.obs = obs;
        self
    }

    /// Labels the service as fabric shard `shard` in metrics and traces.
    pub fn obs_shard(mut self, shard: u64) -> Self {
        self.config.obs_shard = Some(shard);
        self
    }

    /// Validates the invariants and returns the config, or a typed error
    /// naming the violated invariant.
    pub fn build(self) -> Result<ServiceConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A frame in flight through the in-process transport: the request plus the
/// reply slot and the sender's overlay node (for reply-frame accounting).
///
/// The envelope is deliberately *not* the wire shape: the wire shape is the
/// versioned [`StoreRequest`] / [`StoreResponse`] enums of the
/// [`protocol`](crate::protocol) module, which encode and decode
/// independently of how frames travel. The envelope only exists because the
/// simulated transport delivers frames through in-process channels and needs
/// a reply slot; a socket transport would carry the encoded frames instead.
struct Envelope {
    from: NodeId,
    request: StoreRequest,
    reply: OneshotSender<StoreResponse>,
}

/// Formats a service metric key, labelled with the fabric shard when the
/// service is one shard of a fabric.
fn metric_key(name: &str, shard: Option<u64>) -> String {
    match shard {
        Some(shard) => key_with(name, "shard", shard),
        None => name.to_string(),
    }
}

/// Counters and admission state shared by the workers and the handle.
///
/// The counters are registry handles, so every service reporting into the
/// same [`Obs`] accumulates into one sink; [`StoreService::stats`] reports
/// the *delta* against the values captured at start, keeping the
/// [`ServiceStats`] view per-service.
struct ServiceShared {
    open_sessions: RefCell<FxHashSet<SessionId>>,
    max_open_sessions: usize,
    requests: Counter,
    busy_rejections: Counter,
    batches: Counter,
    /// Frames drained per worker wake-up — the observed queue depth.
    batch_frames: Histogram,
    /// Counter values when this service started (shared registries are
    /// cumulative across services).
    base: ServiceStats,
    tracer: Tracer,
    shard: Option<u64>,
}

impl ServiceShared {
    /// Records an instant trace event, stamping the fabric shard when set.
    /// A disabled tracer reduces this to one branch.
    fn trace(&self, name: &'static str, fields: &[(&'static str, u64)]) {
        if !self.tracer.is_enabled() {
            return;
        }
        match self.shard {
            Some(shard) => {
                let mut all = Vec::with_capacity(fields.len() + 1);
                all.extend_from_slice(fields);
                all.push(("shard", shard));
                self.tracer.event(name, &all);
            }
            None => self.tracer.event(name, fields),
        }
    }
}

/// A snapshot of the service's request counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Request frames served (excluding `Busy` rejections).
    pub requests: u64,
    /// `Begin` frames rejected by admission control.
    pub busy_rejections: u64,
    /// Worker wake-ups; `requests / batches` is the achieved batching
    /// factor.
    pub batches: u64,
    /// Sessions open right now.
    pub open_sessions: u64,
}

impl ServiceStats {
    /// Folds another snapshot's counters into this one (drivers that start
    /// one service per phase accumulate across phases). `open_sessions` is
    /// point-in-time and taken from `other`.
    pub fn absorb(&mut self, other: ServiceStats) {
        self.requests += other.requests;
        self.busy_rejections += other.busy_rejections;
        self.batches += other.batches;
        self.open_sessions = other.open_sessions;
    }
}

/// The server half: a bounded worker pool serving [`StoreRequest`] frames
/// against an [`UpdateStore`], spawned onto a [`LocalExecutor`].
///
/// The handle is not generic over the store: workers capture the store
/// reference at [`StoreService::start`] time. Dropping the handle (or calling
/// [`StoreService::shutdown`]) closes the routes — workers drain what is
/// queued, then exit when the last [`ServiceClient`] is gone — and stops any
/// attached [`AutoPruner`].
pub struct StoreService {
    server: NodeId,
    clock: VirtualClock,
    net: Rc<dyn Transport>,
    routes: RefCell<Option<Rc<Vec<Sender<Envelope>>>>>,
    shared: Rc<ServiceShared>,
    frame_latency_us: u64,
    busy_backoff_us: u64,
    busy_retries: u32,
    pruner: RefCell<Option<AutoPruner>>,
}

impl StoreService {
    /// The server's overlay node id.
    pub fn server_node() -> NodeId {
        NodeId::hash_str("store-service")
    }

    /// The overlay node id of fabric shard `shard`'s server.
    pub fn shard_server_node(shard: usize) -> NodeId {
        NodeId::hash_str(&format!("store-service/shard-{shard}"))
    }

    /// The overlay node id a participant's client frames originate from.
    pub fn client_node(participant: ParticipantId) -> NodeId {
        NodeId::hash_u64(0x5e51_0000_0000u64 + u64::from(participant.as_u32()))
    }

    /// Starts the service under the default server node; see
    /// [`StoreService::start_at`].
    pub fn start<'a, S: UpdateStore + ?Sized>(
        store: &'a S,
        config: &ServiceConfig,
        ex: &mut LocalExecutor<'a>,
        net: Rc<dyn Transport>,
    ) -> StoreService {
        StoreService::start_at(store, config, ex, net, StoreService::server_node())
    }

    /// Starts the service as overlay node `server`: spawns `config.workers`
    /// worker tasks onto `ex`, each serving its own bounded inbox against
    /// `store`. Frame traffic is charged to the `net` transport; latencies
    /// use the executor's [`VirtualClock`]. A fabric starts one service per
    /// shard, each under its own [`StoreService::shard_server_node`].
    ///
    /// Panics if the config violates its invariants; build configs through
    /// [`ServiceConfig::builder`] to surface the violation as a typed error
    /// instead.
    pub fn start_at<'a, S: UpdateStore + ?Sized>(
        store: &'a S,
        config: &ServiceConfig,
        ex: &mut LocalExecutor<'a>,
        net: Rc<dyn Transport>,
        server: NodeId,
    ) -> StoreService {
        if let Err(error) = config.validate() {
            panic!("invalid service config: {error}");
        }
        let clock = ex.clock();
        let metrics = &config.obs.metrics;
        let requests = metrics.counter(&metric_key("service.requests", config.obs_shard));
        let busy_rejections =
            metrics.counter(&metric_key("service.busy_rejections", config.obs_shard));
        let batches = metrics.counter(&metric_key("service.batches", config.obs_shard));
        let batch_frames = metrics.histogram(&metric_key("service.batch_frames", config.obs_shard));
        let base = ServiceStats {
            requests: requests.get(),
            busy_rejections: busy_rejections.get(),
            batches: batches.get(),
            open_sessions: 0,
        };
        let shared = Rc::new(ServiceShared {
            open_sessions: RefCell::new(FxHashSet::default()),
            max_open_sessions: config.max_open_sessions,
            requests,
            busy_rejections,
            batches,
            batch_frames,
            base,
            tracer: config.obs.tracer.clone(),
            shard: config.obs_shard,
        });
        let mut routes = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let (tx, rx) = channel(config.inbox_capacity);
            routes.push(tx);
            ex.spawn(worker(
                store,
                rx,
                Rc::clone(&shared),
                Rc::clone(&net),
                server,
                clock.clone(),
                config.store_latency_us,
                config.max_batch,
            ));
        }
        StoreService {
            server,
            clock,
            net,
            routes: RefCell::new(Some(Rc::new(routes))),
            shared,
            frame_latency_us: config.frame_latency_us,
            busy_backoff_us: config.busy_backoff_us,
            busy_retries: config.busy_retries,
            pruner: RefCell::new(None),
        }
    }

    /// A client bound to `participant`. Panics after
    /// [`StoreService::shutdown`].
    pub fn client_for(&self, participant: ParticipantId) -> ServiceClient {
        let routes = self.routes.borrow();
        let routes = routes.as_ref().expect("store service is shut down");
        ServiceClient {
            participant,
            node: StoreService::client_node(participant),
            server: self.server,
            clock: self.clock.clone(),
            net: Rc::clone(&self.net),
            routes: Rc::clone(routes),
            frame_latency_us: self.frame_latency_us,
            busy_backoff_us: self.busy_backoff_us,
            busy_retries: self.busy_retries,
            tracer: self.shared.tracer.clone(),
            shard: self.shared.shard,
        }
    }

    /// A snapshot of the request counters: this service's own traffic, i.e.
    /// the delta against the shared sink since the service started.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.shared.requests.get().saturating_sub(self.shared.base.requests),
            busy_rejections: self
                .shared
                .busy_rejections
                .get()
                .saturating_sub(self.shared.base.busy_rejections),
            batches: self.shared.batches.get().saturating_sub(self.shared.base.batches),
            open_sessions: self.shared.open_sessions.borrow().len() as u64,
        }
    }

    /// Attaches a retention pruner to the service lifecycle: it keeps
    /// pruning in the background and is stopped (thread joined) by
    /// [`StoreService::shutdown`] or drop. Replaces (and stops) any
    /// previously attached pruner.
    pub fn attach_pruner(&self, pruner: AutoPruner) {
        *self.pruner.borrow_mut() = Some(pruner);
    }

    /// Completed prune rounds of the attached pruner (`0` if none).
    pub fn prune_rounds(&self) -> usize {
        self.pruner.borrow().as_ref().map_or(0, AutoPruner::rounds)
    }

    /// Drains the attached pruner's reports (empty if none attached).
    pub fn take_prune_reports(&self) -> Vec<Result<PruneReport>> {
        self.pruner.borrow().as_ref().map_or_else(Vec::new, AutoPruner::take_reports)
    }

    /// Closes the service: drops the routes (workers exit once the queued
    /// frames and the last live client are gone) and stops the attached
    /// pruner, joining its thread. Idempotent; also run on drop.
    pub fn shutdown(&self) {
        self.routes.borrow_mut().take();
        if let Some(pruner) = self.pruner.borrow_mut().take() {
            pruner.stop();
        }
    }
}

impl Drop for StoreService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: drain the inbox in batches, pay the store latency once per
/// batch, serve each frame synchronously against the store, reply through
/// the envelope's oneshot.
#[allow(clippy::too_many_arguments)]
async fn worker<S: UpdateStore + ?Sized>(
    store: &S,
    mut inbox: Receiver<Envelope>,
    shared: Rc<ServiceShared>,
    net: Rc<dyn Transport>,
    server: NodeId,
    clock: VirtualClock,
    store_latency_us: u64,
    max_batch: usize,
) {
    while let Some(first) = inbox.recv().await {
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match inbox.try_recv() {
                Some(envelope) => batch.push(envelope),
                None => break,
            }
        }
        shared.batches.inc();
        shared.batch_frames.record(batch.len() as u64);
        if store_latency_us > 0 {
            clock.sleep_us(store_latency_us).await;
        }
        for envelope in batch {
            let response = serve(store, &shared, envelope.request);
            net.send_frame(server, envelope.from, response.frame_bytes());
            // A send error means the client gave up on the reply; the
            // store-side effect stands either way.
            let _ = envelope.reply.send(response);
        }
    }
}

/// Serves one frame against the store (synchronous store call).
fn serve<S: UpdateStore + ?Sized>(
    store: &S,
    shared: &ServiceShared,
    request: StoreRequest,
) -> StoreResponse {
    if let StoreRequest::Begin { participant } = &request {
        if shared.open_sessions.borrow().len() >= shared.max_open_sessions {
            shared.busy_rejections.inc();
            shared.trace("admission.shed", &[("participant", u64::from(participant.as_u32()))]);
            return StoreResponse::Busy;
        }
    }
    shared.requests.inc();
    match request {
        StoreRequest::Begin { participant } => match store.begin_reconciliation(participant) {
            Ok(timed) => {
                shared.open_sessions.borrow_mut().insert(timed.value.session);
                shared.trace(
                    "session.begin",
                    &[
                        ("participant", u64::from(participant.as_u32())),
                        ("pending", timed.value.pending as u64),
                    ],
                );
                StoreResponse::Began(timed.value)
            }
            Err(error) => StoreResponse::Failed(error.to_string()),
        },
        StoreRequest::NextBatch { session, max_candidates } => {
            match store.next_batch(session, max_candidates) {
                Ok(timed) => {
                    let candidates = timed.value;
                    let mut epochs = Vec::with_capacity(candidates.len());
                    for candidate in &candidates {
                        match store.epoch_of(candidate.id) {
                            Some(epoch) => epochs.push(epoch),
                            None => {
                                return StoreResponse::Failed(format!(
                                    "candidate {:?} has no publication epoch",
                                    candidate.id
                                ))
                            }
                        }
                    }
                    shared.trace("session.batch", &[("frames", candidates.len() as u64)]);
                    StoreResponse::Batch { candidates, epochs }
                }
                Err(error) => StoreResponse::Failed(error.to_string()),
            }
        }
        StoreRequest::Commit { session, accepted, rejected } => {
            match store.commit_reconciliation(session, &accepted, &rejected) {
                Ok(_) => {
                    shared.open_sessions.borrow_mut().remove(&session);
                    shared.trace(
                        "session.commit",
                        &[("accepted", accepted.len() as u64), ("rejected", rejected.len() as u64)],
                    );
                    StoreResponse::Committed
                }
                // The session stays open on a failed commit: the client
                // aborts it, releasing the admission slot then.
                Err(error) => StoreResponse::Failed(error.to_string()),
            }
        }
        StoreRequest::Abort { session } => match store.abort_reconciliation(session) {
            Ok(()) => {
                shared.open_sessions.borrow_mut().remove(&session);
                StoreResponse::Aborted
            }
            Err(error) => StoreResponse::Failed(error.to_string()),
        },
        StoreRequest::Publish { participant, transactions } => {
            let txns = transactions.len() as u64;
            match store.publish(participant, transactions) {
                Ok(timed) => {
                    shared.trace(
                        "publish",
                        &[
                            ("participant", u64::from(participant.as_u32())),
                            ("epoch", timed.value.as_u64()),
                            ("txns", txns),
                        ],
                    );
                    StoreResponse::Published(timed.value)
                }
                Err(error) => StoreResponse::Failed(error.to_string()),
            }
        }
        StoreRequest::PublishStamped { stamp, transactions } => {
            let publisher = stamp.publisher;
            let txns = transactions.len() as u64;
            match store.publish_stamped(stamp, transactions) {
                Ok(timed) => {
                    shared.trace(
                        "publish",
                        &[
                            ("participant", u64::from(publisher.as_u32())),
                            ("epoch", timed.value.as_u64()),
                            ("txns", txns),
                        ],
                    );
                    StoreResponse::Published(timed.value)
                }
                Err(error) => StoreResponse::Failed(error.to_string()),
            }
        }
        StoreRequest::Replicate { participant, epoch, transactions } => {
            let txns = transactions.len() as u64;
            match store.publish_replica(participant, epoch, transactions) {
                Ok(timed) => {
                    shared.trace(
                        "replicate",
                        &[
                            ("participant", u64::from(participant.as_u32())),
                            ("epoch", timed.value.as_u64()),
                            ("txns", txns),
                        ],
                    );
                    StoreResponse::Published(timed.value)
                }
                Err(error) => StoreResponse::Failed(error.to_string()),
            }
        }
        StoreRequest::ReplicateStamped { stamp, epoch, transactions } => {
            let publisher = stamp.publisher;
            let txns = transactions.len() as u64;
            match store.publish_replica_stamped(stamp, epoch, transactions) {
                Ok(timed) => {
                    shared.trace(
                        "replicate",
                        &[
                            ("participant", u64::from(publisher.as_u32())),
                            ("epoch", timed.value.as_u64()),
                            ("txns", txns),
                        ],
                    );
                    StoreResponse::Published(timed.value)
                }
                Err(error) => StoreResponse::Failed(error.to_string()),
            }
        }
    }
}

fn remote_error(message: String) -> StorageError {
    StorageError::Session(format!("service: {message}"))
}

fn protocol_error(expected: &str, got: &StoreResponse) -> StorageError {
    StorageError::Session(format!("protocol error: expected {expected}, got {}", got.label()))
}

/// The client half: issues framed requests for one participant, charging
/// frame traffic to the [`SimNetwork`] and frame latency to the
/// [`VirtualClock`]. Cloning is cheap; clones share the routes.
#[derive(Clone)]
pub struct ServiceClient {
    participant: ParticipantId,
    node: NodeId,
    server: NodeId,
    clock: VirtualClock,
    net: Rc<dyn Transport>,
    routes: Rc<Vec<Sender<Envelope>>>,
    frame_latency_us: u64,
    busy_backoff_us: u64,
    busy_retries: u32,
    tracer: Tracer,
    shard: Option<u64>,
}

impl ServiceClient {
    /// The participant this client issues frames for.
    pub fn participant(&self) -> ParticipantId {
        self.participant
    }

    /// The virtual clock the client's latencies accrue on.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The trace sink this client's events are recorded into (the service's
    /// tracer; disabled unless the service was configured with one).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Issues one framed request and awaits its response. Charges the
    /// request frame, sleeps the one-way frame latency, parks while the
    /// worker inbox is full (backpressure), then sleeps the reply frame's
    /// latency once the worker answers.
    pub async fn request(&self, request: StoreRequest) -> Result<StoreResponse> {
        self.net.send_frame(self.node, self.server, request.frame_bytes());
        self.clock.sleep_us(self.frame_latency_us).await;
        let (reply, response) = oneshot();
        let worker = self.participant.as_u32() as usize % self.routes.len();
        self.routes[worker]
            .send(Envelope { from: self.node, request, reply })
            .await
            .map_err(|_| StorageError::Session("store service is shut down".to_string()))?;
        let response = response.await.ok_or_else(|| {
            StorageError::Session("store service dropped the request".to_string())
        })?;
        self.clock.sleep_us(self.frame_latency_us).await;
        Ok(response)
    }

    /// Opens a reconciliation session, retrying [`StoreResponse::Busy`]
    /// admission rejections with linear virtual backoff.
    pub async fn begin_session(&self) -> Result<SessionInfo> {
        let mut attempt = 0u32;
        loop {
            match self.request(StoreRequest::Begin { participant: self.participant }).await? {
                StoreResponse::Began(info) => return Ok(info),
                StoreResponse::Busy => {
                    if attempt >= self.busy_retries {
                        return Err(StorageError::Session(
                            "admission control: service stayed at capacity through every retry"
                                .to_string(),
                        ));
                    }
                    attempt += 1;
                    let wait_us = self.busy_backoff_us * u64::from(attempt);
                    if self.tracer.is_enabled() {
                        let mut fields = vec![
                            ("participant", u64::from(self.participant.as_u32())),
                            ("attempt", u64::from(attempt)),
                            ("wait_us", wait_us),
                        ];
                        if let Some(shard) = self.shard {
                            fields.push(("shard", shard));
                        }
                        self.tracer.event("admission.backoff", &fields);
                    }
                    self.clock.sleep_us(wait_us).await;
                }
                StoreResponse::Failed(message) => return Err(remote_error(message)),
                other => return Err(protocol_error("Began or Busy", &other)),
            }
        }
    }

    /// Streams one page of candidates.
    pub async fn next_batch(
        &self,
        session: SessionId,
        max_candidates: usize,
    ) -> Result<Vec<CandidateTransaction>> {
        Ok(self.next_batch_with_epochs(session, max_candidates).await?.0)
    }

    /// Streams one page of candidates together with the publication epoch of
    /// each (parallel vectors). Fabric clients merge shard streams by epoch.
    pub async fn next_batch_with_epochs(
        &self,
        session: SessionId,
        max_candidates: usize,
    ) -> Result<(Vec<CandidateTransaction>, Vec<Epoch>)> {
        match self.request(StoreRequest::NextBatch { session, max_candidates }).await? {
            StoreResponse::Batch { candidates, epochs } => Ok((candidates, epochs)),
            StoreResponse::Failed(message) => Err(remote_error(message)),
            other => Err(protocol_error("Batch", &other)),
        }
    }

    /// Drains the session's candidate stream in pages of `batch_size`,
    /// stopping at the first short page (the [`UpdateStore::next_batch`]
    /// end-of-stream contract).
    pub async fn drain_candidates(
        &self,
        session: SessionId,
        batch_size: usize,
    ) -> Result<Vec<CandidateTransaction>> {
        let batch_size = batch_size.max(1);
        let mut candidates = Vec::new();
        loop {
            let page = self.next_batch(session, batch_size).await?;
            let exhausted = page.len() < batch_size;
            candidates.extend(page);
            if exhausted {
                return Ok(candidates);
            }
        }
    }

    /// Commits the session with its decisions.
    pub async fn commit(
        &self,
        session: SessionId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<()> {
        let request = StoreRequest::Commit {
            session,
            accepted: accepted.to_vec(),
            rejected: rejected.to_vec(),
        };
        match self.request(request).await? {
            StoreResponse::Committed => Ok(()),
            StoreResponse::Failed(message) => Err(remote_error(message)),
            other => Err(protocol_error("Committed", &other)),
        }
    }

    /// Aborts the session.
    pub async fn abort(&self, session: SessionId) -> Result<()> {
        match self.request(StoreRequest::Abort { session }).await? {
            StoreResponse::Aborted => Ok(()),
            StoreResponse::Failed(message) => Err(remote_error(message)),
            other => Err(protocol_error("Aborted", &other)),
        }
    }

    /// Publishes a batch, returning its epoch.
    pub async fn publish(&self, transactions: Vec<Transaction>) -> Result<Epoch> {
        let request = StoreRequest::Publish { participant: self.participant, transactions };
        match self.request(request).await? {
            StoreResponse::Published(epoch) => Ok(epoch),
            StoreResponse::Failed(message) => Err(remote_error(message)),
            other => Err(protocol_error("Published", &other)),
        }
    }

    /// Publishes a causally stamped batch, returning its arrival epoch.
    pub async fn publish_stamped(
        &self,
        stamp: CausalStamp,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch> {
        match self.request(StoreRequest::PublishStamped { stamp, transactions }).await? {
            StoreResponse::Published(epoch) => Ok(epoch),
            StoreResponse::Failed(message) => Err(remote_error(message)),
            other => Err(protocol_error("Published", &other)),
        }
    }

    /// Replicates a batch already published at another shard, pinning it to
    /// the epoch the home shard assigned.
    pub async fn replicate(&self, epoch: Epoch, transactions: Vec<Transaction>) -> Result<Epoch> {
        let request =
            StoreRequest::Replicate { participant: self.participant, epoch, transactions };
        match self.request(request).await? {
            StoreResponse::Published(epoch) => Ok(epoch),
            StoreResponse::Failed(message) => Err(remote_error(message)),
            other => Err(protocol_error("Published", &other)),
        }
    }

    /// Replicates a causally stamped batch already published at another
    /// shard (causal counterpart of [`ServiceClient::replicate`]).
    pub async fn replicate_stamped(
        &self,
        stamp: CausalStamp,
        epoch: Epoch,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch> {
        match self.request(StoreRequest::ReplicateStamped { stamp, epoch, transactions }).await? {
            StoreResponse::Published(epoch) => Ok(epoch),
            StoreResponse::Failed(message) => Err(remote_error(message)),
            other => Err(protocol_error("Published", &other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::central::CentralStore;
    use crate::ReconciliationSession;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{TrustPolicy, Tuple, Update};
    use orchestra_storage::RetentionPolicy;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn txn(i: u32, j: u64, key: &str) -> Transaction {
        let tuple = Tuple::of_text(&["org", key, "f"]);
        Transaction::from_parts(p(i), j, vec![Update::insert("Function", tuple, p(i))]).unwrap()
    }

    /// A store where participants `1..=n` all trust each other at priority 1.
    fn mutual_store(n: u32) -> CentralStore {
        let s = CentralStore::new(bioinformatics_schema());
        for i in 1..=n {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=n {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            s.register_participant(policy);
        }
        s
    }

    fn all_member_ids(candidates: &[CandidateTransaction]) -> Vec<TransactionId> {
        let mut seen = FxHashSet::default();
        let mut ids = Vec::new();
        for candidate in candidates {
            for (id, _) in &candidate.members {
                if seen.insert(*id) {
                    ids.push(*id);
                }
            }
        }
        ids
    }

    /// Drives `net`-framed traffic: publishes from 1 and 2, accept-all
    /// reconciliations for everyone, all through the service; returns the
    /// virtual completion times of the reconcile sessions.
    fn serve_round(s: &CentralStore, config: &ServiceConfig, n: u32) -> (ServiceStats, u64) {
        let clock = VirtualClock::new();
        let mut ex = LocalExecutor::new(clock.clone());
        let net = Rc::new(SimNetwork::new(vec![StoreService::server_node()]));
        let service = StoreService::start(s, config, &mut ex, Rc::clone(&net) as Rc<dyn Transport>);

        let publisher = service.client_for(p(1));
        let publisher2 = service.client_for(p(2));
        ex.spawn(async move {
            publisher.publish(vec![txn(1, 0, "k1")]).await.unwrap();
            publisher2.publish(vec![txn(2, 0, "k2")]).await.unwrap();
        });
        assert_eq!(ex.run(), config.workers);

        for i in 1..=n {
            let client = service.client_for(p(i));
            ex.spawn(async move {
                let info = client.begin_session().await.unwrap();
                let candidates = client.drain_candidates(info.session, 8).await.unwrap();
                let accepted = all_member_ids(&candidates);
                client.commit(info.session, &accepted, &[]).await.unwrap();
            });
        }
        assert_eq!(ex.run(), config.workers);

        let stats = service.stats();
        service.shutdown();
        assert_eq!(ex.run(), 0);
        (stats, clock.now_us())
    }

    #[test]
    fn framed_protocol_matches_direct_store_access() {
        let served = mutual_store(3);
        let (stats, elapsed_us) = serve_round(&served, &ServiceConfig::default(), 3);

        // The same schedule driven through the in-process trait.
        let direct = mutual_store(3);
        direct.publish(p(1), vec![txn(1, 0, "k1")]).unwrap();
        direct.publish(p(2), vec![txn(2, 0, "k2")]).unwrap();
        for i in 1..=3 {
            let mut session = ReconciliationSession::open(&direct, p(i)).unwrap();
            let candidates = session.drain(8).unwrap();
            let accepted = all_member_ids(&candidates);
            session.commit(&accepted, &[]).unwrap();
        }

        for i in 1..=3 {
            assert_eq!(served.accepted_set(p(i)), direct.accepted_set(p(i)), "participant {i}");
            assert_eq!(served.epoch_cursor(p(i)), direct.epoch_cursor(p(i)));
            assert_eq!(served.current_reconciliation(p(i)), direct.current_reconciliation(p(i)));
        }
        // 2 publishes + 3 × (begin + one page + commit) frames were served.
        assert_eq!(stats.requests, 2 + 3 * 3);
        assert_eq!(stats.open_sessions, 0);
        assert!(elapsed_us > 0, "frame latency must advance virtual time");
    }

    #[test]
    fn admission_cap_answers_busy_and_retries_succeed() {
        let s = mutual_store(3);
        s.publish(p(1), vec![txn(1, 0, "k1")]).unwrap();

        let config = ServiceConfig { workers: 1, max_open_sessions: 1, ..ServiceConfig::default() };
        let clock = VirtualClock::new();
        let mut ex = LocalExecutor::new(clock.clone());
        let net = Rc::new(SimNetwork::new(vec![StoreService::server_node()]));
        let service = StoreService::start(&s, &config, &mut ex, net);
        let done = Rc::new(Cell::new(0u32));
        for i in 1..=3 {
            let client = service.client_for(p(i));
            let done = Rc::clone(&done);
            ex.spawn(async move {
                let info = client.begin_session().await.unwrap();
                let candidates = client.drain_candidates(info.session, 8).await.unwrap();
                client.commit(info.session, &all_member_ids(&candidates), &[]).await.unwrap();
                done.set(done.get() + 1);
            });
        }
        assert_eq!(ex.run(), 1);
        assert_eq!(done.get(), 3, "every session eventually got an admission slot");
        let stats = service.stats();
        assert!(stats.busy_rejections >= 2, "the cap of 1 must have turned sessions away");
        assert_eq!(stats.open_sessions, 0);
    }

    #[test]
    fn exhausted_admission_retries_surface_a_retryable_error() {
        let s = mutual_store(2);
        let config = ServiceConfig {
            workers: 1,
            max_open_sessions: 1,
            busy_retries: 0,
            ..ServiceConfig::default()
        };
        let clock = VirtualClock::new();
        let mut ex = LocalExecutor::new(clock.clone());
        let net = Rc::new(SimNetwork::new(vec![StoreService::server_node()]));
        let service = StoreService::start(&s, &config, &mut ex, net);

        let holder = service.client_for(p(1));
        let holder_clock = clock.clone();
        ex.spawn(async move {
            let info = holder.begin_session().await.unwrap();
            holder_clock.sleep_us(1_000_000).await;
            holder.abort(info.session).await.unwrap();
        });
        let rejected = Rc::new(RefCell::new(None));
        let latecomer = service.client_for(p(2));
        let rejected_slot = Rc::clone(&rejected);
        let late_clock = clock.clone();
        ex.spawn(async move {
            late_clock.sleep_us(10_000).await;
            *rejected_slot.borrow_mut() = Some(latecomer.begin_session().await);
        });
        assert_eq!(ex.run(), 1);
        let error = rejected.borrow_mut().take().expect("latecomer ran").unwrap_err();
        assert!(
            error.to_string().contains("admission control"),
            "expected an admission-control error, got: {error}"
        );
        assert!(service.stats().busy_rejections >= 1);
    }

    #[test]
    fn one_participants_frames_are_served_in_issue_order() {
        let s = mutual_store(1);
        let config = ServiceConfig { workers: 1, ..ServiceConfig::default() };
        let clock = VirtualClock::new();
        let mut ex = LocalExecutor::new(clock.clone());
        let net = Rc::new(SimNetwork::new(vec![StoreService::server_node()]));
        let service = StoreService::start(&s, &config, &mut ex, net);

        // Three concurrent publish tasks for the same participant hit the
        // same worker inbox; their frames enqueue in task order and the
        // worker must serve them FIFO, so epochs come back in issue order.
        let epochs = Rc::new(RefCell::new(vec![Epoch::ZERO; 3]));
        for slot in 0..3u64 {
            let client = service.client_for(p(1));
            let epochs = Rc::clone(&epochs);
            ex.spawn(async move {
                let epoch = client.publish(vec![txn(1, slot, "k")]).await.unwrap();
                epochs.borrow_mut()[slot as usize] = epoch;
            });
        }
        assert_eq!(ex.run(), 1);
        assert_eq!(*epochs.borrow(), vec![Epoch(1), Epoch(2), Epoch(3)]);
    }

    #[test]
    fn bounded_inboxes_park_producers_and_batches_amortise_latency() {
        // Capacity-1 inboxes: every frame is its own batch, and producers
        // beyond the first park until the worker drains.
        let s = mutual_store(8);
        let tight = ServiceConfig {
            workers: 1,
            inbox_capacity: 1,
            max_batch: 16,
            store_latency_us: 1_000,
            ..ServiceConfig::default()
        };
        let (stats, _) = serve_round(&s, &tight, 8);
        assert_eq!(stats.batches, stats.requests, "capacity 1 leaves nothing to batch");

        // Roomy inboxes under the same load: concurrent sessions pile
        // frames into the inbox while the worker sleeps on the store
        // latency, so batching must kick in.
        let s = mutual_store(8);
        let roomy = ServiceConfig {
            workers: 1,
            inbox_capacity: 64,
            max_batch: 16,
            store_latency_us: 1_000,
            ..ServiceConfig::default()
        };
        let (stats, _) = serve_round(&s, &roomy, 8);
        assert!(
            stats.batches < stats.requests,
            "expected batching: {} batches for {} requests",
            stats.batches,
            stats.requests
        );
    }

    #[test]
    fn observed_services_report_into_the_shared_sink() {
        let obs = Obs::enabled();
        let config =
            ServiceConfig { obs: obs.clone(), obs_shard: Some(3), ..ServiceConfig::default() };
        let (stats, _) = serve_round(&mutual_store(2), &config, 2);
        assert_eq!(obs.metrics.counter("service.requests{shard=3}").get(), stats.requests);
        assert_eq!(obs.metrics.counter("service.batches{shard=3}").get(), stats.batches);
        let frames = obs.metrics.histogram("service.batch_frames{shard=3}").snapshot();
        assert_eq!(frames.count, stats.batches, "one queue-depth sample per worker wake-up");

        let trace = obs.tracer.export();
        assert!(trace.contains("session.begin"), "missing session events: {trace}");
        assert!(trace.contains("session.commit"), "missing commit events: {trace}");
        assert!(trace.contains("publish"), "missing publish events: {trace}");
        assert!(trace.contains("shard=3"), "events must carry the shard label: {trace}");

        // A second service phase reporting into the same sink: the registry
        // accumulates, the per-service stats stay per-service.
        let (stats2, _) = serve_round(&mutual_store(2), &config, 2);
        assert_eq!(stats2.requests, stats.requests, "identical phases serve identical traffic");
        assert_eq!(
            obs.metrics.counter("service.requests{shard=3}").get(),
            stats.requests + stats2.requests
        );
    }

    #[test]
    fn shed_begins_emit_admission_events() {
        let obs = Obs::enabled();
        let config = ServiceConfig {
            workers: 1,
            max_open_sessions: 1,
            obs: obs.clone(),
            obs_shard: Some(0),
            ..ServiceConfig::default()
        };
        let (stats, _) = serve_round(&mutual_store(3), &config, 3);
        assert!(stats.busy_rejections >= 1, "the cap of 1 must shed sessions");
        assert_eq!(
            obs.metrics.counter("service.busy_rejections{shard=0}").get(),
            stats.busy_rejections
        );
        let trace = obs.tracer.export();
        let sheds = trace.lines().filter(|l| l.contains("admission.shed")).count() as u64;
        assert_eq!(sheds, stats.busy_rejections, "one shed event per Busy rejection");
        assert!(trace.contains("admission.backoff"), "retries must trace their backoff: {trace}");
    }

    #[test]
    fn attached_pruner_stops_with_the_service() {
        let s = Arc::new(mutual_store(2));
        let clock = VirtualClock::new();
        let mut ex = LocalExecutor::new(clock);
        let net = Rc::new(SimNetwork::new(vec![StoreService::server_node()]));
        let service = StoreService::start(&*s, &ServiceConfig::default(), &mut ex, net);

        let rounds = Arc::new(AtomicU64::new(0));
        let pruner_rounds = Arc::clone(&rounds);
        let pruner_store = Arc::clone(&s);
        service.attach_pruner(AutoPruner::spawn(Duration::from_millis(2), move || {
            pruner_rounds.fetch_add(1, Ordering::SeqCst);
            pruner_store.prune_to_horizon()
        }));
        while rounds.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        service.shutdown();
        // `shutdown` joins the pruner thread, so no further round can start.
        let at_shutdown = rounds.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rounds.load(Ordering::SeqCst), at_shutdown);
        assert_eq!(service.prune_rounds(), 0, "the pruner is detached after shutdown");
    }

    #[test]
    fn pruning_under_live_traffic_never_breaks_an_open_session() {
        let served = mutual_store(3);
        served.set_retention(RetentionPolicy::ConvergedOnly);
        served.catalog().close_membership().unwrap();
        let reference = mutual_store(3);
        reference.catalog().close_membership().unwrap();

        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            // Hammer the retention layer from a real thread while the
            // service multiplexes sessions: an open session pins the
            // convergence horizon, so every prune pass must observe it.
            scope.spawn(|| {
                while !stop.load(Ordering::SeqCst) {
                    served.prune_to_horizon().unwrap();
                }
            });
            for round in 0..12u32 {
                let clock = VirtualClock::new();
                let mut ex = LocalExecutor::new(clock.clone());
                let net = Rc::new(SimNetwork::new(vec![StoreService::server_node()]));
                let config = ServiceConfig { workers: 2, ..ServiceConfig::default() };
                let service = StoreService::start(&served, &config, &mut ex, net);
                let publisher = service.client_for(p(1 + round % 3));
                let key = format!("k{round}");
                let batch = vec![txn(1 + round % 3, u64::from(round), &key)];
                ex.spawn(async move {
                    publisher.publish(batch).await.unwrap();
                });
                assert_eq!(ex.run(), config.workers);
                for i in 1..=3 {
                    let client = service.client_for(p(i));
                    ex.spawn(async move {
                        let info = client.begin_session().await.unwrap();
                        let candidates = client.drain_candidates(info.session, 4).await.unwrap();
                        client
                            .commit(info.session, &all_member_ids(&candidates), &[])
                            .await
                            .unwrap();
                    });
                }
                assert_eq!(ex.run(), config.workers);
                service.shutdown();
                assert_eq!(ex.run(), 0);
            }
            stop.store(true, Ordering::SeqCst);
        });

        // The same schedule, unserved and unpruned, decides identically.
        for round in 0..12u32 {
            let key = format!("k{round}");
            reference
                .publish(p(1 + round % 3), vec![txn(1 + round % 3, u64::from(round), &key)])
                .unwrap();
            for i in 1..=3 {
                let mut session = ReconciliationSession::open(&reference, p(i)).unwrap();
                let candidates = session.drain(4).unwrap();
                let accepted = all_member_ids(&candidates);
                session.commit(&accepted, &[]).unwrap();
            }
        }
        for i in 1..=3 {
            assert_eq!(served.accepted_set(p(i)), reference.accepted_set(p(i)));
            assert_eq!(served.epoch_cursor(p(i)), reference.epoch_cursor(p(i)));
        }
    }
}
