//! The versioned wire protocol of the store service.
//!
//! PR 8 kept the request/response enums inside `service.rs`, private to the
//! simulated deployment: frames only ever travelled through in-process
//! channels, so their shape *was* the simnet's shape. This module makes the
//! protocol a first-class seam:
//!
//! * [`StoreRequest`] / [`StoreResponse`] are the explicit wire enums, one
//!   variant per paged-session, publish or replication step.
//! * Every encoded frame starts with a **version byte**
//!   ([`PROTOCOL_VERSION`]); [`decode_request`] / [`decode_response`] reject
//!   a mismatched version with the typed [`StorageError::Protocol`] instead
//!   of a decode panic, so a future socket transport can fail a handshake
//!   cleanly.
//! * The payload after the version byte is self-describing JSON (the same
//!   vendored `serde_json` the WAL's portable mode uses), so frames
//!   round-trip symmetrically: `decode(encode(f)) == f` for every variant —
//!   see the exhaustive tests at the bottom.
//!
//! Version history:
//!
//! * **v1** — PR 8's implicit in-memory protocol (never written to a wire).
//! * **v2** — adds the fabric frames [`StoreRequest::Replicate`] /
//!   [`StoreRequest::ReplicateStamped`] and per-candidate epochs on
//!   [`StoreResponse::Batch`] (a fabric client merges shard streams by
//!   `(epoch, shard)`, so a page must say which epoch each candidate was
//!   published in).

use crate::api::{SessionId, SessionInfo};
use crate::dht::{REQUEST_BYTES, UPDATE_BYTES};
use orchestra_model::{CausalStamp, Epoch, ParticipantId, Transaction, TransactionId};
use orchestra_recon::CandidateTransaction;
use orchestra_storage::{Result, StorageError};
use serde::{Deserialize, Serialize};

/// The protocol version this build speaks; the first byte of every encoded
/// frame.
pub const PROTOCOL_VERSION: u8 = 2;

/// A request frame: one paged-session, publish or replication protocol step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoreRequest {
    /// Open a reconciliation session (subject to admission control).
    Begin {
        /// The reconciling participant.
        participant: ParticipantId,
    },
    /// Stream the next page of candidates for an open session.
    NextBatch {
        /// The session handle from [`StoreResponse::Began`].
        session: SessionId,
        /// Page size; a short page means the stream is exhausted.
        max_candidates: usize,
    },
    /// Commit a session with its accept/reject decisions.
    Commit {
        /// The session handle.
        session: SessionId,
        /// Accepted member transaction ids.
        accepted: Vec<TransactionId>,
        /// Rejected member transaction ids.
        rejected: Vec<TransactionId>,
    },
    /// Abort a session, leaving durable state untouched.
    Abort {
        /// The session handle.
        session: SessionId,
    },
    /// Publish a batch of transactions as one epoch.
    Publish {
        /// The publishing participant.
        participant: ParticipantId,
        /// The batch.
        transactions: Vec<Transaction>,
    },
    /// Publish a causally stamped batch (causal mode).
    PublishStamped {
        /// The client-allocated stamp.
        stamp: CausalStamp,
        /// The batch.
        transactions: Vec<Transaction>,
    },
    /// Replicate a batch already published elsewhere in the fabric: append
    /// it to this shard's log under the epoch the home shard assigned,
    /// without extending this shard's relevance index (the home shard owns
    /// the epoch's relevance).
    Replicate {
        /// The publishing participant (home shard elsewhere).
        participant: ParticipantId,
        /// The epoch the home shard assigned; this shard must derive the
        /// same number or fail.
        epoch: Epoch,
        /// The batch.
        transactions: Vec<Transaction>,
    },
    /// Replicate a causally stamped batch published elsewhere in the fabric
    /// (causal mode counterpart of [`StoreRequest::Replicate`]).
    ReplicateStamped {
        /// The client-allocated stamp.
        stamp: CausalStamp,
        /// The epoch the home shard assigned.
        epoch: Epoch,
        /// The batch.
        transactions: Vec<Transaction>,
    },
}

impl StoreRequest {
    /// Approximate wire size of the frame, using the same accounting model
    /// as the DHT store (fixed header per message, per-id and per-update
    /// payload costs).
    pub fn frame_bytes(&self) -> u64 {
        match self {
            StoreRequest::Begin { .. } | StoreRequest::Abort { .. } => REQUEST_BYTES,
            StoreRequest::NextBatch { .. } => REQUEST_BYTES,
            StoreRequest::Commit { accepted, rejected, .. } => {
                REQUEST_BYTES + 16 * (accepted.len() + rejected.len()) as u64
            }
            StoreRequest::Publish { transactions, .. }
            | StoreRequest::PublishStamped { transactions, .. }
            | StoreRequest::Replicate { transactions, .. }
            | StoreRequest::ReplicateStamped { transactions, .. } => {
                REQUEST_BYTES
                    + transactions
                        .iter()
                        .map(|t| REQUEST_BYTES + UPDATE_BYTES * t.len() as u64)
                        .sum::<u64>()
            }
        }
    }
}

/// A response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoreResponse {
    /// The session is open.
    Began(SessionInfo),
    /// A page of candidates (short page = stream exhausted).
    Batch {
        /// The candidates, in the shard's publication order.
        candidates: Vec<CandidateTransaction>,
        /// The publication epoch of each candidate, parallel to
        /// `candidates`; a fabric client merges shard pages by epoch.
        epochs: Vec<Epoch>,
    },
    /// The session committed.
    Committed,
    /// The session aborted (durable state untouched).
    Aborted,
    /// The publish (or replication) was assigned this epoch.
    Published(Epoch),
    /// Admission control rejected a `Begin`: the service is at its open
    /// session cap. Retryable — back off and try again.
    Busy,
    /// The store returned an error; the message carries its rendering.
    Failed(String),
}

impl StoreResponse {
    /// Approximate wire size of the frame (same model as
    /// [`StoreRequest::frame_bytes`]).
    pub fn frame_bytes(&self) -> u64 {
        match self {
            StoreResponse::Batch { candidates, epochs } => {
                REQUEST_BYTES
                    + 8 * epochs.len() as u64
                    + candidates
                        .iter()
                        .map(|c| {
                            REQUEST_BYTES
                                + c.members
                                    .iter()
                                    .map(|(_, updates)| {
                                        REQUEST_BYTES + UPDATE_BYTES * updates.len() as u64
                                    })
                                    .sum::<u64>()
                        })
                        .sum::<u64>()
            }
            StoreResponse::Failed(message) => REQUEST_BYTES + message.len() as u64,
            _ => REQUEST_BYTES,
        }
    }

    /// Short label for protocol-error messages.
    pub fn label(&self) -> &'static str {
        match self {
            StoreResponse::Began(_) => "Began",
            StoreResponse::Batch { .. } => "Batch",
            StoreResponse::Committed => "Committed",
            StoreResponse::Aborted => "Aborted",
            StoreResponse::Published(_) => "Published",
            StoreResponse::Busy => "Busy",
            StoreResponse::Failed(_) => "Failed",
        }
    }
}

fn malformed(detail: impl Into<String>) -> StorageError {
    StorageError::Protocol {
        expected: PROTOCOL_VERSION,
        found: PROTOCOL_VERSION,
        detail: detail.into(),
    }
}

fn check_version(frame: &[u8]) -> Result<&[u8]> {
    match frame.split_first() {
        None => Err(StorageError::Protocol {
            expected: PROTOCOL_VERSION,
            found: 0,
            detail: "empty frame".to_string(),
        }),
        Some((&version, _)) if version != PROTOCOL_VERSION => Err(StorageError::Protocol {
            expected: PROTOCOL_VERSION,
            found: version,
            detail: "version mismatch".to_string(),
        }),
        Some((_, payload)) => Ok(payload),
    }
}

fn encode<T: Serialize>(value: &T) -> Vec<u8> {
    let body = serde_json::to_string(value).expect("protocol frames always serialise");
    let mut frame = Vec::with_capacity(1 + body.len());
    frame.push(PROTOCOL_VERSION);
    frame.extend_from_slice(body.as_bytes());
    frame
}

fn decode<T: Deserialize>(frame: &[u8]) -> Result<T> {
    let payload = check_version(frame)?;
    let text = std::str::from_utf8(payload)
        .map_err(|e| malformed(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| malformed(format!("malformed payload: {e}")))
}

/// Encodes a request frame: the version byte followed by a self-describing
/// payload.
pub fn encode_request(request: &StoreRequest) -> Vec<u8> {
    encode(request)
}

/// Decodes a request frame, rejecting a mismatched version byte or a
/// malformed payload with [`StorageError::Protocol`].
pub fn decode_request(frame: &[u8]) -> Result<StoreRequest> {
    decode(frame)
}

/// Encodes a response frame (same layout as [`encode_request`]).
pub fn encode_response(response: &StoreResponse) -> Vec<u8> {
    encode(response)
}

/// Decodes a response frame, rejecting a mismatched version byte or a
/// malformed payload with [`StorageError::Protocol`].
pub fn decode_response(frame: &[u8]) -> Result<StoreResponse> {
    decode(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::{AntichainClock, Priority, Tuple, Update};
    use std::sync::Arc;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn stamp(i: u32, seq: u64) -> CausalStamp {
        CausalStamp::new(p(i), seq, AntichainClock::default())
    }

    fn txn(i: u32, j: u64) -> Transaction {
        let tuple = Tuple::of_text(&["org", &format!("k{i}-{j}"), "f"]);
        Transaction::from_parts(p(i), j, vec![Update::insert("Function", tuple, p(i))]).unwrap()
    }

    fn candidate() -> CandidateTransaction {
        let t = txn(1, 0);
        CandidateTransaction {
            id: t.id(),
            priority: Priority::from(3u32),
            members: vec![(t.id(), Arc::new(t.updates().to_vec()))],
        }
    }

    fn sample_requests() -> Vec<StoreRequest> {
        vec![
            StoreRequest::Begin { participant: p(1) },
            StoreRequest::NextBatch { session: SessionId(7), max_candidates: 16 },
            StoreRequest::Commit {
                session: SessionId(7),
                accepted: vec![txn(1, 0).id()],
                rejected: vec![txn(2, 0).id()],
            },
            StoreRequest::Abort { session: SessionId(7) },
            StoreRequest::Publish { participant: p(1), transactions: vec![txn(1, 1)] },
            StoreRequest::PublishStamped { stamp: stamp(1, 1), transactions: vec![txn(1, 2)] },
            StoreRequest::Replicate {
                participant: p(1),
                epoch: Epoch(9),
                transactions: vec![txn(1, 3)],
            },
            StoreRequest::ReplicateStamped {
                stamp: stamp(1, 2),
                epoch: Epoch(10),
                transactions: vec![txn(1, 4)],
            },
        ]
    }

    fn sample_responses() -> Vec<StoreResponse> {
        vec![
            StoreResponse::Began(SessionInfo {
                session: SessionId(7),
                recno: orchestra_model::ReconciliationId(3),
                epoch: Epoch(12),
                pending: 5,
            }),
            StoreResponse::Batch { candidates: vec![candidate()], epochs: vec![Epoch(4)] },
            StoreResponse::Committed,
            StoreResponse::Aborted,
            StoreResponse::Published(Epoch(13)),
            StoreResponse::Busy,
            StoreResponse::Failed("boom".to_string()),
        ]
    }

    #[test]
    fn every_request_variant_round_trips() {
        let samples = sample_requests();
        // Exhaustiveness guard: one sample per variant — extend this list
        // when a variant is added (the match below fails to compile
        // otherwise).
        for request in &samples {
            match request {
                StoreRequest::Begin { .. }
                | StoreRequest::NextBatch { .. }
                | StoreRequest::Commit { .. }
                | StoreRequest::Abort { .. }
                | StoreRequest::Publish { .. }
                | StoreRequest::PublishStamped { .. }
                | StoreRequest::Replicate { .. }
                | StoreRequest::ReplicateStamped { .. } => {}
            }
            let frame = encode_request(request);
            assert_eq!(frame[0], PROTOCOL_VERSION);
            assert_eq!(&decode_request(&frame).unwrap(), request);
        }
        assert_eq!(samples.len(), 8, "one sample per request variant");
    }

    #[test]
    fn every_response_variant_round_trips() {
        let samples = sample_responses();
        for response in &samples {
            match response {
                StoreResponse::Began(_)
                | StoreResponse::Batch { .. }
                | StoreResponse::Committed
                | StoreResponse::Aborted
                | StoreResponse::Published(_)
                | StoreResponse::Busy
                | StoreResponse::Failed(_) => {}
            }
            let frame = encode_response(response);
            assert_eq!(frame[0], PROTOCOL_VERSION);
            assert_eq!(&decode_response(&frame).unwrap(), response);
        }
        assert_eq!(samples.len(), 7, "one sample per response variant");
    }

    #[test]
    fn mismatched_versions_are_rejected_with_a_typed_error() {
        let mut frame = encode_request(&StoreRequest::Begin { participant: p(1) });
        frame[0] = PROTOCOL_VERSION + 1;
        match decode_request(&frame) {
            Err(StorageError::Protocol { expected, found, .. }) => {
                assert_eq!(expected, PROTOCOL_VERSION);
                assert_eq!(found, PROTOCOL_VERSION + 1);
            }
            other => panic!("expected a protocol error, got {other:?}"),
        }
        // Same for responses, and for the empty frame.
        let mut frame = encode_response(&StoreResponse::Busy);
        frame[0] = 0;
        assert!(matches!(decode_response(&frame), Err(StorageError::Protocol { found: 0, .. })));
        assert!(matches!(decode_request(&[]), Err(StorageError::Protocol { found: 0, .. })));
    }

    #[test]
    fn malformed_payloads_are_typed_errors_not_panics() {
        let frame = [PROTOCOL_VERSION, b'{', b'o', b'o', b'p', b's'];
        match decode_request(&frame) {
            Err(StorageError::Protocol { detail, .. }) => {
                assert!(detail.contains("malformed"), "got: {detail}");
            }
            other => panic!("expected a protocol error, got {other:?}"),
        }
        // Valid JSON of the wrong shape is rejected the same way.
        let mut frame = vec![PROTOCOL_VERSION];
        frame.extend_from_slice(br#"{"NotAVariant":{}}"#);
        assert!(matches!(decode_response(&frame), Err(StorageError::Protocol { .. })));
    }

    #[test]
    fn frame_bytes_follow_the_dht_cost_model() {
        let begin = StoreRequest::Begin { participant: p(1) };
        assert_eq!(begin.frame_bytes(), REQUEST_BYTES);
        let publish = StoreRequest::Publish { participant: p(1), transactions: vec![txn(1, 0)] };
        assert_eq!(publish.frame_bytes(), 2 * REQUEST_BYTES + UPDATE_BYTES);
        let replicate = StoreRequest::Replicate {
            participant: p(1),
            epoch: Epoch(1),
            transactions: vec![txn(1, 0)],
        };
        assert_eq!(replicate.frame_bytes(), publish.frame_bytes());
        let batch = StoreResponse::Batch { candidates: vec![candidate()], epochs: vec![Epoch(1)] };
        // Frame header + one epoch + one candidate header + one member
        // (header + one update's payload).
        assert_eq!(batch.frame_bytes(), 3 * REQUEST_BYTES + UPDATE_BYTES + 8);
    }
}
