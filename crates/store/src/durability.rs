//! Pluggable durability backends for the store catalogue.
//!
//! The catalogue logs every state-changing operation through a
//! [`Durability`] value: [`Durability::Ephemeral`] (the default) drops the
//! records and keeps the store purely in-memory, while
//! [`Durability::FileWal`] appends them to a generation-numbered
//! [`orchestra_storage::FrameLog`] inside a durability directory, from which
//! [`crate::StoreCatalog::recover`] rebuilds the exact durable state.
//!
//! A durability directory holds at most two things:
//!
//! * `wal.<generation>.log` — the append-only record log of the current
//!   generation;
//! * `snapshot.orc` — the most recent compacting snapshot
//!   ([`orchestra_storage::StoreSnapshot`]), which names the generation that
//!   continues after it.
//!
//! Appends happen while the catalogue holds the lock guarding the state the
//! record describes (the log shard's write lock for publishes, the
//! participant shard's write lock for decision commits), so WAL order always
//! matches apply order; the backend's own mutex is the innermost lock and is
//! never held across catalogue locks.

use orchestra_storage::snapshot::{self, StoreSnapshot};
use orchestra_storage::wal::WalRecord;
use orchestra_storage::{FrameLog, Result, StorageError};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The write side of a file-backed durability directory.
#[derive(Debug)]
pub struct FileWalBackend {
    dir: PathBuf,
    state: Mutex<WalState>,
}

#[derive(Debug)]
struct WalState {
    generation: u64,
    log: FrameLog,
}

impl FileWalBackend {
    /// Starts a *fresh* durability directory for a new store: creates the
    /// directory, refuses to clobber existing durable state (use
    /// [`crate::StoreCatalog::recover`] for that), and writes the
    /// [`WalRecord::Init`] record pinning the schema.
    pub fn create(dir: &Path, schema: &orchestra_model::Schema) -> Result<Self> {
        std::fs::create_dir_all(dir)
            .map_err(|e| StorageError::Persistence(format!("create {}: {e}", dir.display())))?;
        if snapshot::snapshot_path(dir).exists() {
            return Err(StorageError::Persistence(format!(
                "{} already holds a snapshot; recover the existing store instead",
                dir.display()
            )));
        }
        let wal_path = snapshot::wal_path(dir, 0);
        if wal_path.exists() && std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0) > 0 {
            return Err(StorageError::Persistence(format!(
                "{} already holds a WAL; recover the existing store instead",
                dir.display()
            )));
        }
        let mut log = FrameLog::create(&wal_path)?;
        log.append(&WalRecord::Init { schema: schema.clone() }.encode())?;
        Ok(FileWalBackend {
            dir: dir.to_path_buf(),
            state: Mutex::new(WalState { generation: 0, log }),
        })
    }

    /// Reattaches the write side to a directory whose state has just been
    /// recovered: continues appending to the WAL of the given generation
    /// (`log` is the handle recovery opened, positioned at the end).
    pub(crate) fn reattach(dir: &Path, generation: u64, log: FrameLog) -> Self {
        FileWalBackend { dir: dir.to_path_buf(), state: Mutex::new(WalState { generation, log }) }
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current WAL generation.
    pub fn generation(&self) -> u64 {
        self.state.lock().expect("wal lock").generation
    }

    /// Sets when WAL appends `fsync` (see
    /// [`orchestra_storage::FlushPolicy`]): `EveryAppend` for one sync per
    /// record, `EveryN`/`Interval` for group commit. The policy survives
    /// snapshot compaction (it is re-applied to each new generation's log).
    pub fn set_flush_policy(&self, policy: orchestra_storage::FlushPolicy) {
        self.state.lock().expect("wal lock").log.set_flush_policy(policy);
    }

    /// The WAL's current flush policy.
    pub fn flush_policy(&self) -> orchestra_storage::FlushPolicy {
        self.state.lock().expect("wal lock").log.flush_policy()
    }

    /// Records appended since the WAL's last `fsync` (the group-commit
    /// window still at risk under media failure).
    pub fn unsynced_records(&self) -> u64 {
        self.state.lock().expect("wal lock").log.unsynced_records()
    }

    /// Records appended to the current generation's WAL (including the
    /// `Init` record on generation 0).
    pub fn wal_records(&self) -> u64 {
        self.state.lock().expect("wal lock").log.records()
    }

    /// Bytes in the current generation's WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.state.lock().expect("wal lock").log.bytes()
    }

    /// Appends one already-encoded record.
    pub(crate) fn append(&self, payload: &[u8]) -> Result<()> {
        self.state.lock().expect("wal lock").log.append(payload)
    }

    /// Flushes the WAL to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.state.lock().expect("wal lock").log.sync()
    }

    /// Installs a compacting snapshot: writes `snapshot` (stamped with the
    /// *next* generation) atomically, starts a fresh WAL for that generation,
    /// and deletes the old generation's log. The caller must hold whatever
    /// catalogue locks make `snapshot` a consistent cut — records appended
    /// after this call belong to the new generation and replay on top of the
    /// snapshot.
    pub(crate) fn install_snapshot(&self, mut snapshot: StoreSnapshot) -> Result<u64> {
        let mut state = self.state.lock().expect("wal lock");
        let next = state.generation + 1;
        snapshot.wal_generation = next;
        snapshot::write_snapshot(&self.dir, &snapshot)?;
        let mut new_log = FrameLog::create(&snapshot::wal_path(&self.dir, next))?;
        // The flush (group-commit) policy is a property of the backend, not
        // of one generation's file: carry it over.
        new_log.set_flush_policy(state.log.flush_policy());
        let old = snapshot::wal_path(&self.dir, state.generation);
        state.generation = next;
        state.log = new_log;
        drop(state);
        // Best-effort: the old generation is unreachable (the snapshot names
        // the new one), so a failed delete only wastes disk.
        std::fs::remove_file(old).ok();
        Ok(next)
    }
}

/// How (and whether) the catalogue makes its state durable.
#[derive(Debug, Default)]
pub enum Durability {
    /// No durability: records are dropped, the store lives and dies with the
    /// process. This is the default and costs nothing on the hot paths.
    #[default]
    Ephemeral,
    /// Every record is appended to a file-backed WAL; see [`FileWalBackend`].
    FileWal(FileWalBackend),
}

impl Durability {
    /// True when records actually reach a backend (used to skip building the
    /// record on ephemeral hot paths).
    pub fn is_durable(&self) -> bool {
        matches!(self, Durability::FileWal(_))
    }

    /// The file backend, if any.
    pub fn file_backend(&self) -> Option<&FileWalBackend> {
        match self {
            Durability::Ephemeral => None,
            Durability::FileWal(backend) => Some(backend),
        }
    }

    /// Appends a record (no-op when ephemeral).
    pub(crate) fn append(&self, record: &WalRecord) -> Result<()> {
        match self {
            Durability::Ephemeral => Ok(()),
            Durability::FileWal(backend) => backend.append(&record.encode()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("orchestra-durability-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fresh_backends_write_the_init_record() {
        let dir = tmp_dir("fresh");
        let backend = FileWalBackend::create(&dir, &bioinformatics_schema()).unwrap();
        assert_eq!(backend.generation(), 0);
        assert_eq!(backend.wal_records(), 1);
        assert!(backend.wal_bytes() > 0);
        assert_eq!(backend.dir(), dir.as_path());
        backend.sync().unwrap();

        // A second create over live state is refused.
        drop(backend);
        assert!(matches!(
            FileWalBackend::create(&dir, &bioinformatics_schema()),
            Err(StorageError::Persistence(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ephemeral_appends_are_noops() {
        let d = Durability::Ephemeral;
        assert!(!d.is_durable());
        assert!(d.file_backend().is_none());
        d.append(&WalRecord::Init { schema: bioinformatics_schema() }).unwrap();
    }
}
