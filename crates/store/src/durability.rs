//! Pluggable durability backends for the store catalogue.
//!
//! The catalogue logs every state-changing operation through a
//! [`Durability`] value: [`Durability::Ephemeral`] (the default) drops the
//! records and keeps the store purely in-memory, while
//! [`Durability::FileWal`] appends them to a generation of per-shard
//! [`orchestra_storage::SegmentedWal`] segments inside a durability
//! directory, from which [`crate::StoreCatalog::recover`] rebuilds the exact
//! durable state.
//!
//! A durability directory holds:
//!
//! * `wal.<generation>.log` — the log-shard segment of the current
//!   generation (publishes, policy registrations, retention records);
//! * `wal.<generation>.p<id>.log` — one segment per participant shard
//!   (reconciliation commits and decisions), created on first use;
//! * `snapshot.orc` — the most recent compacting snapshot
//!   ([`orchestra_storage::StoreSnapshot`]), which names the generation that
//!   continues after it.
//!
//! Appends happen while the catalogue holds the lock guarding the state the
//! record describes (the log shard's write lock for publishes, the
//! participant shard's write lock for decision commits), so each segment's
//! order always matches apply order, and commits on *different* shards write
//! to different segments concurrently — the backend no longer funnels them
//! through one mutex. Recovery merges the segments by their `(epoch, seq)`
//! stamps (see [`orchestra_storage::segment`]).
//!
//! Records are written in the codec chosen at creation time
//! ([`WalOptions::codec`]): the compact binary codec by default, or JSON as
//! a debug/inspection mode. Reading always sniffs per record, so recovery
//! handles either codec — or a mix, e.g. after flipping the codec between
//! generations.

use orchestra_obs::Obs;
use orchestra_storage::codec::Codec;
use orchestra_storage::segment::{self, SegmentedWal};
use orchestra_storage::snapshot::{self, StoreSnapshot};
use orchestra_storage::wal::WalRecord;
use orchestra_storage::{Result, StorageError};
use std::path::{Path, PathBuf};
use std::sync::RwLock;

/// Configuration of a file-backed WAL: which codec records are written in
/// and whether reconciliation commits get per-participant segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// The codec new records and snapshots are written in.
    pub codec: Codec,
    /// Whether reconciliation commits and decisions are routed to
    /// per-participant segments (`true`, the default) or everything shares
    /// the log-shard segment (`false` — the pre-segmentation layout, kept
    /// for comparison benchmarks). Both layouts recover identically.
    pub per_shard: bool,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions { codec: Codec::Binary, per_shard: true }
    }
}

/// The write side of a file-backed durability directory.
#[derive(Debug)]
pub struct FileWalBackend {
    dir: PathBuf,
    /// The current generation's segments. Appends hold the read side (they
    /// synchronise per segment inside), so commits on different shards run
    /// in parallel; only snapshot installation takes the write side to swap
    /// generations.
    wal: RwLock<SegmentedWal>,
}

impl FileWalBackend {
    /// Starts a *fresh* durability directory for a new store with the
    /// default [`WalOptions`] (binary codec, per-shard segments).
    pub fn create(dir: &Path, schema: &orchestra_model::Schema) -> Result<Self> {
        FileWalBackend::create_with(dir, schema, WalOptions::default())
    }

    /// Starts a *fresh* durability directory for a new store: creates the
    /// directory, refuses to clobber existing durable state (use
    /// [`crate::StoreCatalog::recover`] for that), and writes the
    /// [`WalRecord::Init`] record pinning the schema.
    pub fn create_with(
        dir: &Path,
        schema: &orchestra_model::Schema,
        options: WalOptions,
    ) -> Result<Self> {
        std::fs::create_dir_all(dir)
            .map_err(|e| StorageError::Persistence(format!("create {}: {e}", dir.display())))?;
        if snapshot::snapshot_path(dir).exists() {
            return Err(StorageError::Persistence(format!(
                "{} already holds a snapshot; recover the existing store instead",
                dir.display()
            )));
        }
        let wal_path = snapshot::wal_path(dir, 0);
        if (wal_path.exists() && std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0) > 0)
            || !segment::list_shard_segments(dir, 0)?.is_empty()
        {
            return Err(StorageError::Persistence(format!(
                "{} already holds a WAL; recover the existing store instead",
                dir.display()
            )));
        }
        let wal = SegmentedWal::create(dir, 0, options.codec, options.per_shard)?;
        wal.append(&WalRecord::Init { schema: schema.clone() })?;
        Ok(FileWalBackend { dir: dir.to_path_buf(), wal: RwLock::new(wal) })
    }

    /// Reattaches the write side to a directory whose state has just been
    /// recovered: continues appending to the segments recovery opened
    /// (positioned at their ends, stamps continuing where they left off).
    pub(crate) fn reattach(dir: &Path, wal: SegmentedWal) -> Self {
        FileWalBackend { dir: dir.to_path_buf(), wal: RwLock::new(wal) }
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current WAL generation.
    pub fn generation(&self) -> u64 {
        self.wal.read().expect("wal lock").generation()
    }

    /// The codec records are written in (reading sniffs per record).
    pub fn codec(&self) -> Codec {
        self.wal.read().expect("wal lock").codec()
    }

    /// Whether reconciliation commits get per-participant segments.
    pub fn per_shard(&self) -> bool {
        self.wal.read().expect("wal lock").per_shard()
    }

    /// Switches the codec for future appends and generations — e.g. flipping
    /// a long-lived store into JSON inspection mode and back. Frames already
    /// on disk keep their codec; recovery sniffs per record, so generations
    /// with mixed codecs replay fine.
    pub fn set_codec(&self, codec: Codec) {
        self.wal.write().expect("wal lock").set_codec(codec);
    }

    /// Number of live segments in the current generation (1 log shard plus
    /// one per participant shard that has committed).
    pub fn segment_count(&self) -> usize {
        self.wal.read().expect("wal lock").segment_count()
    }

    /// Binds the WAL's segments — current and future generations — to a
    /// shared observability sink: appends, syncs and replays count under the
    /// `wal.*` metrics, and snapshot installs emit a `snapshot.install`
    /// trace event plus the `snapshot.installs` counter.
    pub fn set_observability(&self, obs: &Obs) {
        self.wal.read().expect("wal lock").set_observability(obs);
    }

    /// Sets when WAL appends `fsync` (see
    /// [`orchestra_storage::FlushPolicy`]): `EveryAppend` for one sync per
    /// record, `EveryN`/`Interval` for group commit — applied per segment,
    /// so each shard's segment batches its own commits. The policy survives
    /// snapshot compaction (it is re-applied to each new generation's
    /// segments).
    pub fn set_flush_policy(&self, policy: orchestra_storage::FlushPolicy) {
        self.wal.read().expect("wal lock").set_flush_policy(policy);
    }

    /// The WAL's current flush policy.
    pub fn flush_policy(&self) -> orchestra_storage::FlushPolicy {
        self.wal.read().expect("wal lock").flush_policy()
    }

    /// Records appended since the WAL's last `fsync` (the group-commit
    /// window still at risk under media failure), across all segments.
    pub fn unsynced_records(&self) -> u64 {
        self.wal.read().expect("wal lock").unsynced_records()
    }

    /// Records appended to the current generation, across all segments
    /// (including the `Init` record on generation 0).
    pub fn wal_records(&self) -> u64 {
        self.wal.read().expect("wal lock").records()
    }

    /// Bytes in the current generation, across all segments.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.read().expect("wal lock").bytes()
    }

    /// Appends one record to its shard's segment.
    pub(crate) fn append(&self, record: &WalRecord) -> Result<()> {
        self.wal.read().expect("wal lock").append(record)
    }

    /// Flushes every segment to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.wal.read().expect("wal lock").sync()
    }

    /// Installs a compacting snapshot: writes `snapshot` (stamped with the
    /// *next* generation, in the backend's codec) atomically, starts fresh
    /// segments for that generation, and deletes the old generation's
    /// segment files. The caller must hold whatever catalogue locks make
    /// `snapshot` a consistent cut — records appended after this call belong
    /// to the new generation and replay on top of the snapshot.
    pub(crate) fn install_snapshot(&self, mut snapshot: StoreSnapshot) -> Result<u64> {
        let mut wal = self.wal.write().expect("wal lock");
        let old = wal.generation();
        let next = old + 1;
        snapshot.wal_generation = next;
        snapshot::write_snapshot(&self.dir, &snapshot, wal.codec())?;
        let new_wal = SegmentedWal::create(&self.dir, next, wal.codec(), wal.per_shard())?;
        // The flush (group-commit) policy and the observability sink are
        // properties of the backend, not of one generation's files: carry
        // them over.
        new_wal.set_flush_policy(wal.flush_policy());
        let obs = wal.observability();
        new_wal.set_observability(&obs);
        obs.metrics.counter("snapshot.installs").inc();
        obs.tracer.event("snapshot.install", &[("generation", next)]);
        *wal = new_wal;
        drop(wal);
        // Best-effort: the old generation is unreachable (the snapshot names
        // the new one), so a failed delete only wastes disk.
        segment::delete_generation(&self.dir, old).ok();
        Ok(next)
    }
}

/// How (and whether) the catalogue makes its state durable.
#[derive(Debug, Default)]
pub enum Durability {
    /// No durability: records are dropped, the store lives and dies with the
    /// process. This is the default and costs nothing on the hot paths.
    #[default]
    Ephemeral,
    /// Every record is appended to a file-backed WAL; see [`FileWalBackend`].
    FileWal(FileWalBackend),
}

impl Durability {
    /// True when records actually reach a backend (used to skip building the
    /// record on ephemeral hot paths).
    pub fn is_durable(&self) -> bool {
        matches!(self, Durability::FileWal(_))
    }

    /// The file backend, if any.
    pub fn file_backend(&self) -> Option<&FileWalBackend> {
        match self {
            Durability::Ephemeral => None,
            Durability::FileWal(backend) => Some(backend),
        }
    }

    /// Appends a record (no-op when ephemeral).
    pub(crate) fn append(&self, record: &WalRecord) -> Result<()> {
        match self {
            Durability::Ephemeral => Ok(()),
            Durability::FileWal(backend) => backend.append(record),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("orchestra-durability-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fresh_backends_write_the_init_record() {
        let dir = tmp_dir("fresh");
        let backend = FileWalBackend::create(&dir, &bioinformatics_schema()).unwrap();
        assert_eq!(backend.generation(), 0);
        assert_eq!(backend.codec(), Codec::Binary);
        assert!(backend.per_shard());
        assert_eq!(backend.segment_count(), 1);
        assert_eq!(backend.wal_records(), 1);
        assert!(backend.wal_bytes() > 0);
        assert_eq!(backend.dir(), dir.as_path());
        backend.sync().unwrap();

        // A second create over live state is refused.
        drop(backend);
        assert!(matches!(
            FileWalBackend::create(&dir, &bioinformatics_schema()),
            Err(StorageError::Persistence(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_mode_writes_inspectable_records() {
        let dir = tmp_dir("json");
        let options = WalOptions { codec: Codec::Json, per_shard: true };
        let backend = FileWalBackend::create_with(&dir, &bioinformatics_schema(), options).unwrap();
        assert_eq!(backend.codec(), Codec::Json);
        drop(backend);
        // The record bytes (after the frame header and stamp) are JSON.
        let bytes = std::fs::read(dir.join("wal.0.log")).unwrap();
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.contains("Init"), "JSON mode should be greppable: {text:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ephemeral_appends_are_noops() {
        let d = Durability::Ephemeral;
        assert!(!d.is_durable());
        assert!(d.file_backend().is_none());
        d.append(&WalRecord::Init { schema: bioinformatics_schema() }).unwrap();
    }
}
