//! The sharded store fabric: one confederation served by N store shards.
//!
//! A single [`StoreService`](crate::StoreService) bounds a confederation by
//! one store's worker pool. The fabric splits the load across `N`
//! [`CentralStore`] shards while keeping the paper's *decision semantics*
//! exactly those of one store:
//!
//! * **The publication log is replicated; the relevance index is
//!   partitioned.** Every publish lands on every shard in the same order
//!   (primary publish at the publisher's home shard, pinned *replica*
//!   publishes everywhere else via
//!   [`UpdateStore::publish_replica`]), so all shards agree on the global
//!   epoch numbering. Only the home shard extends its relevance index for
//!   the new epoch, so each epoch's candidates are served by exactly one
//!   shard.
//! * **A fabric session is N shard sessions merged into one virtual
//!   timeline.** [`FabricClient::begin_session`] opens a session at every
//!   shard (in shard order, so concurrent sessions cannot deadlock on
//!   admission slots); [`FabricClient::drain_candidates`] drains each
//!   shard's stream and k-way merges by `(epoch, shard)` — epochs are
//!   globally unique, so the merge reproduces the exact candidate order a
//!   single store would have streamed.
//! * **Commits fan the full decision lists to every shard.** Each shard
//!   records the complete accepted/rejected sets, keeping every shard's
//!   decision record, epoch cursors and reconciliation numbers identical —
//!   required, because a shard's antecedent exclusion must see accepts that
//!   happened on candidates homed elsewhere.
//!
//! The fabric therefore decides *byte-identically* to a single store (the
//! `fabric_driver` integration tests prove it property-based), while
//! publishes and candidate streaming spread across N worker pools.
//!
//! Routing is pluggable through [`ShardRouter`]; [`FabricConfig`] bundles
//! the shard count with the per-shard [`ServiceConfig`]. [`StoreFabric`]
//! owns the shard stores for in-process use; [`FabricClient`] is the
//! framed-protocol client driving one service per shard. Both the fabric
//! client and the single-service [`ServiceClient`] implement the
//! [`SessionClient`] trait, so drivers are generic over "one store or
//! many".

use crate::api::{SessionId, SessionInfo, StoreTiming, Timed, UpdateStore};
use crate::central::CentralStore;
use crate::service::{ServiceClient, ServiceConfig};
use orchestra_model::schema::Schema;
use orchestra_model::{
    AntichainClock, CausalStamp, Epoch, ParticipantId, ReconciliationId, Transaction,
    TransactionId, TrustPolicy,
};
use orchestra_recon::CandidateTransaction;
use orchestra_rt::VirtualClock;
use orchestra_storage::{InstanceCheckpoint, Result, StorageError};
use rustc_hash::{FxHashMap, FxHashSet};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Maps participants to their home shard.
///
/// The home shard is where a participant's publishes are *primary* (relevance
/// extension happens there) and where its per-participant reads resolve. The
/// routing must be deterministic and agreed by every client — it is pure
/// arithmetic over the participant id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards. Panics if `shards` is zero.
    pub fn new(shards: usize) -> ShardRouter {
        assert!(shards >= 1, "a store fabric needs at least one shard");
        ShardRouter { shards }
    }

    /// The number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The home shard of `participant`.
    pub fn home_of(&self, participant: ParticipantId) -> usize {
        participant.as_u32() as usize % self.shards
    }
}

/// Configuration of a store fabric: how many shards, and how each shard's
/// service is tuned.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of store shards.
    pub shards: usize,
    /// The per-shard service configuration (every shard uses the same).
    pub service: ServiceConfig,
}

impl Default for FabricConfig {
    fn default() -> FabricConfig {
        FabricConfig { shards: 4, service: ServiceConfig::default() }
    }
}

impl FabricConfig {
    /// The router induced by this config's shard count.
    pub fn router(&self) -> ShardRouter {
        ShardRouter::new(self.shards)
    }
}

/// N [`CentralStore`] shards owned as one confederation store.
///
/// The fabric keeps the shards' logs identical (replicated log) and their
/// relevance indexes disjoint (partitioned by home shard) — see the
/// [module docs](crate::fabric). Shard stores are exposed through
/// [`StoreFabric::shard_stores`] so a driver can front each with its own
/// [`StoreService`](crate::StoreService).
///
/// # Registration order
///
/// Every participant must be registered **before the first publish**. A late
/// registration would rebuild the participant's relevance from each shard's
/// *full replicated log*, duplicating candidates that are supposed to be
/// homed at exactly one shard. [`StoreFabric::register_participant`] panics
/// if a publish has already happened.
pub struct StoreFabric {
    router: ShardRouter,
    shards: Vec<CentralStore>,
    /// Held across the primary + replica fan-out of one publish so every
    /// shard's log receives all publishes in the same global order.
    publish_lock: Mutex<()>,
    published: AtomicBool,
    /// Open fabric-level sessions: synthetic handle → per-shard state.
    /// Synthetic because two shards can hand out the same raw session
    /// number; shard handles are only unique per shard.
    sessions: Mutex<FxHashMap<SessionId, FabricSession>>,
    next_session: AtomicU64,
}

/// Per-shard state of one in-process fabric session.
struct FabricSession {
    /// The shard session handles, in shard order.
    shards: Vec<SessionId>,
    /// The merged candidate stream, buffered on the first `next_batch` (each
    /// shard streams only the epochs homed there; the merge restores global
    /// publication order).
    merged: Option<VecDeque<CandidateTransaction>>,
}

impl StoreFabric {
    /// A fabric of `shards` empty stores over `schema`.
    pub fn new(schema: Schema, shards: usize) -> StoreFabric {
        let router = ShardRouter::new(shards);
        let shards = (0..shards).map(|_| CentralStore::new(schema.clone())).collect();
        StoreFabric {
            router,
            shards,
            publish_lock: Mutex::new(()),
            published: AtomicBool::new(false),
            sessions: Mutex::new(FxHashMap::default()),
            next_session: AtomicU64::new(0),
        }
    }

    /// The fabric's router.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// The shard stores, in shard order.
    pub fn shard_stores(&self) -> &[CentralStore] {
        &self.shards
    }

    /// Shard `index`'s store.
    pub fn shard(&self, index: usize) -> &CentralStore {
        &self.shards[index]
    }

    /// The home shard store of `participant`.
    pub fn home_store(&self, participant: ParticipantId) -> &CentralStore {
        &self.shards[self.router.home_of(participant)]
    }

    /// Closes membership at every shard (see `StoreCatalog::close_membership`).
    pub fn close_membership(&self) -> Result<()> {
        for store in &self.shards {
            store.catalog().close_membership()?;
        }
        Ok(())
    }

    fn unknown_session(session: SessionId) -> StorageError {
        StorageError::Session(format!(
            "fabric session {}: unknown or already closed",
            session.as_u64()
        ))
    }

    /// Merges every shard's candidate stream for one session into global
    /// publication order, paging each shard with `page`-sized batches.
    fn merge_streams(
        &self,
        shard_sessions: &[SessionId],
        page: usize,
        timing: &mut StoreTiming,
    ) -> Result<VecDeque<CandidateTransaction>> {
        let mut merged: Vec<(Epoch, usize, CandidateTransaction)> = Vec::new();
        for (shard, (store, shard_session)) in self.shards.iter().zip(shard_sessions).enumerate() {
            loop {
                let batch = store.next_batch(*shard_session, page)?;
                timing.accumulate(batch.timing);
                let exhausted = batch.value.len() < page;
                for candidate in batch.value {
                    let epoch = store.epoch_of(candidate.id).ok_or_else(|| {
                        StorageError::Session(format!(
                            "candidate {:?} has no publication epoch",
                            candidate.id
                        ))
                    })?;
                    merged.push((epoch, shard, candidate));
                }
                if exhausted {
                    break;
                }
            }
        }
        merged.sort_by_key(|entry| (entry.0, entry.1));
        Ok(merged.into_iter().map(|(_, _, candidate)| candidate).collect())
    }
}

impl UpdateStore for StoreFabric {
    /// Registers the participant's trust policy at **every** shard (all
    /// shards hold the full log, so all need the policy to evaluate trust
    /// and record decisions).
    ///
    /// Panics if a publish has already gone through the fabric — a late
    /// registration would rebuild relevance from each shard's *replicated*
    /// log and home the same candidates at every shard.
    fn register_participant(&self, policy: TrustPolicy) {
        assert!(
            !self.published.load(Ordering::SeqCst),
            "fabric registration must happen before the first publish \
             (a late registration would home the same candidates at every shard)"
        );
        for store in &self.shards {
            store.register_participant(policy.clone());
        }
    }

    /// Primary publish at the publisher's home shard, then pinned replicas
    /// at every other shard, all under the fabric's publish lock so shards
    /// log publishes in one global order. The returned cost is the home
    /// shard's (a real fabric replicates off the publisher's critical path).
    fn publish(
        &self,
        participant: ParticipantId,
        transactions: Vec<Transaction>,
    ) -> Result<Timed<Epoch>> {
        let _order = self.publish_lock.lock().expect("fabric publish lock poisoned");
        self.published.store(true, Ordering::SeqCst);
        let home = self.router.home_of(participant);
        let published = self.shards[home].publish(participant, transactions.clone())?;
        for (index, store) in self.shards.iter().enumerate() {
            if index != home {
                store.publish_replica(participant, published.value, transactions.clone())?;
            }
        }
        Ok(published)
    }

    /// Opens one session per shard and merges them behind a single synthetic
    /// handle: the home shard's reconciliation number (they advance in
    /// lockstep), the largest pinned epoch, and the summed candidate bound.
    fn begin_reconciliation(&self, participant: ParticipantId) -> Result<Timed<SessionInfo>> {
        let mut timing = StoreTiming::default();
        let mut infos: Vec<SessionInfo> = Vec::with_capacity(self.shards.len());
        for store in &self.shards {
            match store.begin_reconciliation(participant) {
                Ok(timed) => {
                    timing.accumulate(timed.timing);
                    infos.push(timed.value);
                }
                Err(error) => {
                    for (shard, info) in infos.iter().enumerate() {
                        let _ = self.shards[shard].abort_reconciliation(info.session);
                    }
                    return Err(error);
                }
            }
        }
        let home = self.router.home_of(participant);
        let handle = SessionId(self.next_session.fetch_add(1, Ordering::SeqCst) + 1);
        let merged = SessionInfo {
            session: handle,
            recno: infos[home].recno,
            epoch: infos.iter().map(|info| info.epoch).max().unwrap_or(Epoch::ZERO),
            pending: infos.iter().map(|info| info.pending).sum(),
        };
        let state =
            FabricSession { shards: infos.iter().map(|info| info.session).collect(), merged: None };
        self.sessions.lock().expect("fabric session table poisoned").insert(handle, state);
        Ok(Timed::new(merged, timing))
    }

    /// Pages the merged stream: the first call drains every shard session
    /// (each serves only the epochs homed there) and k-way merges by
    /// `(epoch, shard)` — exactly the publication order a single store would
    /// stream — then batches are served from the merged buffer.
    fn next_batch(
        &self,
        session: SessionId,
        max_candidates: usize,
    ) -> Result<Timed<Vec<CandidateTransaction>>> {
        let mut sessions = self.sessions.lock().expect("fabric session table poisoned");
        let state = sessions.get_mut(&session).ok_or_else(|| Self::unknown_session(session))?;
        let mut timing = StoreTiming::default();
        if state.merged.is_none() {
            let shard_sessions = state.shards.clone();
            let page = max_candidates.max(1);
            state.merged = Some(self.merge_streams(&shard_sessions, page, &mut timing)?);
        }
        let buffer = state.merged.as_mut().expect("merged stream just filled");
        let take = max_candidates.min(buffer.len());
        Ok(Timed::new(buffer.drain(..take).collect(), timing))
    }

    /// Commits every shard session with the **full** decision lists. Every
    /// shard needs the complete record: antecedent exclusion on a shard's
    /// own candidates must see accepts homed at other shards. A failed shard
    /// commit leaves the fabric session open, as the single-store contract
    /// requires (the client aborts it).
    fn commit_reconciliation(
        &self,
        session: SessionId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<StoreTiming> {
        let shard_sessions = {
            let sessions = self.sessions.lock().expect("fabric session table poisoned");
            sessions.get(&session).ok_or_else(|| Self::unknown_session(session))?.shards.clone()
        };
        let mut timing = StoreTiming::default();
        for (store, shard_session) in self.shards.iter().zip(&shard_sessions) {
            timing.accumulate(store.commit_reconciliation(*shard_session, accepted, rejected)?);
        }
        self.sessions.lock().expect("fabric session table poisoned").remove(&session);
        Ok(timing)
    }

    /// Aborts every shard session. Aborting an unknown fabric session is a
    /// no-op, matching the single-store contract.
    fn abort_reconciliation(&self, session: SessionId) -> Result<()> {
        let Some(state) =
            self.sessions.lock().expect("fabric session table poisoned").remove(&session)
        else {
            return Ok(());
        };
        for (store, shard_session) in self.shards.iter().zip(&state.shards) {
            store.abort_reconciliation(*shard_session)?;
        }
        Ok(())
    }

    fn retire_participant(&self, participant: ParticipantId) -> Result<()> {
        for store in &self.shards {
            store.retire_participant(participant)?;
        }
        Ok(())
    }

    fn record_decisions(
        &self,
        participant: ParticipantId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<StoreTiming> {
        let mut timing = StoreTiming::default();
        for store in &self.shards {
            timing.accumulate(store.record_decisions(participant, accepted, rejected)?);
        }
        Ok(timing)
    }

    fn current_reconciliation(&self, participant: ParticipantId) -> ReconciliationId {
        self.home_store(participant).current_reconciliation(participant)
    }

    fn rejected_set(&self, participant: ParticipantId) -> Arc<FxHashSet<TransactionId>> {
        self.home_store(participant).rejected_set(participant)
    }

    fn accepted_set(&self, participant: ParticipantId) -> Arc<FxHashSet<TransactionId>> {
        self.home_store(participant).accepted_set(participant)
    }

    fn transaction(&self, id: TransactionId) -> Option<Arc<Transaction>> {
        // The log is replicated; any shard can answer.
        self.shards[0].transaction(id)
    }

    fn accepted_transactions(&self, participant: ParticipantId) -> Vec<Arc<Transaction>> {
        self.home_store(participant).accepted_transactions(participant)
    }

    fn epoch_of(&self, id: TransactionId) -> Option<Epoch> {
        self.shards[0].epoch_of(id)
    }

    fn accepted_replay_units(&self, participant: ParticipantId) -> Vec<Vec<Arc<Transaction>>> {
        self.home_store(participant).accepted_replay_units(participant)
    }

    fn epoch_cursor(&self, participant: ParticipantId) -> Epoch {
        self.home_store(participant).epoch_cursor(participant)
    }

    /// A participant's deferred candidates live on every shard (an epoch's
    /// relevance is homed at its *publisher's* shard), so the recovery read
    /// merges across shards into publication order.
    fn undecided_candidates(&self, participant: ParticipantId) -> Vec<CandidateTransaction> {
        let mut merged: Vec<(Epoch, usize, CandidateTransaction)> = Vec::new();
        for (shard, store) in self.shards.iter().enumerate() {
            for candidate in store.undecided_candidates(participant) {
                let epoch = store.epoch_of(candidate.id).unwrap_or(Epoch::ZERO);
                merged.push((epoch, shard, candidate));
            }
        }
        merged.sort_by_key(|entry| (entry.0, entry.1));
        merged.into_iter().map(|(_, _, candidate)| candidate).collect()
    }

    fn causal_mode(&self) -> bool {
        self.shards[0].causal_mode()
    }

    fn enable_causal_mode(&self) -> Result<()> {
        for store in &self.shards {
            store.enable_causal_mode()?;
        }
        Ok(())
    }

    fn causal_frontier(&self) -> AntichainClock {
        // Every shard ingests every stamp, so the frontiers are identical.
        self.shards[0].causal_frontier()
    }

    fn next_publisher_seq(&self, participant: ParticipantId) -> u64 {
        self.home_store(participant).next_publisher_seq(participant)
    }

    /// Causal-mode counterpart of [`UpdateStore::publish`] on the fabric:
    /// primary stamped publish at the publisher's home shard, pinned stamped
    /// replicas everywhere else, under the publish lock.
    fn publish_stamped(
        &self,
        stamp: CausalStamp,
        transactions: Vec<Transaction>,
    ) -> Result<Timed<Epoch>> {
        let _order = self.publish_lock.lock().expect("fabric publish lock poisoned");
        self.published.store(true, Ordering::SeqCst);
        let home = self.router.home_of(stamp.publisher);
        let published = self.shards[home].publish_stamped(stamp.clone(), transactions.clone())?;
        for (index, store) in self.shards.iter().enumerate() {
            if index != home {
                store.publish_replica_stamped(
                    stamp.clone(),
                    published.value,
                    transactions.clone(),
                )?;
            }
        }
        Ok(published)
    }

    fn record_instance_checkpoint(
        &self,
        participant: ParticipantId,
        checkpoint: InstanceCheckpoint,
    ) -> Result<()> {
        for store in &self.shards {
            store.record_instance_checkpoint(participant, checkpoint.clone())?;
        }
        Ok(())
    }

    fn instance_checkpoint(&self, participant: ParticipantId) -> Option<InstanceCheckpoint> {
        self.home_store(participant).instance_checkpoint(participant)
    }

    fn accepted_replay_units_after(
        &self,
        participant: ParticipantId,
        skip: u64,
    ) -> Vec<Vec<Arc<Transaction>>> {
        self.home_store(participant).accepted_replay_units_after(participant, skip)
    }
}

/// The session-protocol surface a reconciliation driver needs, abstracted
/// over "one service" ([`ServiceClient`]) vs "one service per shard"
/// ([`FabricClient`]). Drivers written against this trait run unchanged on a
/// single store service or a whole fabric.
#[allow(async_fn_in_trait)]
pub trait SessionClient {
    /// The participant this client acts for.
    fn participant(&self) -> ParticipantId;

    /// The virtual clock the client's latencies accrue on.
    fn clock(&self) -> &VirtualClock;

    /// Opens a reconciliation session (fabric: one per shard, merged into a
    /// single handle).
    async fn begin_session(&self) -> Result<SessionInfo>;

    /// Drains the session's candidate stream in pages of `batch_size`,
    /// returning all candidates in publication (epoch) order.
    async fn drain_candidates(
        &self,
        session: SessionId,
        batch_size: usize,
    ) -> Result<Vec<CandidateTransaction>>;

    /// Commits the session with the full decision lists.
    async fn commit(
        &self,
        session: SessionId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<()>;

    /// Aborts the session.
    async fn abort(&self, session: SessionId) -> Result<()>;

    /// Publishes a batch, returning its epoch.
    async fn publish(&self, transactions: Vec<Transaction>) -> Result<Epoch>;

    /// Publishes a causally stamped batch, returning its arrival epoch.
    async fn publish_stamped(
        &self,
        stamp: CausalStamp,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch>;
}

impl SessionClient for ServiceClient {
    fn participant(&self) -> ParticipantId {
        ServiceClient::participant(self)
    }

    fn clock(&self) -> &VirtualClock {
        ServiceClient::clock(self)
    }

    async fn begin_session(&self) -> Result<SessionInfo> {
        ServiceClient::begin_session(self).await
    }

    async fn drain_candidates(
        &self,
        session: SessionId,
        batch_size: usize,
    ) -> Result<Vec<CandidateTransaction>> {
        ServiceClient::drain_candidates(self, session, batch_size).await
    }

    async fn commit(
        &self,
        session: SessionId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<()> {
        ServiceClient::commit(self, session, accepted, rejected).await
    }

    async fn abort(&self, session: SessionId) -> Result<()> {
        ServiceClient::abort(self, session).await
    }

    async fn publish(&self, transactions: Vec<Transaction>) -> Result<Epoch> {
        ServiceClient::publish(self, transactions).await
    }

    async fn publish_stamped(
        &self,
        stamp: CausalStamp,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch> {
        ServiceClient::publish_stamped(self, stamp, transactions).await
    }
}

/// One participant's client onto a whole fabric: one [`ServiceClient`] per
/// shard, presenting the N shard sessions as a single virtual session.
///
/// Sessions are opened in shard order (all concurrent fabric sessions
/// acquire admission slots in the same order, so a starved shard delays but
/// never deadlocks them), candidate streams are merged by `(epoch, shard)`,
/// and commits fan the full decision lists to every shard.
pub struct FabricClient {
    router: ShardRouter,
    clients: Vec<ServiceClient>,
    /// Open fabric sessions: home-shard session handle → per-shard handles.
    sessions: RefCell<FxHashMap<SessionId, Vec<SessionId>>>,
}

impl FabricClient {
    /// A fabric client over one [`ServiceClient`] per shard (in shard
    /// order), all bound to the same participant.
    ///
    /// Panics if the client count does not match the router's shard count or
    /// the clients disagree on the participant.
    pub fn new(router: ShardRouter, clients: Vec<ServiceClient>) -> FabricClient {
        assert_eq!(
            clients.len(),
            router.shards(),
            "a fabric client needs exactly one service client per shard"
        );
        let participant = clients[0].participant();
        assert!(
            clients.iter().all(|c| c.participant() == participant),
            "every shard client must act for the same participant"
        );
        FabricClient { router, clients, sessions: RefCell::new(FxHashMap::default()) }
    }

    /// The home shard of this client's participant.
    pub fn home_shard(&self) -> usize {
        self.router.home_of(self.participant())
    }

    fn shard_sessions(&self, session: SessionId) -> Result<Vec<SessionId>> {
        self.sessions.borrow().get(&session).cloned().ok_or_else(|| {
            StorageError::Session(format!(
                "fabric session {}: unknown or already closed",
                session.as_u64()
            ))
        })
    }
}

impl SessionClient for FabricClient {
    fn participant(&self) -> ParticipantId {
        self.clients[0].participant()
    }

    fn clock(&self) -> &VirtualClock {
        self.clients[0].clock()
    }

    /// Opens one session per shard, in shard order. The returned info uses
    /// the **home shard's** handle and reconciliation number (they advance in
    /// lockstep across shards), the largest pinned epoch, and the summed
    /// candidate bound.
    async fn begin_session(&self) -> Result<SessionInfo> {
        let mut infos: Vec<SessionInfo> = Vec::with_capacity(self.clients.len());
        for client in &self.clients {
            match client.begin_session().await {
                Ok(info) => infos.push(info),
                Err(error) => {
                    // Release the shard sessions already opened so a failed
                    // open does not leak admission slots.
                    for (shard, info) in infos.iter().enumerate() {
                        let _ = self.clients[shard].abort(info.session).await;
                    }
                    return Err(error);
                }
            }
        }
        let home = self.home_shard();
        let handle = infos[home].session;
        let merged = SessionInfo {
            session: handle,
            recno: infos[home].recno,
            epoch: infos.iter().map(|info| info.epoch).max().unwrap_or(Epoch::ZERO),
            pending: infos.iter().map(|info| info.pending).sum(),
        };
        let shard_sessions = infos.iter().map(|info| info.session).collect();
        self.sessions.borrow_mut().insert(handle, shard_sessions);
        Ok(merged)
    }

    /// Drains every shard's stream (each shard serves only the epochs homed
    /// there) and k-way merges by `(epoch, shard)`. Epochs are globally
    /// unique across the fabric, so the merge is exactly the publication
    /// order a single store would stream.
    async fn drain_candidates(
        &self,
        session: SessionId,
        batch_size: usize,
    ) -> Result<Vec<CandidateTransaction>> {
        let shard_sessions = self.shard_sessions(session)?;
        let batch_size = batch_size.max(1);
        let mut merged: Vec<(Epoch, usize, CandidateTransaction)> = Vec::new();
        for (shard, (client, shard_session)) in self.clients.iter().zip(&shard_sessions).enumerate()
        {
            loop {
                let (candidates, epochs) =
                    client.next_batch_with_epochs(*shard_session, batch_size).await?;
                let exhausted = candidates.len() < batch_size;
                for (candidate, epoch) in candidates.into_iter().zip(epochs) {
                    merged.push((epoch, shard, candidate));
                }
                if exhausted {
                    break;
                }
            }
        }
        merged.sort_by_key(|entry| (entry.0, entry.1));
        Ok(merged.into_iter().map(|(_, _, candidate)| candidate).collect())
    }

    /// Commits every shard session with the **full** accepted/rejected
    /// lists. Every shard needs the complete record: antecedent exclusion on
    /// a shard's own candidates must see accepts homed at other shards.
    async fn commit(
        &self,
        session: SessionId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<()> {
        let shard_sessions = self.shard_sessions(session)?;
        for (client, shard_session) in self.clients.iter().zip(&shard_sessions) {
            client.commit(*shard_session, accepted, rejected).await?;
        }
        self.sessions.borrow_mut().remove(&session);
        Ok(())
    }

    async fn abort(&self, session: SessionId) -> Result<()> {
        let shard_sessions = self.shard_sessions(session)?;
        for (client, shard_session) in self.clients.iter().zip(&shard_sessions) {
            client.abort(*shard_session).await?;
        }
        self.sessions.borrow_mut().remove(&session);
        Ok(())
    }

    /// Primary publish at the home shard, then pinned replicas everywhere
    /// else. The driver must serialise fabric publishes (one publisher task)
    /// so every shard logs them in the same global order; a divergent order
    /// fails loudly with a pinned-epoch mismatch.
    ///
    /// The whole fan-out is one `fabric.publish` trace span (on the home
    /// shard client's tracer), so a trace shows the primary publish and its
    /// replicas as a unit.
    async fn publish(&self, transactions: Vec<Transaction>) -> Result<Epoch> {
        let home = self.home_shard();
        let _span = self.clients[home].tracer().span(
            "fabric.publish",
            &[
                ("participant", u64::from(self.participant().as_u32())),
                ("home", home as u64),
                ("txns", transactions.len() as u64),
            ],
        );
        let epoch = self.clients[home].publish(transactions.clone()).await?;
        for (shard, client) in self.clients.iter().enumerate() {
            if shard != home {
                client.replicate(epoch, transactions.clone()).await?;
            }
        }
        Ok(epoch)
    }

    async fn publish_stamped(
        &self,
        stamp: CausalStamp,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch> {
        let home = self.router.home_of(stamp.publisher);
        let _span = self.clients[home].tracer().span(
            "fabric.publish",
            &[
                ("participant", u64::from(stamp.publisher.as_u32())),
                ("home", home as u64),
                ("txns", transactions.len() as u64),
            ],
        );
        let epoch = self.clients[home].publish_stamped(stamp.clone(), transactions.clone()).await?;
        for (shard, client) in self.clients.iter().enumerate() {
            if shard != home {
                client.replicate_stamped(stamp.clone(), epoch, transactions.clone()).await?;
            }
        }
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::StoreService;
    use crate::ReconciliationSession;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{Tuple, Update};
    use orchestra_net::SimNetwork;
    use orchestra_rt::LocalExecutor;
    use std::rc::Rc;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn txn(i: u32, j: u64, key: &str) -> Transaction {
        let tuple = Tuple::of_text(&["org", key, "f"]);
        Transaction::from_parts(p(i), j, vec![Update::insert("Function", tuple, p(i))]).unwrap()
    }

    fn mutual_fabric(n: u32, shards: usize) -> StoreFabric {
        let fabric = StoreFabric::new(bioinformatics_schema(), shards);
        for i in 1..=n {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=n {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            fabric.register_participant(policy);
        }
        fabric
    }

    fn mutual_store(n: u32) -> CentralStore {
        let s = CentralStore::new(bioinformatics_schema());
        for i in 1..=n {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=n {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            s.register_participant(policy);
        }
        s
    }

    fn all_member_ids(candidates: &[CandidateTransaction]) -> Vec<TransactionId> {
        let mut seen = rustc_hash::FxHashSet::default();
        let mut ids = Vec::new();
        for candidate in candidates {
            for (id, _) in &candidate.members {
                if seen.insert(*id) {
                    ids.push(*id);
                }
            }
        }
        ids
    }

    #[test]
    fn router_is_deterministic_and_total() {
        let router = ShardRouter::new(4);
        assert_eq!(router.shards(), 4);
        for i in 0..64 {
            let home = router.home_of(p(i));
            assert!(home < 4);
            assert_eq!(home, router.home_of(p(i)), "routing must be stable");
        }
        assert_ne!(router.home_of(p(1)), router.home_of(p(2)));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shard_router_is_rejected() {
        let _ = ShardRouter::new(0);
    }

    #[test]
    fn replicated_log_agrees_on_epochs_across_shards() {
        let fabric = mutual_fabric(4, 3);
        let e1 = fabric.publish(p(1), vec![txn(1, 0, "a")]).unwrap().value;
        let e2 = fabric.publish(p(2), vec![txn(2, 0, "b")]).unwrap().value;
        let e3 = fabric.publish(p(3), vec![txn(3, 0, "c")]).unwrap().value;
        assert_eq!((e1, e2, e3), (Epoch(1), Epoch(2), Epoch(3)));
        // Every shard holds the full log under the same epochs.
        for store in fabric.shard_stores() {
            for (i, epoch) in [(1u32, e1), (2, e2), (3, e3)] {
                let id = txn(i, 0, "x").id();
                assert_eq!(store.epoch_of(id), Some(epoch), "shard log diverged");
            }
        }
    }

    #[test]
    #[should_panic(expected = "before the first publish")]
    fn late_registration_panics() {
        let fabric = mutual_fabric(2, 2);
        fabric.publish(p(1), vec![txn(1, 0, "a")]).unwrap();
        fabric.register_participant(TrustPolicy::new(p(9)));
    }

    /// Drives a full framed round over a fabric of `shards` services and
    /// checks the decisions against a single in-process store fed the same
    /// schedule.
    fn fabric_round_matches_single_store(shards: usize) {
        let n = 5u32;
        let fabric = mutual_fabric(n, shards);
        // Publish in-process (the driver's framed path is exercised in the
        // fabric_driver integration tests; here we isolate session merging).
        for i in 1..=n {
            fabric.publish(p(i), vec![txn(i, 0, &format!("k{i}"))]).unwrap();
        }

        let clock = VirtualClock::new();
        let mut ex = LocalExecutor::new(clock.clone());
        let nodes: Vec<_> = (0..shards).map(StoreService::shard_server_node).collect();
        let net = Rc::new(SimNetwork::new(nodes));
        let config = ServiceConfig { workers: 2, ..ServiceConfig::default() };
        let services: Vec<_> = (0..shards)
            .map(|shard| {
                StoreService::start_at(
                    fabric.shard(shard),
                    &config,
                    &mut ex,
                    Rc::clone(&net) as Rc<dyn orchestra_net::Transport>,
                    StoreService::shard_server_node(shard),
                )
            })
            .collect();

        for i in 1..=n {
            let client = FabricClient::new(
                fabric.router(),
                services.iter().map(|s| s.client_for(p(i))).collect(),
            );
            let fabric = &fabric;
            ex.spawn(async move {
                let info = client.begin_session().await.unwrap();
                let candidates = client.drain_candidates(info.session, 2).await.unwrap();
                // The merged stream must be in global publication order.
                let epochs: Vec<_> =
                    candidates.iter().map(|c| fabric.shard(0).epoch_of(c.id).unwrap()).collect();
                let mut sorted = epochs.clone();
                sorted.sort();
                assert_eq!(epochs, sorted, "merge must restore publication order");
                let accepted = all_member_ids(&candidates);
                client.commit(info.session, &accepted, &[]).await.unwrap();
            });
        }
        assert_eq!(ex.run(), shards * config.workers);
        for service in &services {
            service.shutdown();
        }
        assert_eq!(ex.run(), 0);

        // The same schedule through one in-process store.
        let single = mutual_store(n);
        for i in 1..=n {
            single.publish(p(i), vec![txn(i, 0, &format!("k{i}"))]).unwrap();
        }
        for i in 1..=n {
            let mut session = ReconciliationSession::open(&single, p(i)).unwrap();
            let candidates = session.drain(2).unwrap();
            let accepted = all_member_ids(&candidates);
            session.commit(&accepted, &[]).unwrap();
        }
        for i in 1..=n {
            for store in fabric.shard_stores() {
                assert_eq!(store.accepted_set(p(i)), single.accepted_set(p(i)));
                assert_eq!(store.rejected_set(p(i)), single.rejected_set(p(i)));
                assert_eq!(store.epoch_cursor(p(i)), single.epoch_cursor(p(i)));
                assert_eq!(store.current_reconciliation(p(i)), single.current_reconciliation(p(i)));
            }
        }
    }

    #[test]
    fn fabric_sessions_decide_like_a_single_store() {
        fabric_round_matches_single_store(3);
    }

    #[test]
    fn one_shard_fabric_degenerates_to_a_single_service() {
        fabric_round_matches_single_store(1);
    }

    /// The in-process `UpdateStore` impl: paged sessions over the fabric
    /// must stream the same candidates in the same order as a single store,
    /// page boundaries included, and decide identically.
    #[test]
    fn in_process_fabric_sessions_page_like_a_single_store() {
        let n = 6u32;
        let fabric = mutual_fabric(n, 4);
        let single = mutual_store(n);
        for round in 0..3u64 {
            for i in 1..=n {
                let batch = vec![txn(i, round, &format!("k{i}-{round}"))];
                fabric.publish(p(i), batch.clone()).unwrap();
                single.publish(p(i), batch).unwrap();
            }
        }
        for i in 1..=n {
            let mut fabric_session = ReconciliationSession::open(&fabric, p(i)).unwrap();
            let mut single_session = ReconciliationSession::open(&single, p(i)).unwrap();
            // Page with a size that straddles shard boundaries.
            loop {
                let fabric_page = fabric_session.next_batch(4).unwrap();
                let single_page = single_session.next_batch(4).unwrap();
                assert_eq!(
                    fabric_page.iter().map(|c| c.id).collect::<Vec<_>>(),
                    single_page.iter().map(|c| c.id).collect::<Vec<_>>(),
                    "page diverged for participant {i}"
                );
                if fabric_page.len() < 4 {
                    break;
                }
            }
            fabric_session.commit(&[], &[]).unwrap();
            single_session.commit(&[], &[]).unwrap();
            assert_eq!(fabric.epoch_cursor(p(i)), single.epoch_cursor(p(i)));
        }
    }

    /// An aborted fabric session leaves every shard byte-identical, and the
    /// handle is consumed (a second abort is a no-op).
    #[test]
    fn aborting_a_fabric_session_is_a_no_op_everywhere() {
        let fabric = mutual_fabric(3, 2);
        fabric.publish(p(1), vec![txn(1, 0, "a")]).unwrap();
        let before: Vec<_> = (1..=3)
            .map(|i| (fabric.epoch_cursor(p(i)), fabric.current_reconciliation(p(i))))
            .collect();
        let info = fabric.begin_reconciliation(p(2)).unwrap().value;
        let _ = fabric.next_batch(info.session, 2).unwrap();
        fabric.abort_reconciliation(info.session).unwrap();
        fabric.abort_reconciliation(info.session).unwrap();
        let after: Vec<_> = (1..=3)
            .map(|i| (fabric.epoch_cursor(p(i)), fabric.current_reconciliation(p(i))))
            .collect();
        assert_eq!(before, after);
        assert!(fabric.next_batch(info.session, 2).is_err(), "the handle is consumed");
    }
}
