//! Update store implementations for the Orchestra CDSS.
//!
//! The update store's fundamental role (Section 5.2) is to publish and
//! retrieve updates, associate each published transaction with a client
//! reconciliation, and hold the per-participant accepted/rejected record so
//! that clients carry only soft state. This crate provides:
//!
//! * [`UpdateStore`] — the store interface used by participants: object-safe,
//!   `&self` throughout (implementations shard state internally so many
//!   participants publish and reconcile in parallel against one shared
//!   reference), with per-call [`StoreTiming`] returned in [`Timed`] values
//!   and session-based paged retrieval ([`ReconciliationSession`]).
//! * [`CentralStore`] — the centralised implementation backed by the
//!   `orchestra-storage` engine (the paper's RDBMS-based store,
//!   Section 5.2.1), with decoupled publish/reconcile epochs and store-side
//!   trust-predicate and update-extension evaluation.
//! * [`DhtStore`] — the distributed implementation over the simulated
//!   Pastry-style overlay (the paper's FreePastry-based store,
//!   Section 5.2.2), with an epoch allocator, per-epoch epoch controllers and
//!   per-transaction transaction controllers, charging one simulated message
//!   per protocol step of the paper's Figures 6 and 7.
//! * [`StoreService`] — the store served as a confederation service:
//!   the paged session protocol and publishes become framed
//!   request/response messages over a simulated network, handled by a
//!   bounded worker pool on the hand-rolled `orchestra-rt` runtime, with
//!   per-participant FIFO routing, admission control and request batching.
//! * [`Durability`] — the pluggable persistence backend of the shared
//!   [`StoreCatalog`]: [`Durability::Ephemeral`] (default) keeps the store
//!   in-memory, [`Durability::FileWal`] appends every publish, decision
//!   commit and policy registration to a CRC-checked write-ahead log with
//!   compacting snapshots, and [`StoreCatalog::recover`] (or
//!   [`CentralStore::recover`]) rebuilds byte-identical durable state after a
//!   crash.
//!
//! # Migration from the `&mut self` trait
//!
//! Until PR 2 the trait took `&mut self` everywhere, retrieval materialised
//! every candidate in one `RelevantTransactions` vector, and store cost was
//! read back through a `take_timing` accumulator. The mapping to the new API:
//!
//! | old | new |
//! |-----|-----|
//! | `store.begin_reconciliation(p)?` | `ReconciliationSession::open(&store, p)?` + `session.drain(n)?` |
//! | `store.record_decisions(p, a, r)` after a reconciliation | `session.commit(a, r)?` |
//! | `store.take_timing()` | per-call `Timed::timing` / the session's `timing()` |
//! | `store.accepted_set(p)` (fresh `FxHashSet`) | shared `Arc` snapshot |
//! | `store.transaction(id)` (deep clone) | `Arc<Transaction>` sharing the log |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod catalog;
pub mod central;
pub mod dht;
pub mod durability;
pub mod fabric;
pub mod network_centric;
pub mod protocol;
pub mod pruner;
pub mod service;

pub use api::{ReconciliationSession, SessionId, SessionInfo, StoreTiming, Timed, UpdateStore};
pub use catalog::{OpenedSession, SessionBatch, StoreCatalog};
pub use central::{CentralStore, RetrievalMode};
pub use dht::DhtStore;
pub use durability::{Durability, FileWalBackend, WalOptions};
pub use fabric::{FabricClient, FabricConfig, SessionClient, ShardRouter, StoreFabric};
pub use network_centric::NetworkCentricPlan;
pub use protocol::{StoreRequest, StoreResponse, PROTOCOL_VERSION};
pub use pruner::AutoPruner;
pub use service::{ServiceClient, ServiceConfig, ServiceConfigBuilder, ServiceStats, StoreService};
// Retention and group-commit knobs, re-exported so drivers need not depend
// on `orchestra-storage` directly.
pub use orchestra_storage::{Codec, FlushPolicy, PruneReport, RetentionPolicy};
