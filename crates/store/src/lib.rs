//! Update store implementations for the Orchestra CDSS.
//!
//! The update store's fundamental role (Section 5.2) is to publish and
//! retrieve updates, associate each published transaction with a client
//! reconciliation, and hold the per-participant accepted/rejected record so
//! that clients carry only soft state. This crate provides:
//!
//! * [`UpdateStore`] — the store interface used by participants.
//! * [`CentralStore`] — the centralised implementation backed by the
//!   `orchestra-storage` engine (the paper's RDBMS-based store,
//!   Section 5.2.1), with decoupled publish/reconcile epochs and store-side
//!   trust-predicate and update-extension evaluation.
//! * [`DhtStore`] — the distributed implementation over the simulated
//!   Pastry-style overlay (the paper's FreePastry-based store,
//!   Section 5.2.2), with an epoch allocator, per-epoch epoch controllers and
//!   per-transaction transaction controllers, charging one simulated message
//!   per protocol step of the paper's Figures 6 and 7.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod catalog;
pub mod central;
pub mod dht;
pub mod network_centric;

pub use api::{RelevantTransactions, StoreTiming, UpdateStore};
pub use catalog::StoreCatalog;
pub use central::{CentralStore, RetrievalMode};
pub use dht::DhtStore;
pub use network_centric::NetworkCentricPlan;
