//! The centralised update store (Section 5.2.1).
//!
//! The paper's central store is a commercial RDBMS reached over a LAN with a
//! constant number of round trips per reconciliation; trust-predicate
//! evaluation and update-extension computation happen inside the DBMS so that
//! only relevant transactions travel to the reconciling peer. This
//! implementation keeps the same interface and division of labour on top of
//! the `orchestra-storage` engine. Its cost model charges only store-side
//! compute time (the constant number of LAN round trips is negligible at the
//! paper's scale and is folded into compute).

use crate::api::{RelevantTransactions, StoreTiming, UpdateStore};
use crate::catalog::StoreCatalog;
use orchestra_model::{
    Epoch, ParticipantId, ReconciliationId, Schema, Transaction, TransactionId, TrustPolicy,
};
use orchestra_storage::Result;
use rustc_hash::FxHashSet;
use std::time::Instant;

/// How the store retrieves the relevant transactions for a reconciliation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetrievalMode {
    /// Cursor-based incremental retrieval: walk the per-epoch trust-evaluated
    /// relevance index from the participant's epoch cursor; per-call work is
    /// proportional to the newly published epochs.
    #[default]
    Incremental,
    /// The pre-cursor baseline: rescan the full publication log, re-filter by
    /// trust and decision record, and rebuild the decided set on every call.
    /// Kept (and exercised by the churn benchmark) to quantify the win of the
    /// incremental path; per-call work grows with total history.
    RescanBaseline,
}

/// Centralised update store backed by the embedded relational engine.
#[derive(Debug, Clone)]
pub struct CentralStore {
    catalog: StoreCatalog,
    timing: StoreTiming,
    retrieval: RetrievalMode,
}

impl CentralStore {
    /// Creates an empty central store for the given schema, using incremental
    /// cursor-based retrieval.
    pub fn new(schema: Schema) -> Self {
        CentralStore::with_retrieval(schema, RetrievalMode::Incremental)
    }

    /// Creates an empty central store with an explicit retrieval mode.
    pub fn with_retrieval(schema: Schema, retrieval: RetrievalMode) -> Self {
        CentralStore {
            catalog: StoreCatalog::new(schema),
            timing: StoreTiming::default(),
            retrieval,
        }
    }

    /// The retrieval mode in use.
    pub fn retrieval_mode(&self) -> RetrievalMode {
        self.retrieval
    }

    /// The underlying catalogue (for inspection in tests and tools).
    pub fn catalog(&self) -> &StoreCatalog {
        &self.catalog
    }

    fn timed<T>(&mut self, f: impl FnOnce(&mut StoreCatalog) -> T) -> T {
        let start = Instant::now();
        let out = f(&mut self.catalog);
        self.timing.compute += start.elapsed();
        out
    }
}

impl UpdateStore for CentralStore {
    fn register_participant(&mut self, policy: TrustPolicy) {
        self.timed(|cat| cat.register_policy(policy));
    }

    fn publish(
        &mut self,
        participant: ParticipantId,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch> {
        self.timed(|cat| cat.publish(participant, transactions))
    }

    fn begin_reconciliation(&mut self, participant: ParticipantId) -> Result<RelevantTransactions> {
        let retrieval = self.retrieval;
        self.timed(|cat| {
            let (recno, previous, epoch) = cat.begin_reconciliation(participant);
            let candidates = match retrieval {
                RetrievalMode::Incremental => {
                    // O(new epochs): walk the relevance index from the cursor
                    // and share the log's update lists by reference count.
                    let empty = FxHashSet::default();
                    let relevant = cat.relevant_candidates(participant, previous, epoch);
                    let accepted = cat.accepted_set_ref(participant).unwrap_or(&empty);
                    let mut candidates = Vec::with_capacity(relevant.len());
                    for (txn, priority) in relevant {
                        if priority.is_untrusted() {
                            continue;
                        }
                        let (cand, _fetched) = cat.build_candidate_with(accepted, txn, priority);
                        candidates.push(cand);
                    }
                    candidates
                }
                RetrievalMode::RescanBaseline => {
                    // O(total history): the pre-cursor full-log rescan, with
                    // the accepted set rebuilt per call and every candidate's
                    // update lists deep-copied, as the pre-cursor code did.
                    let relevant = cat.relevant_transactions_rescan(participant, previous, epoch);
                    let accepted = cat.accepted_set_rescan(participant);
                    let mut candidates = Vec::with_capacity(relevant.len());
                    for (txn, priority) in &relevant {
                        if priority.is_untrusted() {
                            continue;
                        }
                        let (cand, _fetched) =
                            cat.build_candidate_rescan(&accepted, txn, *priority);
                        candidates.push(cand);
                    }
                    candidates
                }
            };
            Ok(RelevantTransactions { recno, epoch, candidates })
        })
    }

    fn record_decisions(
        &mut self,
        participant: ParticipantId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<()> {
        self.timed(|cat| cat.record_decisions(participant, accepted, rejected));
        Ok(())
    }

    fn current_reconciliation(&self, participant: ParticipantId) -> ReconciliationId {
        self.catalog.current_reconciliation(participant)
    }

    fn rejected_set(&self, participant: ParticipantId) -> FxHashSet<TransactionId> {
        self.catalog.rejected_set(participant)
    }

    fn accepted_set(&self, participant: ParticipantId) -> FxHashSet<TransactionId> {
        self.catalog.accepted_set(participant)
    }

    fn transaction(&self, id: TransactionId) -> Option<Transaction> {
        self.catalog.transaction(id)
    }

    fn accepted_transactions(&self, participant: ParticipantId) -> Vec<Transaction> {
        self.catalog.accepted_in_publication_order(participant)
    }

    fn take_timing(&mut self) -> StoreTiming {
        std::mem::take(&mut self.timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{Priority, Tuple, Update};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn txn(i: u32, j: u64, updates: Vec<Update>) -> Transaction {
        Transaction::from_parts(p(i), j, updates).unwrap()
    }

    fn store() -> CentralStore {
        let mut s = CentralStore::new(bioinformatics_schema());
        s.register_participant(TrustPolicy::new(p(1)).trusting(p(2), 1u32).trusting(p(3), 1u32));
        s.register_participant(TrustPolicy::new(p(2)).trusting(p(1), 2u32).trusting(p(3), 1u32));
        s.register_participant(TrustPolicy::new(p(3)).trusting(p(2), 1u32));
        s
    }

    #[test]
    fn publish_then_reconcile_returns_trusted_candidates() {
        let mut s = store();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let x1 = txn(1, 0, vec![Update::insert("Function", func("dog", "prot9", "z"), p(1))]);
        s.publish(p(3), vec![x3.clone()]).unwrap();
        s.publish(p(1), vec![x1.clone()]).unwrap();

        // p3 trusts only p2, so x1 is filtered out store-side and nothing is
        // relevant.
        let rel = s.begin_reconciliation(p(3)).unwrap();
        assert_eq!(rel.recno, ReconciliationId(1));
        assert_eq!(rel.epoch, Epoch(2));
        assert!(rel.candidates.is_empty());

        // p2 trusts both p1 and p3.
        let rel = s.begin_reconciliation(p(2)).unwrap();
        assert_eq!(rel.candidates.len(), 2);
        let prios: Vec<Priority> = rel.candidates.iter().map(|c| c.priority).collect();
        assert!(prios.contains(&Priority(1)));
        assert!(prios.contains(&Priority(2)));
    }

    #[test]
    fn repeated_reconciliations_do_not_replay_transactions() {
        let mut s = store();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        s.publish(p(3), vec![x3.clone()]).unwrap();
        let rel1 = s.begin_reconciliation(p(2)).unwrap();
        assert_eq!(rel1.candidates.len(), 1);
        s.record_decisions(p(2), &[x3.id()], &[]).unwrap();

        // Nothing new published: the second reconciliation sees nothing.
        let rel2 = s.begin_reconciliation(p(2)).unwrap();
        assert!(rel2.candidates.is_empty());
        assert_eq!(rel2.recno, ReconciliationId(2));
        assert_eq!(s.current_reconciliation(p(2)), ReconciliationId(2));
    }

    #[test]
    fn decisions_are_durable_in_the_store() {
        let mut s = store();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        s.publish(p(3), vec![x3.clone()]).unwrap();
        s.begin_reconciliation(p(1)).unwrap();
        s.record_decisions(p(1), &[], &[x3.id()]).unwrap();
        assert!(s.rejected_set(p(1)).contains(&x3.id()));
        assert!(s.accepted_set(p(3)).contains(&x3.id()));
        assert_eq!(s.transaction(x3.id()).unwrap(), x3);
        assert!(s.transaction(TransactionId::new(p(9), 9)).is_none());
    }

    #[test]
    fn timing_is_accumulated_and_reset() {
        let mut s = store();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        s.publish(p(3), vec![x3]).unwrap();
        s.begin_reconciliation(p(2)).unwrap();
        let t = s.take_timing();
        assert!(t.network.is_zero());
        // Compute time is positive but tiny; just ensure reset works.
        let t2 = s.take_timing();
        assert_eq!(t2, StoreTiming::default());
    }

    #[test]
    fn antecedent_chain_is_delivered_with_the_candidate() {
        let mut s = store();
        let x0 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "v1"), p(3))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "v1"),
                func("rat", "prot1", "v2"),
                p(2),
            )],
        );
        s.publish(p(3), vec![x0.clone()]).unwrap();
        s.publish(p(2), vec![x1.clone()]).unwrap();
        let rel = s.begin_reconciliation(p(1)).unwrap();
        let cand_x1 = rel.candidates.iter().find(|c| c.id == x1.id()).unwrap();
        assert_eq!(cand_x1.members.len(), 2);
    }
}
