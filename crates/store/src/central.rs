//! The centralised update store (Section 5.2.1).
//!
//! The paper's central store is a commercial RDBMS reached over a LAN with a
//! constant number of round trips per reconciliation; trust-predicate
//! evaluation and update-extension computation happen inside the DBMS so that
//! only relevant transactions travel to the reconciling peer. This
//! implementation keeps the same interface and division of labour on top of
//! the `orchestra-storage` engine, behind the shared-reference
//! [`UpdateStore`] trait: the sharded [`StoreCatalog`] serves publishes and
//! reconciliation sessions from many participants in parallel against one
//! `&CentralStore`.
//!
//! Its default cost model charges only store-side compute time (the constant
//! number of LAN round trips is negligible at the paper's scale). For
//! concurrency experiments, [`CentralStore::with_simulated_latency`] makes
//! the LAN round trip *real*: every store call additionally blocks for the
//! configured latency (charged to `network` time), so drivers that overlap
//! calls from many threads show genuine wall-clock wins over serial drivers
//! — the effect the paper's store sees when many peers reconcile at once.

use crate::api::{SessionId, SessionInfo, StoreTiming, Timed, UpdateStore};
use crate::catalog::StoreCatalog;
use orchestra_model::{
    Epoch, ParticipantId, ReconciliationId, Schema, Transaction, TransactionId, TrustPolicy,
};
use orchestra_recon::CandidateTransaction;
use orchestra_storage::Result;
use rustc_hash::FxHashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the store retrieves the relevant transactions for a reconciliation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetrievalMode {
    /// Cursor-based incremental retrieval: walk the per-epoch trust-evaluated
    /// relevance index from the participant's epoch cursor; per-session work
    /// is proportional to the newly published epochs.
    #[default]
    Incremental,
    /// The pre-cursor baseline: rescan the full publication log, re-filter by
    /// trust and decision record, and rebuild the decided set on every
    /// session open. Kept (and exercised by the churn benchmark) to quantify
    /// the win of the incremental path; per-session work grows with total
    /// history.
    RescanBaseline,
}

/// Centralised update store backed by the embedded relational engine.
#[derive(Debug, Clone)]
pub struct CentralStore {
    catalog: StoreCatalog,
    retrieval: RetrievalMode,
    /// Optional per-call LAN latency, physically slept and charged to
    /// network time (zero by default).
    latency: Duration,
}

impl CentralStore {
    /// Creates an empty central store for the given schema, using incremental
    /// cursor-based retrieval and no simulated latency.
    pub fn new(schema: Schema) -> Self {
        CentralStore::with_retrieval(schema, RetrievalMode::Incremental)
    }

    /// Creates an empty central store with an explicit retrieval mode.
    pub fn with_retrieval(schema: Schema, retrieval: RetrievalMode) -> Self {
        CentralStore { catalog: StoreCatalog::new(schema), retrieval, latency: Duration::ZERO }
    }

    /// Creates an empty central store over an explicit durability backend
    /// (see [`crate::Durability`]).
    pub fn with_durability(schema: Schema, durability: crate::Durability) -> Self {
        CentralStore {
            catalog: StoreCatalog::with_durability(schema, durability),
            retrieval: RetrievalMode::default(),
            latency: Duration::ZERO,
        }
    }

    /// Creates an empty central store whose state is made durable in `dir`
    /// through a file-backed write-ahead log, with the default
    /// [`crate::WalOptions`] (binary codec, per-shard segments). Refuses to
    /// clobber an existing durable store — use [`CentralStore::recover`] for
    /// that.
    pub fn durable(schema: Schema, dir: &std::path::Path) -> Result<Self> {
        CentralStore::durable_with(schema, dir, crate::WalOptions::default())
    }

    /// Like [`CentralStore::durable`], but with explicit [`crate::WalOptions`]
    /// — e.g. `Codec::Json` for a log inspectable with text tools, or
    /// `per_shard: false` for the single-segment layout.
    pub fn durable_with(
        schema: Schema,
        dir: &std::path::Path,
        options: crate::WalOptions,
    ) -> Result<Self> {
        let backend = crate::FileWalBackend::create_with(dir, &schema, options)?;
        Ok(CentralStore::with_durability(schema, crate::Durability::FileWal(backend)))
    }

    /// Reopens a durable central store from its durability directory:
    /// snapshot load plus WAL replay rebuild byte-identical durable state,
    /// and the store keeps appending to the same log (see
    /// [`StoreCatalog::recover`]).
    pub fn recover(dir: &std::path::Path) -> Result<Self> {
        Ok(CentralStore {
            catalog: StoreCatalog::recover(dir)?,
            retrieval: RetrievalMode::default(),
            latency: Duration::ZERO,
        })
    }

    /// Takes a compacting snapshot of a durable store (see
    /// [`StoreCatalog::snapshot`]). Returns the new WAL generation.
    pub fn snapshot(&self) -> Result<u64> {
        self.catalog.snapshot()
    }

    /// Sets the retention policy (see
    /// [`orchestra_storage::RetentionPolicy`]); builder form for
    /// construction chains.
    pub fn with_retention(self, policy: orchestra_storage::RetentionPolicy) -> Self {
        self.catalog.set_retention(policy);
        self
    }

    /// Sets the retention policy. Takes effect at the next
    /// [`CentralStore::prune_to_horizon`].
    pub fn set_retention(&self, policy: orchestra_storage::RetentionPolicy) {
        self.catalog.set_retention(policy);
    }

    /// The retention policy in force.
    pub fn retention(&self) -> orchestra_storage::RetentionPolicy {
        self.catalog.retention()
    }

    /// Prunes converged history per the retention policy (see
    /// [`StoreCatalog::prune_to_horizon`]).
    pub fn prune_to_horizon(&self) -> Result<orchestra_storage::PruneReport> {
        self.catalog.prune_to_horizon()
    }

    /// Creates an empty central store that blocks for `latency` on every
    /// mutating or retrieving call, emulating the LAN round trip to the
    /// paper's RDBMS-backed store. The latency is charged to the call's
    /// `network` time. Used by the concurrent-churn benchmark: a parallel
    /// driver overlaps the waits of many participants, a serial driver pays
    /// their sum.
    pub fn with_simulated_latency(schema: Schema, latency: Duration) -> Self {
        CentralStore {
            catalog: StoreCatalog::new(schema),
            retrieval: RetrievalMode::default(),
            latency,
        }
    }

    /// The retrieval mode in use.
    pub fn retrieval_mode(&self) -> RetrievalMode {
        self.retrieval
    }

    /// The per-call simulated LAN latency (zero unless configured).
    pub fn simulated_latency(&self) -> Duration {
        self.latency
    }

    /// The underlying catalogue (for inspection in tests and tools).
    pub fn catalog(&self) -> &StoreCatalog {
        &self.catalog
    }

    /// Runs a catalogue operation, measuring its compute time and charging
    /// (and sleeping) the configured LAN latency.
    fn timed<T>(&self, f: impl FnOnce(&StoreCatalog) -> T) -> Timed<T> {
        let start = Instant::now();
        let value = f(&self.catalog);
        let compute = start.elapsed();
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        Timed::new(value, StoreTiming { compute, network: self.latency })
    }
}

impl UpdateStore for CentralStore {
    fn register_participant(&self, policy: TrustPolicy) {
        self.catalog.register_policy(policy);
    }

    fn publish(
        &self,
        participant: ParticipantId,
        transactions: Vec<Transaction>,
    ) -> Result<Timed<Epoch>> {
        let timed = self.timed(|cat| cat.publish(participant, transactions));
        let timing = timed.timing;
        timed.value.map(|epoch| Timed::new(epoch, timing))
    }

    fn begin_reconciliation(&self, participant: ParticipantId) -> Result<Timed<SessionInfo>> {
        let rescan = self.retrieval == RetrievalMode::RescanBaseline;
        let timed = self.timed(|cat| cat.open_session(participant, rescan));
        let timing = timed.timing;
        timed.value.map(|opened| Timed::new(opened.info(), timing))
    }

    fn next_batch(
        &self,
        session: SessionId,
        max_candidates: usize,
    ) -> Result<Timed<Vec<CandidateTransaction>>> {
        let timed = self.timed(|cat| cat.batch(session, max_candidates));
        let timing = timed.timing;
        timed
            .value
            .map(|batch| Timed::new(batch.candidates.into_iter().map(|(c, _)| c).collect(), timing))
    }

    fn commit_reconciliation(
        &self,
        session: SessionId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<StoreTiming> {
        let timed = self.timed(|cat| cat.commit_session(session, accepted, rejected));
        timed.value.map(|_| timed.timing)
    }

    fn abort_reconciliation(&self, session: SessionId) -> Result<()> {
        self.catalog.abort_session(session);
        Ok(())
    }

    fn retire_participant(&self, participant: ParticipantId) -> Result<()> {
        self.catalog.retire_participant(participant)
    }

    fn record_decisions(
        &self,
        participant: ParticipantId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<StoreTiming> {
        let timed = self.timed(|cat| cat.record_decisions(participant, accepted, rejected));
        timed.value.map(|()| timed.timing)
    }

    fn current_reconciliation(&self, participant: ParticipantId) -> ReconciliationId {
        self.catalog.current_reconciliation(participant)
    }

    fn rejected_set(&self, participant: ParticipantId) -> Arc<FxHashSet<TransactionId>> {
        self.catalog.rejected_set(participant)
    }

    fn accepted_set(&self, participant: ParticipantId) -> Arc<FxHashSet<TransactionId>> {
        self.catalog.accepted_set(participant)
    }

    fn transaction(&self, id: TransactionId) -> Option<Arc<Transaction>> {
        self.catalog.transaction(id)
    }

    fn accepted_transactions(&self, participant: ParticipantId) -> Vec<Arc<Transaction>> {
        self.catalog.accepted_in_acceptance_order(participant)
    }

    fn epoch_of(&self, id: TransactionId) -> Option<Epoch> {
        self.catalog.epoch_of(id)
    }

    fn accepted_replay_units(&self, participant: ParticipantId) -> Vec<Vec<Arc<Transaction>>> {
        self.catalog.accepted_replay_units(participant)
    }

    fn epoch_cursor(&self, participant: ParticipantId) -> Epoch {
        self.catalog.epoch_cursor(participant)
    }

    fn undecided_candidates(&self, participant: ParticipantId) -> Vec<CandidateTransaction> {
        self.catalog.undecided_candidates(participant)
    }

    fn causal_mode(&self) -> bool {
        self.catalog.causal_mode()
    }

    fn enable_causal_mode(&self) -> Result<()> {
        self.catalog.enable_causal_mode()
    }

    fn causal_frontier(&self) -> orchestra_model::AntichainClock {
        self.catalog.causal_frontier()
    }

    fn next_publisher_seq(&self, participant: ParticipantId) -> u64 {
        self.catalog.next_publisher_seq(participant)
    }

    fn publish_stamped(
        &self,
        stamp: orchestra_model::CausalStamp,
        transactions: Vec<Transaction>,
    ) -> Result<Timed<Epoch>> {
        let timed = self.timed(|cat| cat.publish_causal(stamp, transactions));
        let timing = timed.timing;
        timed.value.map(|epoch| Timed::new(epoch, timing))
    }

    fn publish_replica(
        &self,
        participant: ParticipantId,
        epoch: Epoch,
        transactions: Vec<Transaction>,
    ) -> Result<Timed<Epoch>> {
        let timed = self.timed(|cat| cat.publish_replica(participant, epoch, transactions));
        let timing = timed.timing;
        timed.value.map(|epoch| Timed::new(epoch, timing))
    }

    fn publish_replica_stamped(
        &self,
        stamp: orchestra_model::CausalStamp,
        epoch: Epoch,
        transactions: Vec<Transaction>,
    ) -> Result<Timed<Epoch>> {
        let timed = self.timed(|cat| cat.publish_replica_stamped(&stamp, epoch, transactions));
        let timing = timed.timing;
        timed.value.map(|epoch| Timed::new(epoch, timing))
    }

    fn record_instance_checkpoint(
        &self,
        participant: ParticipantId,
        checkpoint: orchestra_storage::InstanceCheckpoint,
    ) -> Result<()> {
        self.catalog.record_instance_checkpoint(participant, checkpoint)
    }

    fn instance_checkpoint(
        &self,
        participant: ParticipantId,
    ) -> Option<orchestra_storage::InstanceCheckpoint> {
        self.catalog.instance_checkpoint(participant)
    }

    fn accepted_replay_units_after(
        &self,
        participant: ParticipantId,
        skip: u64,
    ) -> Vec<Vec<Arc<Transaction>>> {
        self.catalog.accepted_replay_units_after(participant, skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ReconciliationSession;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{Priority, Tuple, Update};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn txn(i: u32, j: u64, updates: Vec<Update>) -> Transaction {
        Transaction::from_parts(p(i), j, updates).unwrap()
    }

    fn store() -> CentralStore {
        let s = CentralStore::new(bioinformatics_schema());
        s.register_participant(TrustPolicy::new(p(1)).trusting(p(2), 1u32).trusting(p(3), 1u32));
        s.register_participant(TrustPolicy::new(p(2)).trusting(p(1), 2u32).trusting(p(3), 1u32));
        s.register_participant(TrustPolicy::new(p(3)).trusting(p(2), 1u32));
        s
    }

    #[test]
    fn publish_then_reconcile_returns_trusted_candidates() {
        let s = store();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let x1 = txn(1, 0, vec![Update::insert("Function", func("dog", "prot9", "z"), p(1))]);
        s.publish(p(3), vec![x3.clone()]).unwrap();
        s.publish(p(1), vec![x1.clone()]).unwrap();

        // p3 trusts only p2, so x1 is filtered out store-side and nothing is
        // relevant.
        let mut session = ReconciliationSession::open(&s, p(3)).unwrap();
        assert_eq!(session.recno(), ReconciliationId(1));
        assert_eq!(session.epoch(), Epoch(2));
        assert!(session.drain(16).unwrap().is_empty());
        session.commit(&[], &[]).unwrap();

        // p2 trusts both p1 and p3.
        let mut session = ReconciliationSession::open(&s, p(2)).unwrap();
        let candidates = session.drain(16).unwrap();
        assert_eq!(candidates.len(), 2);
        let prios: Vec<Priority> = candidates.iter().map(|c| c.priority).collect();
        assert!(prios.contains(&Priority(1)));
        assert!(prios.contains(&Priority(2)));
        session.abort().unwrap();
    }

    #[test]
    fn repeated_reconciliations_do_not_replay_transactions() {
        let s = store();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        s.publish(p(3), vec![x3.clone()]).unwrap();
        let mut session = ReconciliationSession::open(&s, p(2)).unwrap();
        assert_eq!(session.drain(16).unwrap().len(), 1);
        session.commit(&[x3.id()], &[]).unwrap();

        // Nothing new published: the second reconciliation sees nothing.
        let mut session = ReconciliationSession::open(&s, p(2)).unwrap();
        assert_eq!(session.recno(), ReconciliationId(2));
        assert!(session.drain(16).unwrap().is_empty());
        session.commit(&[], &[]).unwrap();
        assert_eq!(s.current_reconciliation(p(2)), ReconciliationId(2));
    }

    #[test]
    fn decisions_are_durable_in_the_store() {
        let s = store();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        s.publish(p(3), vec![x3.clone()]).unwrap();
        let session = ReconciliationSession::open(&s, p(1)).unwrap();
        session.commit(&[], &[x3.id()]).unwrap();
        assert!(s.rejected_set(p(1)).contains(&x3.id()));
        assert!(s.accepted_set(p(3)).contains(&x3.id()));
        assert_eq!(s.transaction(x3.id()).unwrap().as_ref(), &x3);
        assert!(s.transaction(TransactionId::new(p(9), 9)).is_none());
    }

    #[test]
    fn per_call_timing_is_returned_not_accumulated() {
        let s = store();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        let published = s.publish(p(3), vec![x3]).unwrap();
        assert!(published.timing.network.is_zero());
        let opened = s.begin_reconciliation(p(2)).unwrap();
        assert!(opened.timing.network.is_zero());
        // Each call reports only its own cost; there is no store-side
        // accumulator left to reset.
        let batch = s.next_batch(opened.value.session, 8).unwrap();
        assert_eq!(batch.value.len(), 1);
        s.abort_reconciliation(opened.value.session).unwrap();
    }

    #[test]
    fn simulated_latency_is_slept_and_charged() {
        let s =
            CentralStore::with_simulated_latency(bioinformatics_schema(), Duration::from_millis(2));
        s.register_participant(TrustPolicy::new(p(1)).trusting(p(2), 1u32));
        s.register_participant(TrustPolicy::new(p(2)).trusting(p(1), 1u32));
        assert_eq!(s.simulated_latency(), Duration::from_millis(2));
        let x = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        let wall = Instant::now();
        let published = s.publish(p(2), vec![x]).unwrap();
        assert!(published.timing.network >= Duration::from_millis(2));
        assert!(wall.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn antecedent_chain_is_delivered_with_the_candidate() {
        let s = store();
        let x0 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "v1"), p(3))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "v1"),
                func("rat", "prot1", "v2"),
                p(2),
            )],
        );
        s.publish(p(3), vec![x0.clone()]).unwrap();
        s.publish(p(2), vec![x1.clone()]).unwrap();
        let mut session = ReconciliationSession::open(&s, p(1)).unwrap();
        let candidates = session.drain(16).unwrap();
        session.abort().unwrap();
        let cand_x1 = candidates.iter().find(|c| c.id == x1.id()).unwrap();
        assert_eq!(cand_x1.members.len(), 2);
    }

    #[test]
    fn dropping_an_unfinished_session_aborts_it() {
        let s = store();
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        s.publish(p(3), vec![x3]).unwrap();
        {
            let _session = ReconciliationSession::open(&s, p(1)).unwrap();
            assert_eq!(s.catalog().open_sessions(), 1);
        }
        assert_eq!(s.catalog().open_sessions(), 0);
        assert_eq!(s.current_reconciliation(p(1)), ReconciliationId::default());
    }
}
