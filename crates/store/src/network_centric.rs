//! Network-centric reconciliation over the DHT store.
//!
//! Section 5 of the paper contrasts two ways of organising reconciliation.
//! The *client-centric* algorithm (implemented by [`crate::DhtStore`]'s
//! session-based [`UpdateStore`] retrieval plus the local `ReconcileUpdates`
//! engine) retrieves every relevant transaction and its antecedent chain to
//! the reconciling peer and performs all conflict detection locally. The
//! *network-centric* alternative distributes that work across the network:
//! transaction controllers resolve antecedent chains and compute flattened
//! update extensions where the transactions live, and the owners of the
//! conflicting keys detect conflicts, so the reconciling peer only merges
//! verdicts and applies updates. The trade-off, as the paper's Figure 3
//! summarises, is more messages in exchange for less work at the reconciling
//! peer.
//!
//! The reconciliation *semantics* are identical in both modes — the same
//! transactions are accepted, rejected and deferred — which the integration
//! tests assert; what changes is where the computation happens and the
//! message pattern charged to the simulated network.
//!
//! Under the session API the plan carries the open [`SessionId`]: the caller
//! decides against the plan's candidates and then finishes the session with
//! [`crate::UpdateStore::commit_reconciliation`] (or aborts it), exactly as
//! in the client-centric mode.

use crate::api::{SessionId, StoreTiming, Timed, UpdateStore};
use crate::dht::DhtStore;
use orchestra_model::{Epoch, KeyValue, ParticipantId, ReconciliationId, RelName, TransactionId};
use orchestra_recon::extension::conflict_keys_between;
use orchestra_recon::CandidateTransaction;
use orchestra_storage::Result;
use rustc_hash::{FxHashMap, FxHashSet};

/// Approximate size of a control message in bytes.
const CONTROL_BYTES: u64 = 64;
/// Approximate size of a flattened-extension summary in bytes per update.
const SUMMARY_BYTES_PER_UPDATE: u64 = 96;

/// The result of starting a network-centric reconciliation: the open session
/// (to be committed or aborted by the caller), the relevant candidates (with
/// extensions already flattened remotely) and the pairwise direct conflicts
/// detected by the key controllers.
#[derive(Debug, Clone)]
pub struct NetworkCentricPlan {
    /// The open reconciliation session at the store; decisions are recorded
    /// by committing it.
    pub session: SessionId,
    /// The reconciliation number the commit will record.
    pub recno: ReconciliationId,
    /// The epoch the session is pinned to.
    pub epoch: Epoch,
    /// The candidates, exactly as the client-centric mode would stream them.
    pub candidates: Vec<CandidateTransaction>,
    /// Pairwise direct conflicts between candidate roots, as detected by the
    /// key controllers.
    pub conflicts: FxHashMap<TransactionId, FxHashSet<TransactionId>>,
}

impl DhtStore {
    /// Starts a network-centric reconciliation for a participant.
    ///
    /// Compared to the client-centric session, the antecedent chains are
    /// resolved controller-to-controller (the reconciling peer never requests
    /// them), each transaction controller returns only a flattened-extension
    /// summary, and conflict detection happens at the nodes owning the
    /// conflicting keys, which report verdicts directly to the reconciling
    /// peer. The extra distribution traffic is why this mode has the highest
    /// communication cost in the paper's Figure 3.
    pub fn begin_network_centric_reconciliation(
        &self,
        participant: ParticipantId,
    ) -> Result<Timed<NetworkCentricPlan>> {
        // Reuse the client-centric session for the logical work (epoch
        // pinning, trust evaluation, extension computation). The
        // epoch-allocator, epoch-controller and coordinator round trips are
        // identical in both modes.
        let opened = self.begin_reconciliation(participant)?;
        let mut timing = opened.timing;
        let info = opened.value;

        // Drain the whole session page by page (the distribution work below
        // needs the full candidate set to group summaries by key).
        let mut candidates = Vec::new();
        loop {
            let batch = self.next_batch(info.session, 64)?;
            timing.accumulate(batch.timing);
            let done = batch.value.len() < 64;
            candidates.extend(batch.value);
            if done {
                break;
            }
        }

        let schema = self.catalog().schema().clone();
        let peer = self.peer_node(participant);

        // Transaction controllers push flattened-extension summaries to the
        // reconciling peer: one reply per candidate, sized by its net
        // updates. Antecedent resolution happens controller-to-controller and
        // is charged as one round trip per undecided antecedent between
        // controllers (not involving the peer).
        let mut flattened: FxHashMap<TransactionId, Vec<orchestra_model::Update>> =
            FxHashMap::default();
        for cand in &candidates {
            let net = cand.flattened(&schema);
            let antecedents: Vec<TransactionId> =
                cand.members.iter().map(|(id, _)| *id).filter(|id| *id != cand.id).collect();
            let summary_bytes = CONTROL_BYTES + SUMMARY_BYTES_PER_UPDATE * net.len() as u64;
            let ((), latency) = self.charged(|network| {
                let txn_key = DhtStore::txn_key(cand.id);
                if let Some(controller) = network.ring().owner_of(txn_key) {
                    for ante in &antecedents {
                        let ante_key = DhtStore::txn_key(*ante);
                        network.round_trip(controller, ante_key, CONTROL_BYTES, CONTROL_BYTES);
                    }
                    // Summary pushed to the reconciling peer.
                    network.send_direct(controller, peer, summary_bytes);
                }
            });
            timing.network += latency;
            flattened.insert(cand.id, net);
        }

        // Key controllers detect conflicts: each candidate's summary is
        // forwarded to the controller of every key it touches; each key
        // controller compares the summaries it received and reports verdicts
        // to the reconciling peer.
        let mut by_key: FxHashMap<(RelName, KeyValue), Vec<usize>> = FxHashMap::default();
        for (i, cand) in candidates.iter().enumerate() {
            let mut seen: FxHashSet<(RelName, KeyValue)> = FxHashSet::default();
            for u in &flattened[&cand.id] {
                if let Ok(rel) = schema.relation(&u.relation) {
                    for key in u.touched_keys(rel) {
                        let entry = (u.relation.clone(), key);
                        if seen.insert(entry.clone()) {
                            by_key.entry(entry).or_default().push(i);
                        }
                    }
                }
            }
        }

        let member_sets: Vec<FxHashSet<TransactionId>> =
            candidates.iter().map(|c| c.member_ids()).collect();
        let mut conflicts: FxHashMap<TransactionId, FxHashSet<TransactionId>> =
            FxHashMap::default();
        let mut checked: FxHashSet<(usize, usize)> = FxHashSet::default();
        for ((relation, key), indices) in &by_key {
            // One summary message per candidate touching the key, one verdict
            // reply from the key controller to the reconciling peer.
            let ((), latency) = self.charged(|network| {
                let key_node = orchestra_net::NodeId::hash_str(&format!("key/{relation}/{key}"));
                if let Some(owner) = network.ring().owner_of(key_node) {
                    for _ in 0..indices.len() {
                        network.send_to_key(owner, key_node, CONTROL_BYTES);
                    }
                    network.send_direct(owner, peer, CONTROL_BYTES);
                }
            });
            timing.network += latency;
            for a_pos in 0..indices.len() {
                for b_pos in (a_pos + 1)..indices.len() {
                    let (i, j) =
                        (indices[a_pos].min(indices[b_pos]), indices[a_pos].max(indices[b_pos]));
                    if i == j || !checked.insert((i, j)) {
                        continue;
                    }
                    let a = &candidates[i];
                    let b = &candidates[j];
                    let a_subsumes = member_sets[j].iter().all(|id| member_sets[i].contains(id));
                    let b_subsumes = member_sets[i].iter().all(|id| member_sets[j].contains(id));
                    if a_subsumes || b_subsumes {
                        continue;
                    }
                    let shares_members =
                        member_sets[i].iter().any(|id| member_sets[j].contains(id));
                    let conflicting = if shares_members {
                        a.directly_conflicts_with(b, &schema)
                    } else {
                        !conflict_keys_between(&flattened[&a.id], &flattened[&b.id], &schema)
                            .is_empty()
                    };
                    if conflicting {
                        conflicts.entry(a.id).or_default().insert(b.id);
                        conflicts.entry(b.id).or_default().insert(a.id);
                    }
                }
            }
        }

        Ok(Timed::new(
            NetworkCentricPlan {
                session: info.session,
                recno: info.recno,
                epoch: info.epoch,
                candidates,
                conflicts,
            },
            timing,
        ))
    }
}

/// Splits a plan into the engine's inputs, keeping the session handle —
/// convenience for callers that feed the plan into the reconciliation
/// engine and then commit the session.
pub fn into_engine_inputs(
    plan: NetworkCentricPlan,
) -> (SessionId, Vec<CandidateTransaction>, FxHashMap<TransactionId, FxHashSet<TransactionId>>) {
    (plan.session, plan.candidates, plan.conflicts)
}

/// The total store timing of a plan's follow-up commit plus the retrieval:
/// helper mirroring [`crate::ReconciliationSession::commit`]'s accounting.
pub fn commit_plan(
    store: &DhtStore,
    plan: &NetworkCentricPlan,
    retrieval: StoreTiming,
    accepted: &[TransactionId],
    rejected: &[TransactionId],
) -> Result<StoreTiming> {
    let commit = store.commit_reconciliation(plan.session, accepted, rejected)?;
    let mut total = retrieval;
    total.accumulate(commit);
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{Transaction, TrustPolicy, Tuple, Update};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn txn(i: u32, j: u64, updates: Vec<Update>) -> Transaction {
        Transaction::from_parts(p(i), j, updates).unwrap()
    }

    fn store(n: u32) -> DhtStore {
        let s = DhtStore::new(bioinformatics_schema());
        for i in 1..=n {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=n {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            s.register_participant(policy);
        }
        s
    }

    #[test]
    fn network_centric_plan_detects_the_same_conflicts() {
        let s = store(4);
        let x2 = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "b"), p(3))]);
        let x4 = txn(4, 0, vec![Update::insert("Function", func("mouse", "prot2", "c"), p(4))]);
        s.publish(p(2), vec![x2.clone()]).unwrap();
        s.publish(p(3), vec![x3.clone()]).unwrap();
        s.publish(p(4), vec![x4.clone()]).unwrap();

        let plan = s.begin_network_centric_reconciliation(p(1)).unwrap().value;
        assert_eq!(plan.candidates.len(), 3);
        assert!(plan.conflicts[&x2.id()].contains(&x3.id()));
        assert!(plan.conflicts[&x3.id()].contains(&x2.id()));
        assert!(!plan.conflicts.contains_key(&x4.id()));
        s.abort_reconciliation(plan.session).unwrap();
    }

    #[test]
    fn network_centric_mode_charges_more_messages() {
        // Same published state, two fresh stores: the network-centric plan
        // must charge at least as many messages as the client-centric
        // retrieval (Figure 3's trade-off).
        let build = || {
            let s = store(5);
            for i in 2..=5u32 {
                let t = txn(
                    i,
                    0,
                    vec![Update::insert("Function", func("rat", &format!("prot{i}"), "v"), p(i))],
                );
                s.publish(p(i), vec![t]).unwrap();
            }
            s
        };

        let client_centric = build();
        let before = client_centric.network_stats().messages;
        let mut session = crate::api::ReconciliationSession::open(&client_centric, p(1)).unwrap();
        session.drain(64).unwrap();
        session.abort().unwrap();
        let client_messages = client_centric.network_stats().messages - before;

        let network_centric = build();
        let before = network_centric.network_stats().messages;
        let plan = network_centric.begin_network_centric_reconciliation(p(1)).unwrap().value;
        network_centric.abort_reconciliation(plan.session).unwrap();
        let network_messages = network_centric.network_stats().messages - before;

        assert!(
            network_messages > client_messages,
            "network-centric {network_messages} <= client-centric {client_messages}"
        );
    }

    #[test]
    fn plan_can_be_split_into_engine_inputs_and_committed() {
        let s = store(3);
        let x2 = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        s.publish(p(2), vec![x2.clone()]).unwrap();
        let timed = s.begin_network_centric_reconciliation(p(1)).unwrap();
        let retrieval = timed.timing;
        let plan = timed.value;
        let (session, candidates, conflicts) = into_engine_inputs(plan.clone());
        assert_eq!(candidates.len(), 1);
        assert!(conflicts.is_empty());
        assert_eq!(session, plan.session);
        let total = commit_plan(&s, &plan, retrieval, &[x2.id()], &[]).unwrap();
        assert!(total.total() >= retrieval.total());
        assert!(s.accepted_set(p(1)).contains(&x2.id()));
        assert_eq!(s.current_reconciliation(p(1)), ReconciliationId(1));
    }
}
