//! Network-centric reconciliation over the DHT store.
//!
//! Section 5 of the paper contrasts two ways of organising reconciliation.
//! The *client-centric* algorithm (implemented by [`crate::DhtStore`]'s
//! [`crate::UpdateStore::begin_reconciliation`] plus the local
//! `ReconcileUpdates` engine) retrieves every relevant transaction and its
//! antecedent chain to the reconciling peer and performs all conflict
//! detection locally. The *network-centric* alternative distributes that work
//! across the network: transaction controllers resolve antecedent chains and
//! compute flattened update extensions where the transactions live, and the
//! owners of the conflicting keys detect conflicts, so the reconciling peer
//! only merges verdicts and applies updates. The trade-off, as the paper's
//! Figure 3 summarises, is more messages in exchange for less work at the
//! reconciling peer.
//!
//! The reconciliation *semantics* are identical in both modes — the same
//! transactions are accepted, rejected and deferred — which the integration
//! tests assert; what changes is where the computation happens and the
//! message pattern charged to the simulated network.

use crate::api::RelevantTransactions;
use crate::dht::DhtStore;
use crate::UpdateStore;
use orchestra_model::{KeyValue, ParticipantId, RelName, TransactionId};
use orchestra_recon::extension::conflict_keys_between;
use orchestra_storage::Result;
use rustc_hash::{FxHashMap, FxHashSet};

/// Approximate size of a control message in bytes.
const CONTROL_BYTES: u64 = 64;
/// Approximate size of a flattened-extension summary in bytes per update.
const SUMMARY_BYTES_PER_UPDATE: u64 = 96;

/// The result of starting a network-centric reconciliation: the relevant
/// candidates (with extensions already flattened remotely) plus the pairwise
/// direct conflicts detected by the key controllers.
#[derive(Debug, Clone)]
pub struct NetworkCentricPlan {
    /// The candidates and reconciliation epoch, exactly as in the
    /// client-centric mode.
    pub relevant: RelevantTransactions,
    /// Pairwise direct conflicts between candidate roots, as detected by the
    /// key controllers.
    pub conflicts: FxHashMap<TransactionId, FxHashSet<TransactionId>>,
}

impl DhtStore {
    /// Starts a network-centric reconciliation for a participant.
    ///
    /// Compared to [`UpdateStore::begin_reconciliation`], the antecedent
    /// chains are resolved controller-to-controller (the reconciling peer
    /// never requests them), each transaction controller returns only a
    /// flattened-extension summary, and conflict detection happens at the
    /// nodes owning the conflicting keys, which report verdicts directly to
    /// the reconciling peer.
    pub fn begin_network_centric_reconciliation(
        &mut self,
        participant: ParticipantId,
    ) -> Result<NetworkCentricPlan> {
        // Reuse the client-centric retrieval for the logical work (epoch
        // pinning, trust evaluation, extension computation). The
        // epoch-allocator, epoch-controller and coordinator round trips are
        // identical in both modes; the additional messages charged below are
        // the distribution traffic of the network-centric mode
        // (controller-to-controller antecedent resolution, summary pushes and
        // key-controller verdicts), which is why this mode has the highest
        // communication cost in the paper's Figure 3.
        let relevant = self.begin_reconciliation(participant)?;

        let schema = self.catalog().schema().clone();
        let peer = self.peer_node(participant);
        let latency_before = self.network_stats().latency_us;

        // Transaction controllers push flattened-extension summaries to the
        // reconciling peer: one reply per candidate, sized by its net
        // updates. Antecedent resolution happens controller-to-controller and
        // is charged as one round trip per undecided antecedent between
        // controllers (not involving the peer).
        let mut flattened: FxHashMap<TransactionId, Vec<orchestra_model::Update>> =
            FxHashMap::default();
        for cand in &relevant.candidates {
            let net = cand.flattened(&schema);
            let antecedents: Vec<TransactionId> =
                cand.members.iter().map(|(id, _)| *id).filter(|id| *id != cand.id).collect();
            let summary_bytes = CONTROL_BYTES + SUMMARY_BYTES_PER_UPDATE * net.len() as u64;
            self.charge_controller_work(cand.id, &antecedents, peer, summary_bytes);
            flattened.insert(cand.id, net);
        }

        // Key controllers detect conflicts: each candidate's summary is
        // forwarded to the controller of every key it touches; each key
        // controller compares the summaries it received and reports verdicts
        // to the reconciling peer.
        let mut by_key: FxHashMap<(RelName, KeyValue), Vec<usize>> = FxHashMap::default();
        for (i, cand) in relevant.candidates.iter().enumerate() {
            let mut seen: FxHashSet<(RelName, KeyValue)> = FxHashSet::default();
            for u in &flattened[&cand.id] {
                if let Ok(rel) = schema.relation(&u.relation) {
                    for key in u.touched_keys(rel) {
                        let entry = (u.relation.clone(), key);
                        if seen.insert(entry.clone()) {
                            by_key.entry(entry).or_default().push(i);
                        }
                    }
                }
            }
        }

        let member_sets: Vec<FxHashSet<TransactionId>> =
            relevant.candidates.iter().map(|c| c.member_ids()).collect();
        let mut conflicts: FxHashMap<TransactionId, FxHashSet<TransactionId>> =
            FxHashMap::default();
        let mut checked: FxHashSet<(usize, usize)> = FxHashSet::default();
        for ((relation, key), indices) in &by_key {
            // One summary message per candidate touching the key, one verdict
            // reply from the key controller to the reconciling peer.
            self.charge_key_controller(relation, key, indices.len() as u64, peer);
            for a_pos in 0..indices.len() {
                for b_pos in (a_pos + 1)..indices.len() {
                    let (i, j) =
                        (indices[a_pos].min(indices[b_pos]), indices[a_pos].max(indices[b_pos]));
                    if i == j || !checked.insert((i, j)) {
                        continue;
                    }
                    let a = &relevant.candidates[i];
                    let b = &relevant.candidates[j];
                    let a_subsumes = member_sets[j].iter().all(|id| member_sets[i].contains(id));
                    let b_subsumes = member_sets[i].iter().all(|id| member_sets[j].contains(id));
                    if a_subsumes || b_subsumes {
                        continue;
                    }
                    let shares_members =
                        member_sets[i].iter().any(|id| member_sets[j].contains(id));
                    let conflicting = if shares_members {
                        a.directly_conflicts_with(b, &schema)
                    } else {
                        !conflict_keys_between(&flattened[&a.id], &flattened[&b.id], &schema)
                            .is_empty()
                    };
                    if conflicting {
                        conflicts.entry(a.id).or_default().insert(b.id);
                        conflicts.entry(b.id).or_default().insert(a.id);
                    }
                }
            }
        }

        // The distribution messages charged above bypass the store's timed
        // wrapper, so fold their latency into the store timing explicitly.
        let latency_after = self.network_stats().latency_us;
        self.record_network_latency(latency_after - latency_before);

        Ok(NetworkCentricPlan { relevant, conflicts })
    }
}

/// Returns a plan's candidates, consuming it — convenience for callers that
/// feed the plan into the reconciliation engine.
pub fn into_engine_inputs(
    plan: NetworkCentricPlan,
) -> (RelevantTransactions, FxHashMap<TransactionId, FxHashSet<TransactionId>>) {
    (plan.relevant, plan.conflicts)
}

/// Extra message-charging hooks used only by the network-centric mode.
impl DhtStore {
    /// The overlay node of a participant (public for the network-centric
    /// driver and for tests).
    pub fn peer_node(&self, participant: ParticipantId) -> orchestra_net::NodeId {
        orchestra_net::NodeId::hash_str(&format!("participant-{}", participant.as_u32()))
    }

    fn charge_controller_work(
        &mut self,
        txn: TransactionId,
        antecedents: &[TransactionId],
        peer: orchestra_net::NodeId,
        summary_bytes: u64,
    ) {
        let txn_key = orchestra_net::NodeId::hash_str(&format!(
            "txn/{}/{}",
            txn.participant.as_u32(),
            txn.local
        ));
        let network = self.network_mut();
        // Controller-to-controller antecedent resolution: a round trip from
        // this transaction's controller to each undecided antecedent's
        // controller.
        if let Some(controller) = network.ring().owner_of(txn_key) {
            for ante in antecedents {
                let ante_key = orchestra_net::NodeId::hash_str(&format!(
                    "txn/{}/{}",
                    ante.participant.as_u32(),
                    ante.local
                ));
                network.round_trip(controller, ante_key, CONTROL_BYTES, CONTROL_BYTES);
            }
            // Summary pushed to the reconciling peer.
            network.send_direct(controller, peer, summary_bytes);
        }
    }

    fn charge_key_controller(
        &mut self,
        relation: &str,
        key: &KeyValue,
        summaries: u64,
        peer: orchestra_net::NodeId,
    ) {
        let key_node = orchestra_net::NodeId::hash_str(&format!("key/{relation}/{key}"));
        let network = self.network_mut();
        if let Some(owner) = network.ring().owner_of(key_node) {
            // One summary message per candidate touching the key.
            for _ in 0..summaries {
                network.send_to_key(owner, key_node, CONTROL_BYTES);
            }
            // One verdict message back to the reconciling peer.
            network.send_direct(owner, peer, CONTROL_BYTES);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{Transaction, TrustPolicy, Tuple, Update};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn txn(i: u32, j: u64, updates: Vec<Update>) -> Transaction {
        Transaction::from_parts(p(i), j, updates).unwrap()
    }

    fn store(n: u32) -> DhtStore {
        let mut s = DhtStore::new(bioinformatics_schema());
        for i in 1..=n {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=n {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            s.register_participant(policy);
        }
        s
    }

    #[test]
    fn network_centric_plan_detects_the_same_conflicts() {
        let mut s = store(4);
        let x2 = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        let x3 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "b"), p(3))]);
        let x4 = txn(4, 0, vec![Update::insert("Function", func("mouse", "prot2", "c"), p(4))]);
        s.publish(p(2), vec![x2.clone()]).unwrap();
        s.publish(p(3), vec![x3.clone()]).unwrap();
        s.publish(p(4), vec![x4.clone()]).unwrap();

        let plan = s.begin_network_centric_reconciliation(p(1)).unwrap();
        assert_eq!(plan.relevant.candidates.len(), 3);
        assert!(plan.conflicts[&x2.id()].contains(&x3.id()));
        assert!(plan.conflicts[&x3.id()].contains(&x2.id()));
        assert!(!plan.conflicts.contains_key(&x4.id()));
    }

    #[test]
    fn network_centric_mode_charges_more_messages() {
        // Same published state, two fresh stores: the network-centric plan
        // must charge at least as many messages as the client-centric
        // retrieval (Figure 3's trade-off).
        let build = || {
            let mut s = store(5);
            for i in 2..=5u32 {
                let t = txn(
                    i,
                    0,
                    vec![Update::insert("Function", func("rat", &format!("prot{i}"), "v"), p(i))],
                );
                s.publish(p(i), vec![t]).unwrap();
            }
            s.take_timing();
            s
        };

        let mut client_centric = build();
        let before = client_centric.network_stats().messages;
        client_centric.begin_reconciliation(p(1)).unwrap();
        let client_messages = client_centric.network_stats().messages - before;

        let mut network_centric = build();
        let before = network_centric.network_stats().messages;
        network_centric.begin_network_centric_reconciliation(p(1)).unwrap();
        let network_messages = network_centric.network_stats().messages - before;

        assert!(
            network_messages > client_messages,
            "network-centric {network_messages} <= client-centric {client_messages}"
        );
    }

    #[test]
    fn plan_can_be_split_into_engine_inputs() {
        let mut s = store(3);
        let x2 = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        s.publish(p(2), vec![x2.clone()]).unwrap();
        let plan = s.begin_network_centric_reconciliation(p(1)).unwrap();
        let (relevant, conflicts) = into_engine_inputs(plan);
        assert_eq!(relevant.candidates.len(), 1);
        assert!(conflicts.is_empty());
    }
}
