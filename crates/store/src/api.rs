//! The update-store interface shared by the centralised and distributed
//! implementations.

use orchestra_model::{
    Epoch, ParticipantId, ReconciliationId, Transaction, TransactionId, TrustPolicy,
};
use orchestra_recon::CandidateTransaction;
use orchestra_storage::Result;
use rustc_hash::FxHashSet;
use std::time::Duration;

/// The result of starting a reconciliation at the update store: the epoch the
/// reconciliation is pinned to and the relevant (fully trusted, undecided)
/// transactions, each with its priority and transaction extension already
/// computed store-side — only relevant transactions and their extensions
/// travel to the reconciling peer.
#[derive(Debug, Clone)]
pub struct RelevantTransactions {
    /// The reconciliation number assigned by the store.
    pub recno: ReconciliationId,
    /// The largest stable epoch at the time of the call; the reconciliation
    /// covers all transactions published after the participant's previous
    /// reconciliation epoch up to and including this one.
    pub epoch: Epoch,
    /// The candidate transactions, in publication order.
    pub candidates: Vec<CandidateTransaction>,
}

/// Timing breakdown accumulated inside the update store, used to reproduce
/// the paper's store-time vs. local-time split (Figures 10 and 12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreTiming {
    /// Time spent computing inside the store (trust evaluation, extension
    /// computation, log and epoch bookkeeping).
    pub compute: Duration,
    /// Simulated network latency charged by the store's message protocol
    /// (zero for the centralised store, which the paper accesses over a fast
    /// LAN with a constant number of round trips).
    pub network: Duration,
}

impl StoreTiming {
    /// Total store-side time.
    pub fn total(&self) -> Duration {
        self.compute + self.network
    }

    /// Adds another breakdown to this one.
    pub fn accumulate(&mut self, other: StoreTiming) {
        self.compute += other.compute;
        self.network += other.network;
    }
}

/// The update store interface used by participants.
///
/// Every implementation provides the operations listed in Section 5.2 of the
/// paper: publish transactions, record reconciliations and decisions,
/// retrieve the relevant transactions (with priorities and extensions) for a
/// reconciliation, and expose the participant's durable accepted/rejected
/// record.
pub trait UpdateStore {
    /// Registers a participant and its trust policy. Trust predicates are
    /// evaluated inside the store so that only relevant transactions are sent
    /// to the reconciling peer.
    fn register_participant(&mut self, policy: TrustPolicy);

    /// Publishes a batch of transactions from a peer as one epoch. The store
    /// marks the publisher's own transactions as already accepted by it.
    /// Returns the epoch assigned to the batch.
    fn publish(
        &mut self,
        participant: ParticipantId,
        transactions: Vec<Transaction>,
    ) -> Result<Epoch>;

    /// Starts a reconciliation for a participant: pins it to the largest
    /// stable epoch, records it, and returns the relevant trusted
    /// transactions together with their priorities and transaction
    /// extensions.
    fn begin_reconciliation(&mut self, participant: ParticipantId) -> Result<RelevantTransactions>;

    /// Records the accept/reject decisions a participant made during a
    /// reconciliation (deferred transactions stay soft at the client).
    fn record_decisions(
        &mut self,
        participant: ParticipantId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<()>;

    /// The participant's most recent reconciliation number.
    fn current_reconciliation(&self, participant: ParticipantId) -> ReconciliationId;

    /// The set of transactions the participant has rejected so far.
    fn rejected_set(&self, participant: ParticipantId) -> FxHashSet<TransactionId>;

    /// The set of transactions the participant has accepted so far.
    fn accepted_set(&self, participant: ParticipantId) -> FxHashSet<TransactionId>;

    /// Looks up a published transaction by id.
    fn transaction(&self, id: TransactionId) -> Option<Transaction>;

    /// The transactions the participant has accepted, in publication order —
    /// the replay stream that reconstructs a participant's instance up to its
    /// last reconciliation (the paper's soft-state property). This is a
    /// recovery path and is not charged to the reconciliation cost model.
    fn accepted_transactions(&self, participant: ParticipantId) -> Vec<Transaction>;

    /// Returns and resets the store-side timing accumulated since the last
    /// call.
    fn take_timing(&mut self) -> StoreTiming;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_timing_accumulates_and_totals() {
        let mut a =
            StoreTiming { compute: Duration::from_millis(2), network: Duration::from_millis(3) };
        let b =
            StoreTiming { compute: Duration::from_millis(5), network: Duration::from_millis(7) };
        a.accumulate(b);
        assert_eq!(a.compute, Duration::from_millis(7));
        assert_eq!(a.network, Duration::from_millis(10));
        assert_eq!(a.total(), Duration::from_millis(17));
        assert_eq!(StoreTiming::default().total(), Duration::ZERO);
    }
}
