//! The update-store interface shared by the centralised and distributed
//! implementations.
//!
//! # Concurrency-ready design
//!
//! The paper's update store serves many peers at once (Section 5.2), so the
//! trait is built for shared access:
//!
//! * every method takes `&self` — implementations synchronise internally
//!   (the bundled stores shard their state per participant behind `RwLock`s),
//!   so publishes and reconciliations from different participants proceed in
//!   parallel against one `&Store`;
//! * the trait is **object-safe**: drivers can hold a `&dyn UpdateStore`;
//! * store-side cost is returned *per call* as a [`StoreTiming`] inside
//!   [`Timed`], instead of being accumulated in store-internal mutable state
//!   (the old `take_timing` pattern, which forced `&mut self` everywhere and
//!   raced under concurrent callers);
//! * reconciliation retrieval is **session-based and paged**: \
//!   [`UpdateStore::begin_reconciliation`] opens a [`SessionInfo`] and
//!   candidates are streamed in publication order through
//!   [`UpdateStore::next_batch`], bounding peak memory instead of
//!   materialising every candidate in one `Vec`. A session ends with
//!   [`UpdateStore::commit_reconciliation`] (which durably records the
//!   reconciliation, the decisions and the new epoch cursor) or
//!   [`UpdateStore::abort_reconciliation`] (which leaves store state
//!   untouched).
//!
//! [`ReconciliationSession`] is the ergonomic RAII handle over the raw
//! session calls: it accumulates per-call timing, streams batches, and aborts
//! on drop if neither finaliser ran.

use orchestra_model::{
    AntichainClock, CausalStamp, Epoch, ParticipantId, ReconciliationId, Transaction,
    TransactionId, TrustPolicy,
};
use orchestra_recon::CandidateTransaction;
use orchestra_storage::{InstanceCheckpoint, Result, StorageError};
use rustc_hash::FxHashSet;
use std::sync::Arc;
use std::time::Duration;

/// Timing breakdown of one update-store call, used to reproduce the paper's
/// store-time vs. local-time split (Figures 10 and 12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreTiming {
    /// Time spent computing inside the store (trust evaluation, extension
    /// computation, log and epoch bookkeeping).
    pub compute: Duration,
    /// Simulated network latency charged by the store's message protocol
    /// (zero for the centralised store, which the paper accesses over a fast
    /// LAN with a constant number of round trips).
    pub network: Duration,
}

impl StoreTiming {
    /// Total store-side time.
    pub fn total(&self) -> Duration {
        self.compute + self.network
    }

    /// Adds another breakdown to this one.
    pub fn accumulate(&mut self, other: StoreTiming) {
        self.compute += other.compute;
        self.network += other.network;
    }
}

/// A value returned by an update-store call, together with the store-side
/// cost of producing it. Replaces the old store-internal timing accumulator,
/// which required `&mut self` on every method and silently merged the costs
/// of concurrent callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timed<T> {
    /// The call's result.
    pub value: T,
    /// The store-side cost of this call alone.
    pub timing: StoreTiming,
}

impl<T> Timed<T> {
    /// Wraps a value with its timing.
    pub fn new(value: T, timing: StoreTiming) -> Self {
        Timed { value, timing }
    }
}

/// An opaque handle naming one open reconciliation session at a store.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct SessionId(pub u64);

impl SessionId {
    /// The raw handle value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

/// Metadata of a freshly opened reconciliation session: the reconciliation
/// number the store will assign at commit, the epoch the session is pinned
/// to, and an upper bound on the candidates still to stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SessionInfo {
    /// The session handle for the follow-up `next_batch` / `commit` /
    /// `abort` calls.
    pub session: SessionId,
    /// The reconciliation number that will be recorded if the session
    /// commits.
    pub recno: ReconciliationId,
    /// The largest stable epoch at open time; the session covers all
    /// transactions published after the participant's previous reconciliation
    /// epoch up to and including this one.
    pub epoch: Epoch,
    /// Upper bound on the number of candidates the session will stream
    /// (undecided relevant entries pinned at open; untrusted entries are
    /// filtered out batch-side and make the actual count smaller).
    pub pending: usize,
}

/// The update store interface used by participants.
///
/// Every implementation provides the operations listed in Section 5.2 of the
/// paper: publish transactions, record reconciliations and decisions,
/// retrieve the relevant transactions (with priorities and extensions) for a
/// reconciliation, and expose the participant's durable accepted/rejected
/// record. All methods take `&self`; implementations synchronise internally
/// and the trait is object-safe (see the module docs).
pub trait UpdateStore: Send + Sync {
    /// Registers a participant and its trust policy. Trust predicates are
    /// evaluated inside the store so that only relevant transactions are sent
    /// to the reconciling peer. Registering an already-registered participant
    /// replaces its policy.
    fn register_participant(&self, policy: TrustPolicy);

    /// Publishes a batch of transactions from a peer as one epoch. The store
    /// marks the publisher's own transactions as already accepted by it.
    /// Returns the epoch assigned to the batch, with the call's store cost.
    fn publish(
        &self,
        participant: ParticipantId,
        transactions: Vec<Transaction>,
    ) -> Result<Timed<Epoch>>;

    /// Opens a reconciliation session for a participant, pinned to the
    /// largest stable epoch. Nothing durable changes until the session
    /// commits: aborting leaves the store byte-identical.
    fn begin_reconciliation(&self, participant: ParticipantId) -> Result<Timed<SessionInfo>>;

    /// Streams the next batch of at most `max_candidates` candidate
    /// transactions (trusted, undecided, with priorities and transaction
    /// extensions computed store-side), in publication order. A batch
    /// holding *fewer* than `max_candidates` candidates (in particular an
    /// empty one) means the session is exhausted — implementations must only
    /// return a short batch at end of stream.
    fn next_batch(
        &self,
        session: SessionId,
        max_candidates: usize,
    ) -> Result<Timed<Vec<CandidateTransaction>>>;

    /// Commits a session: durably records the reconciliation (recno and
    /// epoch), the accept/reject decisions made during it (deferred
    /// transactions stay soft at the client), and advances the participant's
    /// epoch cursor. The session handle is consumed.
    fn commit_reconciliation(
        &self,
        session: SessionId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<StoreTiming>;

    /// Aborts a session, leaving every piece of durable store state exactly
    /// as it was before [`UpdateStore::begin_reconciliation`]. The session
    /// handle is consumed. Aborting an unknown session is a no-op.
    fn abort_reconciliation(&self, session: SessionId) -> Result<()>;

    /// Retires a registered participant: its durable decision record stays
    /// (decisions are final), but it stops pinning the retention layer's
    /// convergence horizon, receives no further relevance entries and can no
    /// longer open reconciliation sessions. A laggard that will never
    /// reconcile again must be retired for `ConvergedOnly` retention to make
    /// progress. Re-registering the same id rejoins it as a late member.
    fn retire_participant(&self, participant: ParticipantId) -> Result<()>;

    /// Records accept/reject decisions outside a session (conflict
    /// resolution between reconciliations).
    fn record_decisions(
        &self,
        participant: ParticipantId,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<StoreTiming>;

    /// The participant's most recent *committed* reconciliation number.
    fn current_reconciliation(&self, participant: ParticipantId) -> ReconciliationId;

    /// A shared snapshot of the transactions the participant has rejected so
    /// far — a reference-count bump over the incrementally maintained record,
    /// never a fresh set.
    fn rejected_set(&self, participant: ParticipantId) -> Arc<FxHashSet<TransactionId>>;

    /// A shared snapshot of the transactions the participant has accepted so
    /// far (see [`UpdateStore::rejected_set`]).
    fn accepted_set(&self, participant: ParticipantId) -> Arc<FxHashSet<TransactionId>>;

    /// Looks up a published transaction by id, sharing the log's copy.
    fn transaction(&self, id: TransactionId) -> Option<Arc<Transaction>>;

    /// The transactions the participant has accepted, in **acceptance
    /// order** — the order its instance applied them, and therefore the
    /// replay stream that reconstructs the instance up to its last
    /// reconciliation (the paper's soft-state property). Publication order
    /// would not do: a participant executes its own transactions against a
    /// lagging view, so its own write to a key can land locally before a
    /// remotely published one it only accepts later. Each entry shares the
    /// log's copy. This is a recovery path and is not charged to the
    /// reconciliation cost model.
    fn accepted_transactions(&self, participant: ParticipantId) -> Vec<Arc<Transaction>>;

    /// The epoch in which a transaction was published, if it is in the log.
    /// Recovery path (used to tell which of a rebuilt participant's own
    /// publications postdate its last reconciliation); not charged to the
    /// cost model.
    fn epoch_of(&self, id: TransactionId) -> Option<Epoch>;

    /// The accepted transactions of [`UpdateStore::accepted_transactions`]
    /// grouped into **replay units** — maximal antecedent-linked runs, each
    /// the newly accepted slice of one candidate extension. The participant
    /// applied each unit's *flattened* net effect, so reconstruction must
    /// flatten per unit too (a chain that collapsed to a no-op must replay
    /// as a no-op). Recovery path; not charged to the cost model.
    fn accepted_replay_units(&self, participant: ParticipantId) -> Vec<Vec<Arc<Transaction>>>;

    /// The epoch cursor of the participant's most recent *committed*
    /// reconciliation (`Epoch::ZERO` if it has never reconciled).
    fn epoch_cursor(&self, participant: ParticipantId) -> Epoch;

    /// The relevant, trusted, still-undecided transactions at or before the
    /// participant's epoch cursor, in publication order with extensions —
    /// exactly the candidates its earlier reconciliations deferred. This is
    /// the second half of the paper's soft-state property: together with
    /// [`UpdateStore::accepted_transactions`] it lets a participant that lost
    /// all local state rebuild both its instance *and* its deferred conflict
    /// state from the store. Recovery path; not charged to the cost model.
    fn undecided_candidates(&self, participant: ParticipantId) -> Vec<CandidateTransaction>;

    // --- Causal mode -----------------------------------------------------
    //
    // Default implementations keep scalar-only stores valid trait impls:
    // `causal_mode` reports `false` and the stamped entry points error. The
    // bundled stores override the lot by delegating to their catalogue.

    /// Whether the store is in causal mode (client-side stamp allocation;
    /// see [`UpdateStore::publish_stamped`]). Scalar-only stores report
    /// `false`.
    fn causal_mode(&self) -> bool {
        false
    }

    /// Switches the store to causal mode: publishers allocate their own
    /// [`CausalStamp`]s and publish through [`UpdateStore::publish_stamped`];
    /// scalar [`UpdateStore::publish`] is rejected from then on. Idempotent
    /// and one-way. The default errors (scalar-only store).
    fn enable_causal_mode(&self) -> Result<()> {
        Err(StorageError::Causal("this store does not support causal mode".to_string()))
    }

    /// The store's causal ingest frontier: the deepest ingested stamp per
    /// publisher (empty for scalar-only stores). A reconciling participant
    /// merges this into its observed clock — the store holds everything at
    /// or behind its frontier.
    fn causal_frontier(&self) -> AntichainClock {
        AntichainClock::default()
    }

    /// The sequence number the participant's next causal stamp must carry
    /// (per-publisher FIFO, starting at 1). A participant rebuilt from the
    /// store resynchronises its client-side sequence from this.
    fn next_publisher_seq(&self, participant: ParticipantId) -> u64 {
        let _ = participant;
        1
    }

    /// Publishes a causally stamped batch (causal mode only): the stamp was
    /// allocated client-side, so no central sequence round trip serialises
    /// concurrent publishers. Returns the batch's *arrival epoch* — the
    /// store's linear extension of the causal order. The default errors
    /// (scalar-only store).
    fn publish_stamped(
        &self,
        stamp: CausalStamp,
        transactions: Vec<Transaction>,
    ) -> Result<Timed<Epoch>> {
        let _ = (stamp, transactions);
        Err(StorageError::Causal("this store does not support causal stamps".to_string()))
    }

    // --- Fabric replication ----------------------------------------------
    //
    // Default implementations keep standalone stores valid trait impls: the
    // replica entry points error. A store that can serve as a fabric shard
    // (the central store) overrides them.

    /// Appends a batch already published at another fabric shard to this
    /// store's log under the epoch the home shard assigned. Replication
    /// keeps every shard's log identical — same transactions, same epoch
    /// numbering — while only the *home* shard extends its relevance index
    /// for the batch (the epoch's candidates are served from there). Errors
    /// if this store would derive a different epoch (the fabric fan-out got
    /// out of order) or if it does not support replication (the default).
    fn publish_replica(
        &self,
        participant: ParticipantId,
        epoch: Epoch,
        transactions: Vec<Transaction>,
    ) -> Result<Timed<Epoch>> {
        let _ = (participant, epoch, transactions);
        Err(StorageError::Persistence("this store does not support fabric replication".to_string()))
    }

    /// Causal-mode counterpart of [`UpdateStore::publish_replica`]: appends
    /// a causally stamped batch under the home shard's epoch, validating and
    /// ingesting the stamp exactly as the home shard did. The default
    /// errors.
    fn publish_replica_stamped(
        &self,
        stamp: CausalStamp,
        epoch: Epoch,
        transactions: Vec<Transaction>,
    ) -> Result<Timed<Epoch>> {
        let _ = (stamp, epoch, transactions);
        Err(StorageError::Persistence("this store does not support fabric replication".to_string()))
    }

    /// Durably records a participant's materialised instance checkpoint, so
    /// rebuilding from the store survives retention pruning the transactions
    /// the instance was built from. The default errors (store without
    /// checkpoint support).
    fn record_instance_checkpoint(
        &self,
        participant: ParticipantId,
        checkpoint: InstanceCheckpoint,
    ) -> Result<()> {
        let _ = (participant, checkpoint);
        Err(StorageError::Causal("this store does not support instance checkpoints".to_string()))
    }

    /// The participant's latest instance checkpoint, if it has recorded one.
    fn instance_checkpoint(&self, participant: ParticipantId) -> Option<InstanceCheckpoint> {
        let _ = participant;
        None
    }

    /// Like [`UpdateStore::accepted_replay_units`], but skipping the first
    /// `skip` entries of the participant's acceptance order — the prefix an
    /// [`InstanceCheckpoint`] already folds in. `skip` counts acceptance
    /// *order* entries (pruned ones included), which only the store can index
    /// correctly, so there is deliberately no default in terms of
    /// `accepted_replay_units` (that would over-skip on a pruned store).
    /// Recovery path; not charged to the cost model.
    fn accepted_replay_units_after(
        &self,
        participant: ParticipantId,
        skip: u64,
    ) -> Vec<Vec<Arc<Transaction>>> {
        if skip == 0 {
            return self.accepted_replay_units(participant);
        }
        Vec::new()
    }
}

/// Compile-time proof that the trait stays object-safe.
const _: fn(&dyn UpdateStore) = |_| {};

/// RAII handle over one paged reconciliation at a store.
///
/// Obtained from [`ReconciliationSession::open`]; stream candidates with
/// [`ReconciliationSession::next_batch`] (or drain everything with
/// [`ReconciliationSession::drain`]), then finish with
/// [`ReconciliationSession::commit`] or [`ReconciliationSession::abort`].
/// Dropping an unfinished session aborts it at the store, so durable state is
/// never left pinned to a half-run reconciliation.
#[derive(Debug)]
pub struct ReconciliationSession<'a, S: UpdateStore + ?Sized> {
    store: &'a S,
    info: SessionInfo,
    timing: StoreTiming,
    finished: bool,
}

impl<'a, S: UpdateStore + ?Sized> ReconciliationSession<'a, S> {
    /// Opens a session for `participant` at `store`.
    pub fn open(store: &'a S, participant: ParticipantId) -> Result<Self> {
        let opened = store.begin_reconciliation(participant)?;
        Ok(ReconciliationSession {
            store,
            info: opened.value,
            timing: opened.timing,
            finished: false,
        })
    }

    /// The reconciliation number the store will assign at commit.
    pub fn recno(&self) -> ReconciliationId {
        self.info.recno
    }

    /// The epoch the session is pinned to.
    pub fn epoch(&self) -> Epoch {
        self.info.epoch
    }

    /// Upper bound on the candidates still to stream.
    pub fn pending_hint(&self) -> usize {
        self.info.pending
    }

    /// Store-side cost accumulated by this session so far (open plus every
    /// batch; the commit call reports its own cost).
    pub fn timing(&self) -> StoreTiming {
        self.timing
    }

    /// The next batch of at most `max_candidates` candidates, in publication
    /// order. Empty means exhausted.
    pub fn next_batch(&mut self, max_candidates: usize) -> Result<Vec<CandidateTransaction>> {
        let batch = self.store.next_batch(self.info.session, max_candidates)?;
        self.timing.accumulate(batch.timing);
        Ok(batch.value)
    }

    /// Streams every remaining candidate in pages of `batch_size`, bounding
    /// the store-side working set per call, and returns them concatenated.
    /// A short page signals end of stream (the trait contract), so no extra
    /// empty-page probe is issued.
    pub fn drain(&mut self, batch_size: usize) -> Result<Vec<CandidateTransaction>> {
        let size = batch_size.max(1);
        let mut out = Vec::new();
        loop {
            let batch = self.next_batch(size)?;
            let done = batch.len() < size;
            out.extend(batch);
            if done {
                return Ok(out);
            }
        }
    }

    /// Commits the session (see [`UpdateStore::commit_reconciliation`]) and
    /// returns the total store cost of the whole session including the
    /// commit.
    pub fn commit(
        mut self,
        accepted: &[TransactionId],
        rejected: &[TransactionId],
    ) -> Result<StoreTiming> {
        self.finished = true;
        let commit = self.store.commit_reconciliation(self.info.session, accepted, rejected)?;
        let mut total = self.timing;
        total.accumulate(commit);
        Ok(total)
    }

    /// Aborts the session, leaving store state untouched.
    pub fn abort(mut self) -> Result<()> {
        self.finished = true;
        self.store.abort_reconciliation(self.info.session)
    }

    /// Consumes the wrapper *without* finishing the session at the store,
    /// returning the raw handle. The caller takes over responsibility for
    /// calling [`UpdateStore::commit_reconciliation`] or
    /// [`UpdateStore::abort_reconciliation`] on it.
    pub fn detach(mut self) -> SessionId {
        self.finished = true;
        self.info.session
    }
}

impl<S: UpdateStore + ?Sized> Drop for ReconciliationSession<'_, S> {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.store.abort_reconciliation(self.info.session);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_timing_accumulates_and_totals() {
        let mut a =
            StoreTiming { compute: Duration::from_millis(2), network: Duration::from_millis(3) };
        let b =
            StoreTiming { compute: Duration::from_millis(5), network: Duration::from_millis(7) };
        a.accumulate(b);
        assert_eq!(a.compute, Duration::from_millis(7));
        assert_eq!(a.network, Duration::from_millis(10));
        assert_eq!(a.total(), Duration::from_millis(17));
        assert_eq!(StoreTiming::default().total(), Duration::ZERO);
    }

    #[test]
    fn timed_carries_value_and_cost() {
        let t = Timed::new(
            42u32,
            StoreTiming { compute: Duration::from_micros(1), network: Duration::ZERO },
        );
        assert_eq!(t.value, 42);
        assert_eq!(t.timing.total(), Duration::from_micros(1));
        assert_eq!(SessionId(7).as_u64(), 7);
    }
}
