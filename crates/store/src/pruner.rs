//! Scheduled auto-pruning of converged history.
//!
//! PR 5 added bounded-memory retention —
//! [`prune_to_horizon`](crate::StoreCatalog::prune_to_horizon) drops history
//! every reconciled participant has converged past — but left *when* to
//! prune to the caller. The
//! [`AutoPruner`] runs that call on a background thread at a fixed interval,
//! so long-lived stores stay bounded without the application threading
//! pruning through its own control flow.
//!
//! The pruner is deliberately closure-based: it captures whatever pruning
//! entry point fits the deployment (a `CentralStore` behind an `Arc`, a
//! `DhtStore`, a bare catalogue) rather than imposing a store type. Shutdown
//! is clean and prompt — dropping the pruner (or calling
//! [`AutoPruner::stop`]) wakes the thread through a condvar and joins it, so
//! no prune runs after the handle is gone.

use orchestra_obs::Obs;
use orchestra_storage::{PruneReport, Result};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Shared stop flag: the mutex guards the flag, the condvar wakes the
/// sleeper early on stop.
struct Signal {
    stopped: Mutex<bool>,
    wake: Condvar,
}

/// A background thread that prunes converged history on a fixed interval.
///
/// ```no_run
/// use orchestra_store::{AutoPruner, CentralStore, RetentionPolicy};
/// use orchestra_model::Schema;
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let store = Arc::new(CentralStore::new(Schema::new()));
/// store.set_retention(RetentionPolicy::KeepLastN(64));
/// let pruner = {
///     let store = Arc::clone(&store);
///     AutoPruner::spawn(Duration::from_secs(30), move || store.prune_to_horizon())
/// };
/// // ... publish / reconcile ...
/// pruner.stop(); // or just drop it
/// ```
#[derive(Debug)]
pub struct AutoPruner {
    signal: Arc<Signal>,
    thread: Option<JoinHandle<()>>,
    /// Reports of completed prune rounds (errors are retained too, so an
    /// operator can notice a persistently failing prune).
    history: Arc<Mutex<Vec<Result<PruneReport>>>>,
}

impl std::fmt::Debug for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Signal")
            .field("stopped", &*self.stopped.lock().expect("pruner stop flag"))
            .finish_non_exhaustive()
    }
}

impl AutoPruner {
    /// Spawns the pruning thread: every `interval` it runs `prune` (e.g.
    /// `move || store.prune_to_horizon()`, which advances the convergence
    /// horizon under the store's [`orchestra_storage::RetentionPolicy`] and
    /// prunes to it). The first run happens one full interval after spawn.
    pub fn spawn(
        interval: Duration,
        mut prune: impl FnMut() -> Result<PruneReport> + Send + 'static,
    ) -> AutoPruner {
        let signal = Arc::new(Signal { stopped: Mutex::new(false), wake: Condvar::new() });
        let history: Arc<Mutex<Vec<Result<PruneReport>>>> = Arc::new(Mutex::new(Vec::new()));
        let thread_signal = Arc::clone(&signal);
        let thread_history = Arc::clone(&history);
        let thread = std::thread::Builder::new()
            .name("orchestra-auto-pruner".to_string())
            .spawn(move || loop {
                let stopped = thread_signal.stopped.lock().expect("pruner stop flag");
                let (stopped, timeout) = thread_signal
                    .wake
                    .wait_timeout_while(stopped, interval, |stopped| !*stopped)
                    .expect("pruner stop flag");
                if *stopped {
                    return;
                }
                drop(stopped);
                if timeout.timed_out() {
                    let report = prune();
                    thread_history.lock().expect("pruner history").push(report);
                }
            })
            .expect("spawn auto-pruner thread");
        AutoPruner { signal, thread: Some(thread), history }
    }

    /// [`AutoPruner::spawn`] with observability: every round runs under a
    /// `prune` trace span and bumps `pruner.rounds` (plus `pruner.errors`
    /// when the closure fails). The tracer is `Send`, so the background
    /// thread traces into the same sink as the simulated work.
    pub fn spawn_observed(
        interval: Duration,
        obs: &Obs,
        mut prune: impl FnMut() -> Result<PruneReport> + Send + 'static,
    ) -> AutoPruner {
        let rounds = obs.metrics.counter("pruner.rounds");
        let errors = obs.metrics.counter("pruner.errors");
        let tracer = obs.tracer.clone();
        AutoPruner::spawn(interval, move || {
            let _span = tracer.span("prune", &[]);
            let report = prune();
            rounds.inc();
            if report.is_err() {
                errors.inc();
            }
            report
        })
    }

    /// Number of prune rounds completed so far (including failed ones).
    pub fn rounds(&self) -> usize {
        self.history.lock().expect("pruner history").len()
    }

    /// Drains the reports of completed prune rounds, oldest first.
    pub fn take_reports(&self) -> Vec<Result<PruneReport>> {
        std::mem::take(&mut *self.history.lock().expect("pruner history"))
    }

    /// Stops the thread and waits for it: any in-flight prune finishes, no
    /// new one starts. Idempotent; also invoked by `Drop`.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(thread) = self.thread.take() else { return };
        *self.signal.stopped.lock().expect("pruner stop flag") = true;
        self.signal.wake.notify_all();
        thread.join().expect("auto-pruner thread panicked");
    }
}

impl Drop for AutoPruner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn prunes_repeatedly_until_stopped() {
        let runs = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&runs);
        let pruner = AutoPruner::spawn(Duration::from_millis(5), move || {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(PruneReport::default())
        });
        while runs.load(Ordering::SeqCst) < 3 {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(pruner.rounds() >= 1);
        pruner.stop();
        let after_stop = runs.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(runs.load(Ordering::SeqCst), after_stop, "no prune after stop");
    }

    #[test]
    fn stop_is_prompt_even_with_a_long_interval() {
        let pruner = AutoPruner::spawn(Duration::from_secs(3600), || Ok(PruneReport::default()));
        let start = std::time::Instant::now();
        drop(pruner); // Drop path: wakes the hour-long sleep immediately.
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn observed_pruner_counts_rounds_and_traces_them() {
        let obs = Obs::enabled();
        let pruner = AutoPruner::spawn_observed(Duration::from_millis(3), &obs, || {
            Ok(PruneReport::default())
        });
        while pruner.rounds() < 2 {
            std::thread::sleep(Duration::from_millis(2));
        }
        pruner.stop();
        assert!(obs.metrics.counter("pruner.rounds").get() >= 2);
        assert_eq!(obs.metrics.counter("pruner.errors").get(), 0);
        assert!(obs.tracer.export().contains("prune"), "rounds must run under a prune span");
    }

    #[test]
    fn reports_are_collected_and_drainable() {
        let pruner = AutoPruner::spawn(Duration::from_millis(3), || Ok(PruneReport::default()));
        while pruner.rounds() < 2 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let reports = pruner.take_reports();
        assert!(reports.len() >= 2);
        assert!(reports.iter().all(|r| r.is_ok()));
        pruner.stop();
    }
}
