//! A deterministic single-threaded executor over non-`Send` futures.
//!
//! Tasks are polled from a FIFO ready queue. When the queue drains, the
//! executor advances the [`VirtualClock`](crate::VirtualClock) to the
//! earliest pending timer and continues; when there are neither ready tasks
//! nor timers, `run` returns. The executor is lifetime-parameterised so
//! spawned futures may borrow from the caller's scope — service drivers
//! exploit this to hand each client task a `&mut Participant` without any
//! `'static` gymnastics.

use crate::clock::VirtualClock;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

#[derive(Default)]
struct ReadyQueue {
    queue: Mutex<VecDeque<usize>>,
}

impl ReadyQueue {
    fn push(&self, task: usize) {
        self.queue.lock().expect("ready queue").push_back(task);
    }

    fn pop(&self) -> Option<usize> {
        self.queue.lock().expect("ready queue").pop_front()
    }
}

/// The waker only needs the task index and the ready queue, both of which
/// are `Send + Sync` — the futures themselves never cross a thread.
struct TaskWaker {
    task: usize,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.task);
    }
}

type LocalFuture<'a> = Pin<Box<dyn Future<Output = ()> + 'a>>;

/// A deterministic single-threaded executor bound to a [`VirtualClock`].
pub struct LocalExecutor<'a> {
    tasks: Vec<Option<LocalFuture<'a>>>,
    ready: Arc<ReadyQueue>,
    clock: VirtualClock,
}

impl<'a> LocalExecutor<'a> {
    /// An executor driving the given clock.
    pub fn new(clock: VirtualClock) -> LocalExecutor<'a> {
        LocalExecutor { tasks: Vec::new(), ready: Arc::new(ReadyQueue::default()), clock }
    }

    /// The executor's clock handle.
    pub fn clock(&self) -> VirtualClock {
        self.clock.clone()
    }

    /// Spawns a task; it becomes ready immediately and runs when
    /// [`run`](LocalExecutor::run) is (or already is) draining the queue.
    pub fn spawn(&mut self, future: impl Future<Output = ()> + 'a) {
        let id = self.tasks.len();
        self.tasks.push(Some(Box::pin(future)));
        self.ready.push(id);
    }

    /// Runs until no task is ready and no timer is pending. Returns the
    /// number of tasks that never completed (blocked forever on a channel or
    /// waker that nothing will fire) — `0` means every spawned task ran to
    /// completion.
    pub fn run(&mut self) -> usize {
        loop {
            while let Some(id) = self.ready.pop() {
                // A completed (or spuriously re-woken) task leaves a `None`
                // slot; duplicate queue entries are harmless.
                let Some(task) = self.tasks[id].as_mut() else {
                    continue;
                };
                let waker =
                    Waker::from(Arc::new(TaskWaker { task: id, ready: Arc::clone(&self.ready) }));
                let mut cx = Context::from_waker(&waker);
                if task.as_mut().poll(&mut cx).is_ready() {
                    self.tasks[id] = None;
                }
            }
            if !self.clock.fire_next() {
                break;
            }
        }
        self.tasks.iter().filter(|t| t.is_some()).count()
    }
}

/// Cooperatively yields once: the current task re-queues itself behind every
/// task already ready, then resumes.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn tasks_run_to_completion_in_spawn_order() {
        let clock = VirtualClock::new();
        let order = RefCell::new(Vec::new());
        let mut ex = LocalExecutor::new(clock);
        for i in 0..3u32 {
            let order = &order;
            ex.spawn(async move {
                order.borrow_mut().push(i);
            });
        }
        assert_eq!(ex.run(), 0);
        drop(ex);
        assert_eq!(order.into_inner(), vec![0, 1, 2]);
    }

    #[test]
    fn yielding_interleaves_tasks_fairly() {
        let clock = VirtualClock::new();
        let order = RefCell::new(Vec::new());
        let mut ex = LocalExecutor::new(clock);
        for i in 0..2u32 {
            let order = &order;
            ex.spawn(async move {
                for step in 0..3u32 {
                    order.borrow_mut().push((i, step));
                    yield_now().await;
                }
            });
        }
        assert_eq!(ex.run(), 0);
        drop(ex);
        assert_eq!(order.into_inner(), vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)],);
    }

    #[test]
    fn tasks_may_borrow_from_the_spawning_scope() {
        let clock = VirtualClock::new();
        let mut counter = 0u32;
        {
            let mut ex = LocalExecutor::new(clock);
            let counter = &mut counter;
            ex.spawn(async move {
                *counter += 41;
                yield_now().await;
                *counter += 1;
            });
            assert_eq!(ex.run(), 0);
        }
        assert_eq!(counter, 42);
    }

    #[test]
    fn blocked_forever_tasks_are_reported() {
        let clock = VirtualClock::new();
        let mut ex = LocalExecutor::new(clock);
        let (_tx, rx) = crate::oneshot::<u32>();
        ex.spawn(async move {
            // The sender is alive but never sends: nothing will ever wake us.
            let _ = rx.await;
        });
        ex.spawn(async {});
        assert_eq!(ex.run(), 1);
    }
}
