//! Virtual time: a discrete-event clock with timer futures.
//!
//! The clock never waits. [`VirtualClock::sleep_us`] registers a `(deadline,
//! waker)` pair; when the executor finds every task blocked it calls
//! [`VirtualClock::fire_next`], which jumps `now` to the earliest pending
//! deadline and wakes everything due. Ties fire in creation order, so runs
//! are deterministic.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

struct TimerEntry {
    deadline_us: u64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline_us == other.deadline_us && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline_us, self.seq).cmp(&(other.deadline_us, other.seq))
    }
}

#[derive(Default)]
struct ClockState {
    now_us: u64,
    next_seq: u64,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    /// `Send + Sync` mirror of `now_us`, updated whenever time advances, so
    /// observers on other threads (or behind `Send` bounds, like a tracer's
    /// time source) can read virtual time without holding the `Rc` clock.
    shared_now: Arc<AtomicU64>,
}

/// A shared handle to the virtual clock. Cloning is cheap; all clones view
/// the same time.
#[derive(Clone, Default)]
pub struct VirtualClock {
    state: Rc<RefCell<ClockState>>,
}

impl VirtualClock {
    /// A fresh clock at virtual time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// The current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.state.borrow().now_us
    }

    /// A future that resolves once virtual time has advanced by `us`
    /// microseconds. `sleep_us(0)` resolves on first poll.
    pub fn sleep_us(&self, us: u64) -> Sleep {
        let deadline_us = self.state.borrow().now_us.saturating_add(us);
        Sleep { clock: self.clone(), deadline_us }
    }

    /// A `Send + Sync` cell that mirrors the current virtual time. Updated
    /// every time the clock advances; intended for observers that cannot
    /// hold the (thread-local) clock itself, e.g. a tracer's time source.
    pub fn shared_now(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.state.borrow().shared_now)
    }

    /// True when at least one timer is pending.
    pub fn has_timers(&self) -> bool {
        !self.state.borrow().timers.is_empty()
    }

    /// Advances virtual time to the earliest pending deadline and wakes every
    /// timer due at that instant. Returns `false` when no timers are pending
    /// (time does not move).
    pub fn fire_next(&self) -> bool {
        let mut state = self.state.borrow_mut();
        let Some(Reverse(first)) = state.timers.pop() else {
            return false;
        };
        // Timers register strictly in the future, but a woken-then-re-polled
        // sleep can leave a stale entry at or below `now`; never step back.
        state.now_us = state.now_us.max(first.deadline_us);
        state.shared_now.store(state.now_us, Ordering::Relaxed);
        let now = state.now_us;
        let mut due = vec![first.waker];
        while let Some(Reverse(next)) = state.timers.peek() {
            if next.deadline_us > now {
                break;
            }
            due.push(state.timers.pop().expect("peeked timer").0.waker);
        }
        drop(state);
        for waker in due {
            waker.wake();
        }
        true
    }

    fn register(&self, deadline_us: u64, waker: Waker) {
        let mut state = self.state.borrow_mut();
        let seq = state.next_seq;
        state.next_seq += 1;
        state.timers.push(Reverse(TimerEntry { deadline_us, seq, waker }));
    }
}

/// Future returned by [`VirtualClock::sleep_us`].
pub struct Sleep {
    clock: VirtualClock,
    deadline_us: u64,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.clock.now_us() >= self.deadline_us {
            Poll::Ready(())
        } else {
            self.clock.register(self.deadline_us, cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::LocalExecutor;
    use std::cell::RefCell;

    #[test]
    fn time_starts_at_zero_and_only_fires_forward() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_us(), 0);
        assert!(!clock.fire_next());
        assert_eq!(clock.now_us(), 0);
    }

    #[test]
    fn sleeps_resolve_in_deadline_order() {
        let clock = VirtualClock::new();
        let order = RefCell::new(Vec::new());
        let mut ex = LocalExecutor::new(clock.clone());
        ex.spawn(async {
            clock.sleep_us(300).await;
            order.borrow_mut().push((3u32, clock.now_us()));
        });
        ex.spawn(async {
            clock.sleep_us(100).await;
            order.borrow_mut().push((1, clock.now_us()));
            clock.sleep_us(100).await;
            order.borrow_mut().push((2, clock.now_us()));
        });
        ex.run();
        drop(ex);
        assert_eq!(order.into_inner(), vec![(1, 100), (2, 200), (3, 300)]);
        assert_eq!(clock.now_us(), 300);
    }

    #[test]
    fn simultaneous_deadlines_fire_in_creation_order() {
        let clock = VirtualClock::new();
        let order = RefCell::new(Vec::new());
        let mut ex = LocalExecutor::new(clock.clone());
        for i in 0..4u32 {
            let clock = clock.clone();
            let order = &order;
            ex.spawn(async move {
                clock.sleep_us(50).await;
                order.borrow_mut().push(i);
            });
        }
        ex.run();
        drop(ex);
        assert_eq!(order.into_inner(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shared_now_mirrors_virtual_time_across_advances() {
        let clock = VirtualClock::new();
        let cell = clock.shared_now();
        assert_eq!(cell.load(std::sync::atomic::Ordering::Relaxed), 0);
        let mut ex = LocalExecutor::new(clock.clone());
        ex.spawn(async {
            clock.sleep_us(250).await;
            clock.sleep_us(250).await;
        });
        ex.run();
        drop(ex);
        assert_eq!(cell.load(std::sync::atomic::Ordering::Relaxed), 500);
        assert_eq!(clock.now_us(), 500);
    }

    #[test]
    fn zero_sleep_is_ready_immediately() {
        let clock = VirtualClock::new();
        let done = RefCell::new(false);
        let mut ex = LocalExecutor::new(clock.clone());
        ex.spawn(async {
            clock.sleep_us(0).await;
            *done.borrow_mut() = true;
        });
        ex.run();
        drop(ex);
        assert!(done.into_inner());
        assert_eq!(clock.now_us(), 0);
    }
}
