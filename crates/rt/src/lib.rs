//! Minimal hand-rolled async runtime for the Orchestra store service.
//!
//! The service layer multiplexes thousands of reconciliation sessions onto a
//! bounded worker pool. An OS thread per session would defeat the point, and
//! this build environment has no crates.io access, so the runtime is built
//! from the standard library alone:
//!
//! * [`LocalExecutor`] — a deterministic single-threaded executor over
//!   non-`Send` futures. Tasks may borrow from the spawning scope (the
//!   executor is lifetime-parameterised), which is what lets service clients
//!   hold `&mut Participant` across await points.
//! * [`VirtualClock`] — a discrete-event timer wheel. There is no IO and no
//!   wall clock: when every task is blocked, the executor advances virtual
//!   time to the earliest pending timer and fires it. Simulated network and
//!   store latencies become [`sleep_us`](VirtualClock::sleep_us) awaits, so
//!   latency *overlaps* across sessions exactly as it would in a real async
//!   server, and measured p50/p99 session latencies are deterministic.
//! * [`channel`] / [`oneshot`] — single-threaded channels. The bounded mpsc
//!   channel is the service's backpressure primitive: `send` on a full inbox
//!   parks the sender until the worker drains, so admission control is real
//!   rather than simulated.
//!
//! Determinism: the ready queue is FIFO, timers fire in `(deadline, creation
//! order)` order, and nothing consults the wall clock or an RNG. Two runs of
//! the same task set interleave identically.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;
pub mod clock;
pub mod executor;

pub use channel::{channel, oneshot, OneshotReceiver, OneshotSender, Receiver, SendError, Sender};
pub use clock::{Sleep, VirtualClock};
pub use executor::{yield_now, LocalExecutor};
