//! Single-threaded async channels: a oneshot reply slot and a bounded mpsc
//! queue.
//!
//! The bounded channel is the service's backpressure primitive: `send` on a
//! full queue parks the sending task until the consumer drains an item, so a
//! slow worker pushes back on its producers instead of buffering without
//! bound. Everything is `Rc`-based — these channels only connect tasks on
//! the same [`LocalExecutor`](crate::LocalExecutor).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// Oneshot
// ---------------------------------------------------------------------------

struct OneshotInner<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_alive: bool,
}

/// Creates a oneshot channel: a single value handed from one task to another,
/// typically a response to a framed request.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let inner =
        Rc::new(RefCell::new(OneshotInner { value: None, waker: None, sender_alive: true }));
    (OneshotSender { inner: Rc::clone(&inner) }, OneshotReceiver { inner })
}

/// Sending half of a [`oneshot`] channel.
pub struct OneshotSender<T> {
    inner: Rc<RefCell<OneshotInner<T>>>,
}

impl<T> OneshotSender<T> {
    /// Delivers the value, waking the receiver. Errors with the value back
    /// if the receiver is gone.
    pub fn send(self, value: T) -> Result<(), T> {
        // `self` is consumed; the Drop impl handles the no-send case.
        if Rc::strong_count(&self.inner) == 1 {
            return Err(value);
        }
        let mut inner = self.inner.borrow_mut();
        inner.value = Some(value);
        if let Some(waker) = inner.waker.take() {
            waker.wake();
        }
        Ok(())
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.sender_alive = false;
        if let Some(waker) = inner.waker.take() {
            waker.wake();
        }
    }
}

/// Receiving half of a [`oneshot`] channel. Resolves to `None` if the sender
/// was dropped without sending.
pub struct OneshotReceiver<T> {
    inner: Rc<RefCell<OneshotInner<T>>>,
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut inner = self.inner.borrow_mut();
        if let Some(value) = inner.value.take() {
            return Poll::Ready(Some(value));
        }
        if !inner.sender_alive {
            return Poll::Ready(None);
        }
        inner.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Bounded mpsc
// ---------------------------------------------------------------------------

struct ChannelInner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    recv_waker: Option<Waker>,
    send_wakers: VecDeque<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Creates a bounded multi-producer single-consumer channel. `capacity` must
/// be at least 1; `send` awaits while the queue is full.
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity >= 1, "bounded channel capacity must be at least 1");
    let inner = Rc::new(RefCell::new(ChannelInner {
        queue: VecDeque::new(),
        capacity,
        recv_waker: None,
        send_wakers: VecDeque::new(),
        senders: 1,
        receiver_alive: true,
    }));
    (Sender { inner: Rc::clone(&inner) }, Receiver { inner })
}

/// The error returned when sending into a channel whose receiver is gone;
/// carries the undelivered value.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Sending half of a bounded [`channel`].
pub struct Sender<T> {
    inner: Rc<RefCell<ChannelInner<T>>>,
}

impl<T> Sender<T> {
    /// Enqueues a value, awaiting while the queue is full. Errors with the
    /// value back if the receiver is gone.
    pub fn send(&self, value: T) -> Send<'_, T> {
        Send { sender: self, value: Some(value) }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.inner.borrow_mut().senders += 1;
        Sender { inner: Rc::clone(&self.inner) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.senders -= 1;
        if inner.senders == 0 {
            if let Some(waker) = inner.recv_waker.take() {
                waker.wake();
            }
        }
    }
}

/// Future returned by [`Sender::send`].
pub struct Send<'a, T> {
    sender: &'a Sender<T>,
    value: Option<T>,
}

// No self-references: the future is a borrow plus a by-value slot.
impl<T> Unpin for Send<'_, T> {}

impl<T> Future for Send<'_, T> {
    type Output = Result<(), SendError<T>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Result<(), SendError<T>>> {
        let this = self.get_mut();
        let mut inner = this.sender.inner.borrow_mut();
        let value = this.value.take().expect("Send polled after completion");
        if !inner.receiver_alive {
            return Poll::Ready(Err(SendError(value)));
        }
        if inner.queue.len() < inner.capacity {
            inner.queue.push_back(value);
            if let Some(waker) = inner.recv_waker.take() {
                waker.wake();
            }
            Poll::Ready(Ok(()))
        } else {
            inner.send_wakers.push_back(cx.waker().clone());
            drop(inner);
            this.value = Some(value);
            Poll::Pending
        }
    }
}

/// Receiving half of a bounded [`channel`].
pub struct Receiver<T> {
    inner: Rc<RefCell<ChannelInner<T>>>,
}

impl<T> Receiver<T> {
    /// Dequeues the next value, awaiting while the queue is empty. Resolves
    /// to `None` once every sender is gone and the queue is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Dequeues a value only if one is already queued — the worker-side
    /// batching primitive (drain whatever is there, then await).
    pub fn try_recv(&mut self) -> Option<T> {
        let mut inner = self.inner.borrow_mut();
        let value = inner.queue.pop_front();
        if value.is_some() {
            if let Some(waker) = inner.send_wakers.pop_front() {
                waker.wake();
            }
        }
        value
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.receiver_alive = false;
        for waker in inner.send_wakers.drain(..) {
            waker.wake();
        }
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    receiver: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut inner = self.receiver.inner.borrow_mut();
        if let Some(value) = inner.queue.pop_front() {
            if let Some(waker) = inner.send_wakers.pop_front() {
                waker.wake();
            }
            return Poll::Ready(Some(value));
        }
        if inner.senders == 0 {
            return Poll::Ready(None);
        }
        inner.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::executor::LocalExecutor;
    use std::cell::RefCell;

    #[test]
    fn oneshot_delivers_and_reports_dropped_senders() {
        let clock = VirtualClock::new();
        let results = RefCell::new(Vec::new());
        let mut ex = LocalExecutor::new(clock);

        let (tx, rx) = oneshot::<u32>();
        let results_ref = &results;
        ex.spawn(async move {
            let value = rx.await;
            results_ref.borrow_mut().push(value);
        });
        ex.spawn(async move {
            tx.send(7).unwrap();
        });

        let (tx2, rx2) = oneshot::<u32>();
        ex.spawn(async move {
            let value = rx2.await;
            results_ref.borrow_mut().push(value);
        });
        drop(tx2);

        assert_eq!(ex.run(), 0);
        drop(ex);
        // The dropped-sender receiver resolves on its first poll; the live
        // one re-polls only after the send wakes it.
        assert_eq!(results.into_inner(), vec![None, Some(7)]);
    }

    #[test]
    fn bounded_send_parks_until_the_consumer_drains() {
        let clock = VirtualClock::new();
        let log = RefCell::new(Vec::new());
        let mut ex = LocalExecutor::new(clock.clone());
        let (tx, mut rx) = channel::<u32>(2);
        {
            let log = &log;
            let clock2 = clock.clone();
            ex.spawn(async move {
                for i in 0..4u32 {
                    tx.send(i).await.unwrap();
                    log.borrow_mut().push(format!("sent {i}"));
                }
            });
            ex.spawn(async move {
                clock2.sleep_us(100).await;
                while let Some(v) = rx.recv().await {
                    log.borrow_mut().push(format!("got {v}"));
                }
            });
        }
        assert_eq!(ex.run(), 0);
        drop(ex);
        let log = log.into_inner();
        // The first two sends fill the queue without waiting; the third and
        // fourth park until the consumer starts draining at t=100.
        assert_eq!(&log[..2], &["sent 0".to_string(), "sent 1".to_string()]);
        assert!(log.contains(&"got 3".to_string()));
        assert_eq!(log.len(), 8);
    }

    #[test]
    fn receiver_none_after_all_senders_drop() {
        let clock = VirtualClock::new();
        let seen = RefCell::new(Vec::new());
        let mut ex = LocalExecutor::new(clock);
        let (tx, mut rx) = channel::<u32>(4);
        let tx2 = tx.clone();
        {
            let seen = &seen;
            ex.spawn(async move {
                tx.send(1).await.unwrap();
            });
            ex.spawn(async move {
                tx2.send(2).await.unwrap();
            });
            ex.spawn(async move {
                while let Some(v) = rx.recv().await {
                    seen.borrow_mut().push(v);
                }
                seen.borrow_mut().push(99);
            });
        }
        assert_eq!(ex.run(), 0);
        drop(ex);
        assert_eq!(seen.into_inner(), vec![1, 2, 99]);
    }

    #[test]
    fn sending_to_a_dropped_receiver_errors_with_the_value() {
        let clock = VirtualClock::new();
        let err = RefCell::new(None);
        let mut ex = LocalExecutor::new(clock);
        let (tx, rx) = channel::<u32>(1);
        drop(rx);
        {
            let err = &err;
            ex.spawn(async move {
                if let Err(SendError(v)) = tx.send(5).await {
                    *err.borrow_mut() = Some(v);
                }
            });
        }
        assert_eq!(ex.run(), 0);
        drop(ex);
        assert_eq!(err.into_inner(), Some(5));
    }

    #[test]
    fn try_recv_drains_without_blocking() {
        let clock = VirtualClock::new();
        let mut ex = LocalExecutor::new(clock);
        let (tx, mut rx) = channel::<u32>(4);
        ex.spawn(async move {
            tx.send(1).await.unwrap();
            tx.send(2).await.unwrap();
        });
        assert_eq!(ex.run(), 0);
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), None);
    }
}
