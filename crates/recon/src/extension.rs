//! Candidate transactions and their update extensions.
//!
//! A *candidate transaction* is a fully trusted, not-yet-decided transaction
//! presented to the reconciliation engine, together with its transaction
//! extension (Definition 3): the transitive closure of its undecided
//! antecedents, in publication (`Δ`) order, ending with the root transaction
//! itself. The *update extension* (Section 4.2) is the flattened update
//! footprint of that list — the net changes the reconciling peer would apply
//! if it accepted the transaction.

use orchestra_model::{
    flatten, ConflictKey, Priority, RelName, Schema, Transaction, TransactionId, Update,
};
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Finds the conflict-group keys on which two flattened update sets conflict,
/// comparing only updates that touch a common `(relation, key)` pair.
///
/// This is complete with respect to the paper's conflict definition: every
/// conflicting pair of updates (divergent inserts, delete versus write,
/// divergent replacements of the same source) necessarily touches a common
/// key, so indexing by key loses nothing while avoiding the quadratic
/// comparison of unrelated updates.
pub fn conflict_keys_between(
    left: &[Update],
    right: &[Update],
    schema: &Schema,
) -> Vec<ConflictKey> {
    use rustc_hash::FxHashMap;
    let mut right_by_key: FxHashMap<(&str, orchestra_model::KeyValue), Vec<&Update>> =
        FxHashMap::default();
    for u in right {
        if let Ok(rel) = schema.relation(&u.relation) {
            for key in u.touched_keys(rel) {
                right_by_key.entry((u.relation.as_str(), key)).or_default().push(u);
            }
        }
    }
    let mut keys = Vec::new();
    for u in left {
        let Ok(rel) = schema.relation(&u.relation) else { continue };
        for key in u.touched_keys(rel) {
            if let Some(others) = right_by_key.get(&(u.relation.as_str(), key)) {
                for other in others {
                    if let Some((kind, ckey)) = u.conflict_kind_with(other, schema) {
                        let ck = ConflictKey::new(kind, u.relation.clone(), ckey);
                        if !keys.contains(&ck) {
                            keys.push(ck);
                        }
                    }
                }
            }
        }
    }
    keys
}

/// A trusted, undecided transaction together with its transaction extension,
/// as handed to the reconciliation engine by the update store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateTransaction {
    /// The root transaction id (the transaction the peer is deciding on).
    pub id: TransactionId,
    /// The priority `pri_i(X)` the reconciling participant assigns to the
    /// root transaction.
    pub priority: Priority,
    /// The transaction extension: every member transaction (undecided
    /// antecedents first, root last), in publication order, with its updates.
    /// The update lists are shared (`Arc`) with the update store's log, so
    /// building and cloning candidates never copies an update.
    pub members: Vec<(TransactionId, Arc<Vec<Update>>)>,
}

impl CandidateTransaction {
    /// Builds a candidate from the root transaction and its already-resolved
    /// extension member transactions (antecedents in publication order; the
    /// root itself may be included or will be appended).
    pub fn new(root: &Transaction, priority: Priority, antecedents: Vec<Transaction>) -> Self {
        let mut members: Vec<(TransactionId, Arc<Vec<Update>>)> =
            antecedents.into_iter().map(|t| (t.id(), t.shared_updates())).collect();
        if members.last().map(|(id, _)| *id) != Some(root.id()) {
            members.push((root.id(), root.shared_updates()));
        }
        CandidateTransaction { id: root.id(), priority, members }
    }

    /// Builds a candidate directly from already-shared member update lists
    /// (antecedents in publication order, root last). This is the store-side
    /// constructor: the update lists are borrowed from the log by reference
    /// count, so no update is copied.
    pub fn from_members(
        id: TransactionId,
        priority: Priority,
        members: Vec<(TransactionId, Arc<Vec<Update>>)>,
    ) -> Self {
        CandidateTransaction { id, priority, members }
    }

    /// The ids of every member of the extension (antecedents plus root).
    pub fn member_ids(&self) -> FxHashSet<TransactionId> {
        self.members.iter().map(|(id, _)| *id).collect()
    }

    /// Drops extension members the participant has since accepted (the root
    /// itself is always kept). Definition 3 defines the extension over
    /// *undecided* antecedents, so a candidate deferred across
    /// reconciliations must shed members as they get accepted — their effects
    /// are part of the instance by then, and keeping them would distort
    /// conflict detection and subsumption. This also makes a deferred
    /// candidate reconstructible from the store alone (crash recovery builds
    /// it against the current accepted set and must get the same chain).
    pub fn prune_accepted_members(&mut self, accepted: &FxHashSet<TransactionId>) {
        if self.members.iter().any(|(id, _)| *id != self.id && accepted.contains(id)) {
            self.members.retain(|(id, _)| *id == self.id || !accepted.contains(id));
        }
    }

    /// An order-sensitive fingerprint of the extension's member list. Two
    /// candidates for the same root transaction share a fingerprint exactly
    /// when their antecedent chains are identical, which is what makes the
    /// flattened extension reusable across reconciliations.
    pub fn member_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = rustc_hash::FxHasher::default();
        for (id, _) in &self.members {
            id.hash(&mut hasher);
        }
        hasher.finish()
    }

    /// The update footprint `uf` of the extension: every member update, in
    /// publication order.
    pub fn update_footprint(&self) -> Vec<Update> {
        self.members.iter().flat_map(|(_, us)| us.iter().cloned()).collect()
    }

    /// The flattened update extension: the net effect of the whole extension
    /// with intermediate steps removed.
    pub fn flattened(&self, schema: &Schema) -> Vec<Update> {
        flatten(schema, &self.update_footprint())
    }

    /// The flattened update extension restricted to members *not* in
    /// `exclude` — used both for direct-conflict detection (excluding shared
    /// antecedents) and at application time (excluding already-used
    /// transactions).
    pub fn flattened_excluding(
        &self,
        schema: &Schema,
        exclude: &FxHashSet<TransactionId>,
    ) -> Vec<Update> {
        let updates: Vec<Update> = self
            .members
            .iter()
            .filter(|(id, _)| !exclude.contains(id))
            .flat_map(|(_, us)| us.iter().cloned())
            .collect();
        flatten(schema, &updates)
    }

    /// Returns true if this candidate subsumes `other`: its extension is a
    /// superset of the other's extension.
    pub fn subsumes(&self, other: &CandidateTransaction) -> bool {
        let mine = self.member_ids();
        other.members.iter().all(|(id, _)| mine.contains(id))
    }

    /// Definition 4 (*direct conflict*): the two extensions conflict on
    /// updates that do not come from shared member transactions.
    pub fn directly_conflicts_with(&self, other: &CandidateTransaction, schema: &Schema) -> bool {
        !self.direct_conflict_keys(other, schema).is_empty()
    }

    /// The conflict-group keys on which the two candidates directly conflict
    /// (empty if they do not conflict). Shared member transactions are
    /// excluded from both sides before comparison, as required by
    /// Definition 4.
    pub fn direct_conflict_keys(
        &self,
        other: &CandidateTransaction,
        schema: &Schema,
    ) -> Vec<ConflictKey> {
        let mine = self.member_ids();
        let theirs = other.member_ids();
        let shared: FxHashSet<TransactionId> = mine.intersection(&theirs).copied().collect();
        let ours = self.flattened_excluding(schema, &shared);
        let others = other.flattened_excluding(schema, &shared);
        conflict_keys_between(&ours, &others, schema)
    }

    /// All `(relation, key)` pairs read or written by the flattened
    /// extension. Used for dirty-value checks.
    pub fn touched_keys(&self, schema: &Schema) -> Vec<(RelName, orchestra_model::KeyValue)> {
        let mut out = Vec::new();
        let mut seen = FxHashSet::default();
        for u in self.flattened(schema) {
            if let Ok(rel) = schema.relation(&u.relation) {
                for key in u.touched_keys(rel) {
                    let entry = (u.relation.clone(), key);
                    if seen.insert(entry.clone()) {
                        out.push(entry);
                    }
                }
            }
        }
        out
    }
}

/// Memoised flattened update extensions.
///
/// Flattening an extension is the dominant local cost of reconciliation, and
/// a deferred candidate is re-presented — with an unchanged antecedent chain —
/// at every subsequent reconciliation until its conflict resolves. The cache
/// keys each flattening by `(root id, member fingerprint)`, so an unchanged
/// chain is flattened exactly once and re-used for free, while a chain that
/// gained or lost members (for example because an antecedent was accepted in
/// the meantime) misses and is recomputed.
///
/// Entries are shared ([`Arc`]), so a cache hit costs one reference-count
/// bump. The owner is responsible for pruning entries for transactions that
/// can no longer reappear (see [`ExtensionCache::retain`]).
#[derive(Debug, Clone, Default)]
pub struct ExtensionCache {
    entries: std::cell::RefCell<CacheMap>,
    hits: std::cell::Cell<u64>,
    misses: std::cell::Cell<u64>,
}

/// Cached flattenings keyed by `(root id, member fingerprint)`.
type CacheMap = rustc_hash::FxHashMap<(TransactionId, u64), Arc<Vec<Update>>>;

impl ExtensionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ExtensionCache::default()
    }

    /// The flattened update extension of a candidate, computed at most once
    /// per distinct antecedent chain.
    pub fn flattened(&self, cand: &CandidateTransaction, schema: &Schema) -> Arc<Vec<Update>> {
        let key = (cand.id, cand.member_fingerprint());
        if let Some(hit) = self.entries.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return Arc::clone(hit);
        }
        self.misses.set(self.misses.get() + 1);
        let flat = Arc::new(cand.flattened(schema));
        self.entries.borrow_mut().insert(key, Arc::clone(&flat));
        flat
    }

    /// Drops every entry whose root transaction fails the predicate. Called
    /// after a reconciliation with "is still deferred": accepted and rejected
    /// transactions are durably decided at the store and never reappear as
    /// candidates, so their flattenings are dead weight.
    pub fn retain(&self, keep: impl Fn(TransactionId) -> bool) {
        self.entries.borrow_mut().retain(|(id, _), _| keep(*id));
    }

    /// Number of cached flattenings.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// Returns true if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{ParticipantId, Tuple};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn txn(i: u32, j: u64, updates: Vec<Update>) -> Transaction {
        Transaction::from_parts(p(i), j, updates).unwrap()
    }

    #[test]
    fn candidate_flattens_its_extension() {
        let schema = bioinformatics_schema();
        // X3:0 inserts, X3:1 revises (the paper's epoch-1 example): the
        // flattened extension of X3:1 is a single insert of the final value.
        let x0 =
            txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "cell-metab"), p(3))]);
        let x1 = txn(
            3,
            1,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "cell-metab"),
                func("rat", "prot1", "immune"),
                p(3),
            )],
        );
        let cand = CandidateTransaction::new(&x1, Priority(1), vec![x0.clone()]);
        assert_eq!(cand.members.len(), 2);
        assert_eq!(cand.member_ids().len(), 2);
        assert_eq!(cand.update_footprint().len(), 2);
        let flat = cand.flattened(&schema);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].written_tuple().unwrap(), &func("rat", "prot1", "immune"));
    }

    #[test]
    fn root_is_not_duplicated_if_supplied_in_antecedents() {
        let x0 = txn(1, 0, vec![Update::insert("Function", func("a", "b", "c"), p(1))]);
        let cand = CandidateTransaction::new(&x0, Priority(1), vec![x0.clone()]);
        assert_eq!(cand.members.len(), 1);
    }

    #[test]
    fn subsumption() {
        let x0 = txn(1, 0, vec![Update::insert("Function", func("a", "p", "v1"), p(1))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify("Function", func("a", "p", "v1"), func("a", "p", "v2"), p(2))],
        );
        let small = CandidateTransaction::new(&x0, Priority(1), vec![]);
        let big = CandidateTransaction::new(&x1, Priority(1), vec![x0.clone()]);
        assert!(big.subsumes(&small));
        assert!(!small.subsumes(&big));
        assert!(big.subsumes(&big.clone()));
    }

    #[test]
    fn direct_conflict_ignores_shared_members() {
        let schema = bioinformatics_schema();
        // Shared antecedent x0 inserts a tuple; two candidates each modify it
        // to a different value. They directly conflict on the divergent
        // modifications, but the shared insert itself is not a conflict.
        let x0 = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "base"), p(1))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "base"),
                func("rat", "prot1", "immune"),
                p(2),
            )],
        );
        let x2 = txn(
            3,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "base"),
                func("rat", "prot1", "cell-resp"),
                p(3),
            )],
        );
        let c1 = CandidateTransaction::new(&x1, Priority(1), vec![x0.clone()]);
        let c2 = CandidateTransaction::new(&x2, Priority(1), vec![x0.clone()]);
        assert!(c1.directly_conflicts_with(&c2, &schema));
        let keys = c1.direct_conflict_keys(&c2, &schema);
        assert_eq!(keys.len(), 1);

        // Without excluding the shared member, the flattened extensions are
        // both inserts of divergent values; with the exclusion they are
        // modifies, which is the conflict the paper wants to report.
        let kinds: Vec<_> = keys.iter().map(|k| k.kind).collect();
        assert_eq!(kinds, vec![orchestra_model::ConflictKind::DivergentModify]);
    }

    #[test]
    fn no_conflict_between_identical_extensions() {
        let schema = bioinformatics_schema();
        let x0 = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "v"), p(1))]);
        let c1 = CandidateTransaction::new(&x0, Priority(1), vec![]);
        let c2 = CandidateTransaction::new(&x0, Priority(2), vec![]);
        // A candidate shares all members with a copy of itself, so there is
        // nothing left to conflict on.
        assert!(!c1.directly_conflicts_with(&c2, &schema));
    }

    #[test]
    fn divergent_inserts_directly_conflict() {
        let schema = bioinformatics_schema();
        let x1 =
            txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "cell-resp"), p(2))]);
        let x2 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "immune"), p(3))]);
        let c1 = CandidateTransaction::new(&x1, Priority(1), vec![]);
        let c2 = CandidateTransaction::new(&x2, Priority(1), vec![]);
        assert!(c1.directly_conflicts_with(&c2, &schema));
        assert!(c2.directly_conflicts_with(&c1, &schema));
    }

    #[test]
    fn touched_keys_cover_flattened_extension() {
        let schema = bioinformatics_schema();
        let x0 = txn(
            3,
            0,
            vec![
                Update::insert("Function", func("mouse", "prot2", "cell-resp"), p(3)),
                Update::modify(
                    "Function",
                    func("mouse", "prot2", "cell-resp"),
                    func("mouse", "prot3", "cell-resp"),
                    p(3),
                ),
            ],
        );
        let cand = CandidateTransaction::new(&x0, Priority(1), vec![]);
        let keys = cand.touched_keys(&schema);
        // Flattened to a single insert of (mouse, prot3, ...): only that key.
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].1, orchestra_model::KeyValue::of_text(&["mouse", "prot3"]));
    }
}
