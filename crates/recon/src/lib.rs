//! Reconciliation semantics and algorithms for the Orchestra CDSS.
//!
//! This crate implements Sections 4 and 5 of the paper:
//!
//! * [`append_only`] — the append-only reconciliation problem (Definition 2),
//!   where every transaction can be considered independently.
//! * [`extension`] — candidate transactions carrying their transaction
//!   extension (Definition 3), flattened update extension, subsumption and
//!   the *direct conflict* relation (Definition 4).
//! * [`softstate`] — the client's soft state: dirty values, deferred
//!   transactions, conflict groups and options.
//! * [`engine`] — the client-centric `ReconcileUpdates` algorithm of
//!   Figures 4 and 5, including `CheckState`, `FindConflicts`, `DoGroup` and
//!   `UpdateSoftState`.
//! * [`resolution`] — user-driven conflict resolution: picking an option of a
//!   conflict group rejects the others and re-runs reconciliation over the
//!   remaining deferred transactions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod append_only;
pub mod engine;
pub mod extension;
pub mod resolution;
pub mod softstate;

pub use append_only::append_only_reconcile;
pub use engine::{ReconcileEngine, ReconcileInput, ReconcileOutcome, TransactionDecision};
pub use extension::{CandidateTransaction, ExtensionCache};
pub use resolution::{ResolutionChoice, ResolutionOutcome};
pub use softstate::{ConflictGroup, ConflictOption, SoftState};
