//! Append-only reconciliation (Definition 2).
//!
//! In the append-only model every transaction contains only insertions, so
//! each transaction can be considered independently: an insertion is applied
//! so long as it does not conflict with a previously applied insertion, nor
//! with a transaction of equal or higher priority published in the same
//! epoch.

use orchestra_model::{Epoch, Priority, Schema, Transaction, TransactionId, Update};
use orchestra_storage::Database;
use rustc_hash::FxHashMap;

/// The outcome of append-only reconciliation over a range of epochs.
#[derive(Debug, Clone, Default)]
pub struct AppendOnlyOutcome {
    /// Transactions applied to the instance.
    pub accepted: Vec<TransactionId>,
    /// Transactions skipped because they conflicted with a previously applied
    /// transaction or with an equal-or-higher-priority transaction of the
    /// same epoch.
    pub rejected: Vec<TransactionId>,
}

/// Solves the append-only reconciliation problem for one participant.
///
/// `published` is the sequence of `(epoch, transaction, priority)` triples the
/// participant has not yet seen, in publication order; `priority` is
/// `pri_i(X)` for the reconciling participant (untrusted transactions may
/// simply be omitted or given [`Priority::UNTRUSTED`]). The instance is
/// updated in place.
pub fn append_only_reconcile(
    schema: &Schema,
    instance: &mut Database,
    published: &[(Epoch, Transaction, Priority)],
) -> AppendOnlyOutcome {
    let mut outcome = AppendOnlyOutcome::default();

    // Group by epoch, preserving order.
    let mut epochs: Vec<Epoch> = Vec::new();
    let mut by_epoch: FxHashMap<Epoch, Vec<&(Epoch, Transaction, Priority)>> = FxHashMap::default();
    for entry in published {
        if !by_epoch.contains_key(&entry.0) {
            epochs.push(entry.0);
        }
        by_epoch.entry(entry.0).or_default().push(entry);
    }
    epochs.sort();

    for epoch in epochs {
        let group = &by_epoch[&epoch];
        for (_, txn, prio) in group.iter() {
            if prio.is_untrusted() {
                outcome.rejected.push(txn.id());
                continue;
            }
            // Condition 1: no conflicting transaction of equal or higher
            // priority in the same epoch.
            let conflicting_peer = group.iter().any(|(_, other, other_prio)| {
                other.id() != txn.id() && *other_prio >= *prio && txn.conflicts_with(other, schema)
            });
            if conflicting_peer {
                outcome.rejected.push(txn.id());
                continue;
            }
            // Condition 2: no conflict with previously applied state (which
            // embodies every earlier accepted insertion).
            let compatible = txn.updates().iter().all(|u: &Update| {
                instance.is_compatible(u) && instance.check_constraints(u).is_ok()
            });
            if !compatible {
                outcome.rejected.push(txn.id());
                continue;
            }
            match instance.apply_all(txn.updates()) {
                Ok(()) => outcome.accepted.push(txn.id()),
                Err(_) => outcome.rejected.push(txn.id()),
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{ParticipantId, Tuple};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn ins_txn(i: u32, j: u64, org: &str, prot: &str, f: &str) -> Transaction {
        Transaction::from_parts(p(i), j, vec![Update::insert("Function", func(org, prot, f), p(i))])
            .unwrap()
    }

    #[test]
    fn non_conflicting_insertions_are_applied() {
        let schema = bioinformatics_schema();
        let mut db = Database::new(schema.clone());
        let published = vec![
            (Epoch(1), ins_txn(1, 0, "rat", "prot1", "a"), Priority(1)),
            (Epoch(2), ins_txn(2, 0, "mouse", "prot2", "b"), Priority(1)),
        ];
        let out = append_only_reconcile(&schema, &mut db, &published);
        assert_eq!(out.accepted.len(), 2);
        assert!(out.rejected.is_empty());
        assert_eq!(db.total_tuples(), 2);
    }

    #[test]
    fn same_epoch_equal_priority_conflicts_reject_both() {
        let schema = bioinformatics_schema();
        let mut db = Database::new(schema.clone());
        let published = vec![
            (Epoch(1), ins_txn(1, 0, "rat", "prot1", "a"), Priority(1)),
            (Epoch(1), ins_txn(2, 0, "rat", "prot1", "b"), Priority(1)),
        ];
        let out = append_only_reconcile(&schema, &mut db, &published);
        assert!(out.accepted.is_empty());
        assert_eq!(out.rejected.len(), 2);
        assert!(db.is_empty());
    }

    #[test]
    fn same_epoch_higher_priority_wins() {
        let schema = bioinformatics_schema();
        let mut db = Database::new(schema.clone());
        let published = vec![
            (Epoch(1), ins_txn(1, 0, "rat", "prot1", "a"), Priority(2)),
            (Epoch(1), ins_txn(2, 0, "rat", "prot1", "b"), Priority(1)),
        ];
        let out = append_only_reconcile(&schema, &mut db, &published);
        assert_eq!(out.accepted, vec![ins_txn(1, 0, "rat", "prot1", "a").id()]);
        assert_eq!(out.rejected.len(), 1);
        assert!(db.contains_tuple_exact("Function", &func("rat", "prot1", "a")));
    }

    #[test]
    fn later_epoch_conflicts_with_applied_state_are_rejected() {
        let schema = bioinformatics_schema();
        let mut db = Database::new(schema.clone());
        let published = vec![
            (Epoch(1), ins_txn(1, 0, "rat", "prot1", "a"), Priority(1)),
            // Later epoch, even at higher priority, cannot displace applied
            // state (monotonicity).
            (Epoch(2), ins_txn(2, 0, "rat", "prot1", "b"), Priority(9)),
        ];
        let out = append_only_reconcile(&schema, &mut db, &published);
        assert_eq!(out.accepted.len(), 1);
        assert_eq!(out.rejected.len(), 1);
        assert!(db.contains_tuple_exact("Function", &func("rat", "prot1", "a")));
    }

    #[test]
    fn untrusted_transactions_are_rejected() {
        let schema = bioinformatics_schema();
        let mut db = Database::new(schema.clone());
        let published = vec![(Epoch(1), ins_txn(1, 0, "rat", "prot1", "a"), Priority::UNTRUSTED)];
        let out = append_only_reconcile(&schema, &mut db, &published);
        assert!(out.accepted.is_empty());
        assert_eq!(out.rejected.len(), 1);
    }

    #[test]
    fn identical_insertions_do_not_conflict() {
        let schema = bioinformatics_schema();
        let mut db = Database::new(schema.clone());
        let published = vec![
            (Epoch(1), ins_txn(1, 0, "rat", "prot1", "a"), Priority(1)),
            (Epoch(1), ins_txn(2, 0, "rat", "prot1", "a"), Priority(1)),
        ];
        let out = append_only_reconcile(&schema, &mut db, &published);
        assert_eq!(out.accepted.len(), 2);
        assert_eq!(db.total_tuples(), 1);
    }
}
