//! Client-side soft state: dirty values, deferred transactions, conflict
//! groups and options.
//!
//! The paper keeps this state soft (reconstructible from the update store):
//! deferred transactions are those whose conflicts have no unique winner, the
//! *dirty value* set contains every key value such a transaction reads or
//! writes (so that later transactions touching those keys also defer, keeping
//! the deferred transactions applicable), and conflict groups/options are the
//! unit of user-driven conflict resolution.

use crate::extension::{CandidateTransaction, ExtensionCache};
use orchestra_model::{ConflictKey, KeyValue, ReconciliationId, RelName, Schema, TransactionId};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// A group of transactions within a conflict group that make the same
/// modification to the conflicting key value. At most one option per conflict
/// group can be accepted when the user resolves the conflict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictOption {
    /// The transactions proposing this modification.
    pub transactions: Vec<TransactionId>,
    /// A rendering of the proposed net change, for display to the resolving
    /// user.
    pub description: String,
}

/// All options recorded for one conflict-group key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictGroup {
    /// The `(type, relation, key)` identity of the group.
    pub key: ConflictKey,
    /// The mutually exclusive options.
    pub options: Vec<ConflictOption>,
}

impl ConflictGroup {
    /// Every transaction involved in the group, across all options.
    pub fn transactions(&self) -> Vec<TransactionId> {
        let mut out = Vec::new();
        for opt in &self.options {
            for t in &opt.transactions {
                if !out.contains(t) {
                    out.push(*t);
                }
            }
        }
        out
    }
}

/// The reconciling participant's soft state between reconciliations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SoftState {
    /// Key values made dirty by deferred transactions, per relation. Keyed
    /// by relation first so lookups borrow a `&str` and never intern or
    /// clone on the engine's per-update hot path.
    dirty: FxHashMap<RelName, FxHashSet<KeyValue>>,
    /// Deferred candidates, retained so they can be reconsidered when the
    /// user resolves conflicts.
    deferred: FxHashMap<TransactionId, CandidateTransaction>,
    /// Conflict groups recorded by the most recent reconciliation.
    conflict_groups: Vec<ConflictGroup>,
    /// The reconciliation that last rebuilt this soft state.
    last_recno: ReconciliationId,
}

impl SoftState {
    /// Creates empty soft state.
    pub fn new() -> Self {
        SoftState::default()
    }

    /// Returns true if `(relation, key)` is dirty (touched by a deferred
    /// transaction).
    pub fn is_dirty(&self, relation: &str, key: &KeyValue) -> bool {
        self.dirty.get(relation).map(|keys| keys.contains(key)).unwrap_or(false)
    }

    /// Returns true if any of the given `(relation, key)` pairs is dirty.
    pub fn any_dirty(&self, keys: &[(RelName, KeyValue)]) -> bool {
        keys.iter().any(|(r, k)| self.is_dirty(r, k))
    }

    /// The number of dirty key values.
    pub fn dirty_len(&self) -> usize {
        self.dirty.values().map(FxHashSet::len).sum()
    }

    /// The deferred candidates, keyed by root transaction id.
    pub fn deferred(&self) -> &FxHashMap<TransactionId, CandidateTransaction> {
        &self.deferred
    }

    /// Returns true if the transaction is currently deferred.
    pub fn is_deferred(&self, id: TransactionId) -> bool {
        self.deferred.contains_key(&id)
    }

    /// The conflict groups recorded by the most recent reconciliation.
    pub fn conflict_groups(&self) -> &[ConflictGroup] {
        &self.conflict_groups
    }

    /// The reconciliation that last rebuilt the soft state.
    pub fn last_recno(&self) -> ReconciliationId {
        self.last_recno
    }

    /// Removes a transaction from the deferred set (because the user rejected
    /// it, or it was accepted after conflict resolution). Dirty values and
    /// conflict groups are rebuilt on the next [`SoftState::rebuild`].
    pub fn remove_deferred(&mut self, id: TransactionId) -> Option<CandidateTransaction> {
        self.deferred.remove(&id)
    }

    /// Implements the paper's `UpdateSoftState` (Figure 5): clears the soft
    /// state of the previous reconciliation and rebuilds it from the set of
    /// transactions deferred at `recno`.
    ///
    /// For every deferred candidate the dirty-value set receives every key its
    /// flattened extension touches; pairwise direct conflicts between deferred
    /// candidates are grouped by conflict key, and within each group the
    /// candidates proposing an identical net change are combined into a single
    /// option.
    pub fn rebuild(
        &mut self,
        recno: ReconciliationId,
        deferred: Vec<CandidateTransaction>,
        schema: &Schema,
        cache: &ExtensionCache,
    ) {
        self.dirty.clear();
        self.conflict_groups.clear();
        self.deferred.clear();
        self.last_recno = recno;

        // Flatten each deferred candidate once and index the keys it touches,
        // so only candidates sharing a key are compared (the same hash-based
        // conflict detection the paper assumes).
        let flattened: Vec<std::sync::Arc<Vec<orchestra_model::Update>>> =
            deferred.iter().map(|c| cache.flattened(c, schema)).collect();
        let mut by_key: FxHashMap<(RelName, KeyValue), Vec<usize>> = FxHashMap::default();
        for (i, (cand, flat)) in deferred.iter().zip(&flattened).enumerate() {
            let _ = cand;
            let mut seen: FxHashSet<(RelName, KeyValue)> = FxHashSet::default();
            for u in flat.iter() {
                if let Ok(rel) = schema.relation(&u.relation) {
                    for key in u.touched_keys(rel) {
                        let entry = (u.relation.clone(), key);
                        if seen.insert(entry.clone()) {
                            self.dirty.entry(entry.0.clone()).or_default().insert(entry.1.clone());
                            by_key.entry(entry).or_default().push(i);
                        }
                    }
                }
            }
        }

        // Group pairwise conflicts by conflict key, comparing only candidates
        // that touch a common key.
        let member_sets: Vec<FxHashSet<TransactionId>> =
            deferred.iter().map(|c| c.member_ids()).collect();
        let mut groups: FxHashMap<ConflictKey, FxHashSet<TransactionId>> = FxHashMap::default();
        let mut checked: FxHashSet<(usize, usize)> = FxHashSet::default();
        for indices in by_key.values() {
            for a_pos in 0..indices.len() {
                for b_pos in (a_pos + 1)..indices.len() {
                    let (i, j) =
                        (indices[a_pos].min(indices[b_pos]), indices[a_pos].max(indices[b_pos]));
                    if i == j || !checked.insert((i, j)) {
                        continue;
                    }
                    let a = &deferred[i];
                    let b = &deferred[j];
                    let a_subsumes = member_sets[j].iter().all(|id| member_sets[i].contains(id));
                    let b_subsumes = member_sets[i].iter().all(|id| member_sets[j].contains(id));
                    if a_subsumes || b_subsumes {
                        continue;
                    }
                    let shares_members =
                        member_sets[i].iter().any(|id| member_sets[j].contains(id));
                    let keys = if shares_members {
                        a.direct_conflict_keys(b, schema)
                    } else {
                        crate::extension::conflict_keys_between(
                            &flattened[i],
                            &flattened[j],
                            schema,
                        )
                    };
                    for key in keys {
                        let entry = groups.entry(key).or_default();
                        entry.insert(a.id);
                        entry.insert(b.id);
                    }
                }
            }
        }

        // Within each group, combine compatible transactions into the same
        // option: a transaction subsumed by another (it is an antecedent of
        // the other's extension) rides along with its subsumer, and
        // transactions proposing the same net change merge, so each option
        // represents one distinct final value the user can pick.
        let by_id: FxHashMap<TransactionId, &CandidateTransaction> =
            deferred.iter().map(|c| (c.id, c)).collect();
        let mut group_keys: Vec<ConflictKey> = groups.keys().cloned().collect();
        group_keys.sort();
        for key in group_keys {
            let members = &groups[&key];
            let mut member_ids: Vec<TransactionId> = members.iter().copied().collect();
            member_ids.sort();

            // Cluster members along subsumption chains. The representative of
            // a cluster is its maximal member (the one whose extension
            // contains the others).
            let mut clusters: Vec<(TransactionId, Vec<TransactionId>)> = Vec::new();
            for id in member_ids {
                let cand = by_id[&id];
                let mut placed = false;
                for (rep, cluster_members) in &mut clusters {
                    let rep_cand = by_id[rep];
                    if rep_cand.subsumes(cand) {
                        cluster_members.push(id);
                        placed = true;
                        break;
                    }
                    if cand.subsumes(rep_cand) {
                        cluster_members.push(id);
                        *rep = id;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    clusters.push((id, vec![id]));
                }
            }

            // Merge clusters whose representatives propose the same net
            // change (two participants independently publishing the same
            // value fall into one option).
            let mut options: Vec<(Vec<String>, ConflictOption)> = Vec::new();
            for (rep, cluster_members) in clusters {
                let rep_cand = by_id[&rep];
                let mut change: Vec<String> = cache
                    .flattened(rep_cand, schema)
                    .iter()
                    .map(|u| {
                        format!(
                            "{} {} {:?} -> {:?}",
                            u.relation,
                            u.kind(),
                            u.read_tuple(),
                            u.written_tuple()
                        )
                    })
                    .collect();
                change.sort();
                match options.iter_mut().find(|(c, _)| *c == change) {
                    Some((_, opt)) => opt.transactions.extend(cluster_members),
                    None => {
                        let description = change.join("; ");
                        options.push((
                            change,
                            ConflictOption { transactions: cluster_members, description },
                        ));
                    }
                }
            }
            self.conflict_groups.push(ConflictGroup {
                key,
                options: options.into_iter().map(|(_, o)| o).collect(),
            });
        }

        for cand in deferred {
            self.deferred.insert(cand.id, cand);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{ParticipantId, Priority, Transaction, Tuple, Update};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn cand(i: u32, j: u64, updates: Vec<Update>) -> CandidateTransaction {
        let txn = Transaction::from_parts(p(i), j, updates).unwrap();
        CandidateTransaction::new(&txn, Priority(1), vec![])
    }

    #[test]
    fn fresh_soft_state_is_clean() {
        let s = SoftState::new();
        assert_eq!(s.dirty_len(), 0);
        assert!(s.deferred().is_empty());
        assert!(s.conflict_groups().is_empty());
        assert!(!s.is_dirty("Function", &KeyValue::of_text(&["rat", "prot1"])));
    }

    #[test]
    fn rebuild_marks_dirty_values_and_groups_conflicts() {
        let schema = bioinformatics_schema();
        let mut s = SoftState::new();
        let c1 =
            cand(2, 0, vec![Update::insert("Function", func("rat", "prot1", "cell-resp"), p(2))]);
        let c2 = cand(3, 0, vec![Update::insert("Function", func("rat", "prot1", "immune"), p(3))]);
        s.rebuild(
            ReconciliationId(1),
            vec![c1.clone(), c2.clone()],
            &schema,
            &ExtensionCache::default(),
        );

        assert_eq!(s.last_recno(), ReconciliationId(1));
        assert!(s.is_dirty("Function", &KeyValue::of_text(&["rat", "prot1"])));
        assert!(!s.is_dirty("Function", &KeyValue::of_text(&["mouse", "prot2"])));
        assert!(s.is_deferred(c1.id));
        assert!(s.is_deferred(c2.id));

        assert_eq!(s.conflict_groups().len(), 1);
        let group = &s.conflict_groups()[0];
        assert_eq!(group.options.len(), 2);
        assert_eq!(group.transactions().len(), 2);
    }

    #[test]
    fn identical_changes_merge_into_one_option() {
        let schema = bioinformatics_schema();
        let mut s = SoftState::new();
        // Two different participants propose the same value; a third proposes
        // a divergent one. The group should have two options, one of which
        // carries two transactions.
        let same_a =
            cand(2, 0, vec![Update::insert("Function", func("rat", "prot1", "immune"), p(2))]);
        let same_b =
            cand(3, 0, vec![Update::insert("Function", func("rat", "prot1", "immune"), p(3))]);
        let diff =
            cand(4, 0, vec![Update::insert("Function", func("rat", "prot1", "cell-resp"), p(4))]);
        s.rebuild(
            ReconciliationId(2),
            vec![same_a, same_b, diff],
            &schema,
            &ExtensionCache::default(),
        );

        assert_eq!(s.conflict_groups().len(), 1);
        let group = &s.conflict_groups()[0];
        assert_eq!(group.options.len(), 2);
        let sizes: Vec<usize> = group.options.iter().map(|o| o.transactions.len()).collect();
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&1));
    }

    #[test]
    fn rebuild_clears_previous_state() {
        let schema = bioinformatics_schema();
        let mut s = SoftState::new();
        let c1 = cand(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        let c2 = cand(3, 0, vec![Update::insert("Function", func("rat", "prot1", "b"), p(3))]);
        s.rebuild(ReconciliationId(1), vec![c1, c2], &schema, &ExtensionCache::default());
        assert_eq!(s.dirty_len(), 1);

        s.rebuild(ReconciliationId(2), vec![], &schema, &ExtensionCache::default());
        assert_eq!(s.dirty_len(), 0);
        assert!(s.deferred().is_empty());
        assert!(s.conflict_groups().is_empty());
        assert_eq!(s.last_recno(), ReconciliationId(2));
    }

    #[test]
    fn remove_deferred_returns_the_candidate() {
        let schema = bioinformatics_schema();
        let mut s = SoftState::new();
        let c1 = cand(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        let id = c1.id;
        s.rebuild(ReconciliationId(1), vec![c1], &schema, &ExtensionCache::default());
        let removed = s.remove_deferred(id).unwrap();
        assert_eq!(removed.id, id);
        assert!(s.remove_deferred(id).is_none());
    }

    #[test]
    fn non_conflicting_deferred_candidates_produce_no_groups() {
        let schema = bioinformatics_schema();
        let mut s = SoftState::new();
        let c1 = cand(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        let c2 = cand(3, 0, vec![Update::insert("Function", func("mouse", "prot2", "b"), p(3))]);
        s.rebuild(ReconciliationId(1), vec![c1, c2], &schema, &ExtensionCache::default());
        assert!(s.conflict_groups().is_empty());
        assert_eq!(s.dirty_len(), 2);
    }
}
