//! The client-centric `ReconcileUpdates` algorithm (Figures 4 and 5).
//!
//! The engine takes the candidate transactions retrieved from the update
//! store (fully trusted, not yet decided, each with its transaction extension
//! and priority), the reconciling participant's instance and soft state, and
//! the participant's own freshly published updates (the "delta for recno").
//! It decides every candidate (accept / reject / defer), applies the accepted
//! ones, and rebuilds the soft state (dirty values and conflict groups) from
//! the deferred ones.

use crate::extension::{CandidateTransaction, ExtensionCache};
use crate::softstate::{ConflictGroup, SoftState};
use orchestra_model::{
    flatten, Priority, ReconciliationId, Schema, TransactionId, Update, UpdateOp,
};
use orchestra_storage::Database;
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The decision made about one candidate transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransactionDecision {
    /// Accept and apply the transaction (and its extension).
    Accept,
    /// Reject the transaction; future transactions depending on it will also
    /// be rejected.
    Reject,
    /// Defer the transaction until the user resolves its conflict.
    Defer,
}

/// Input to one reconciliation run.
#[derive(Debug, Clone, Default)]
pub struct ReconcileInput {
    /// The reconciliation number.
    pub recno: ReconciliationId,
    /// The newly relevant, fully trusted, undecided transactions, in
    /// publication order, each with its transaction extension and priority.
    pub candidates: Vec<CandidateTransaction>,
    /// The participant's own updates published together with this
    /// reconciliation (the delta for `recno`). Trusted transactions that
    /// conflict with these are rejected — the participant always prefers its
    /// own version.
    pub own_updates: Vec<Update>,
    /// Transactions this participant has rejected in previous
    /// reconciliations; any candidate whose extension contains one of these
    /// is rejected too. Shared (`Arc`) so the caller's incrementally
    /// maintained record is lent to the engine instead of being copied per
    /// reconciliation.
    pub previously_rejected: Arc<FxHashSet<TransactionId>>,
    /// Transactions this participant has accepted so far (the store's shared
    /// snapshot). Extensions are defined over *undecided* antecedents
    /// (Definition 3), so the engine prunes accepted members from every
    /// candidate — in particular from deferred candidates carried across
    /// reconciliations, whose chains would otherwise go stale as their
    /// antecedents get accepted.
    pub previously_accepted: Arc<FxHashSet<TransactionId>>,
    /// Pairwise direct conflicts already computed elsewhere (the
    /// network-centric mode of Section 5, where conflict detection is
    /// distributed across the peers owning the conflicting keys). When
    /// present, the engine skips its own `FindConflicts` step and uses these;
    /// when absent, conflicts are detected locally (client-centric mode).
    pub precomputed_conflicts: Option<FxHashMap<TransactionId, FxHashSet<TransactionId>>>,
}

/// The result of one reconciliation run.
#[derive(Debug, Clone, Default)]
pub struct ReconcileOutcome {
    /// The reconciliation number.
    pub recno: ReconciliationId,
    /// Root transactions that were accepted.
    pub accepted_roots: Vec<TransactionId>,
    /// Every transaction (roots and extension members) applied by this
    /// reconciliation — the set the update store records as accepted.
    pub accepted_members: Vec<TransactionId>,
    /// Root transactions that were rejected.
    pub rejected: Vec<TransactionId>,
    /// Root transactions that were deferred.
    pub deferred: Vec<TransactionId>,
    /// The net updates applied to the local instance.
    pub applied_updates: Vec<Update>,
    /// The conflict groups recorded for the deferred transactions.
    pub conflict_groups: Vec<ConflictGroup>,
}

impl ReconcileOutcome {
    /// The decision recorded for a root transaction, if it was part of this
    /// run.
    pub fn decision_of(&self, id: TransactionId) -> Option<TransactionDecision> {
        if self.accepted_roots.contains(&id) {
            Some(TransactionDecision::Accept)
        } else if self.rejected.contains(&id) {
            Some(TransactionDecision::Reject)
        } else if self.deferred.contains(&id) {
            Some(TransactionDecision::Defer)
        } else {
            None
        }
    }
}

/// The client-centric reconciliation engine.
#[derive(Debug, Clone)]
pub struct ReconcileEngine {
    schema: Schema,
    /// Memoised flattened extensions: a deferred candidate whose antecedent
    /// chain has not changed is never re-flattened across reconciliations.
    cache: ExtensionCache,
}

impl ReconcileEngine {
    /// Creates an engine for the given schema.
    pub fn new(schema: Schema) -> Self {
        ReconcileEngine { schema, cache: ExtensionCache::new() }
    }

    /// The schema the engine reconciles over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The engine's flattened-extension cache (for inspection in tests and
    /// benchmarks).
    pub fn extension_cache(&self) -> &ExtensionCache {
        &self.cache
    }

    /// Runs `ReconcileUpdates` (Figure 4): decides every candidate, applies
    /// the accepted ones to `instance`, and rebuilds `soft` from the deferred
    /// ones (previously deferred transactions remain deferred and keep their
    /// dirty marks).
    pub fn reconcile(
        &self,
        input: ReconcileInput,
        instance: &mut Database,
        soft: &mut SoftState,
    ) -> ReconcileOutcome {
        let schema = &self.schema;
        let mut candidates = input.candidates;
        // Keep every extension on Definition 3: drop members the participant
        // has already accepted. Store-built candidates arrive pruned (the
        // store excludes the accepted set when it builds extensions), so this
        // only bites candidates re-presented by conflict resolution.
        if !input.previously_accepted.is_empty() {
            for cand in &mut candidates {
                cand.prune_accepted_members(&input.previously_accepted);
            }
        }
        let candidates = candidates;
        let own_flat = flatten(schema, &input.own_updates);

        // Lines 5-8: per-candidate flattened extensions and CheckState. The
        // flattenings come from the cache: a candidate deferred by an earlier
        // reconciliation arrives with an unchanged antecedent chain and is
        // not re-flattened.
        let mut decisions: FxHashMap<TransactionId, TransactionDecision> = FxHashMap::default();
        let mut flattened: FxHashMap<TransactionId, Arc<Vec<Update>>> = FxHashMap::default();
        for cand in &candidates {
            let flat = self.cache.flattened(cand, schema);
            let decision = self.check_state(
                cand,
                &flat,
                instance,
                soft,
                &own_flat,
                &input.previously_rejected,
            );
            decisions.insert(cand.id, decision);
            flattened.insert(cand.id, flat);
        }

        // Line 9: FindConflicts — pairwise direct conflicts between
        // candidates, skipping pairs where one subsumes the other. In
        // network-centric mode the conflicts arrive precomputed from the
        // store and the local step is skipped.
        let conflicts = match input.precomputed_conflicts {
            Some(conflicts) => conflicts,
            None => Self::find_conflicts(&candidates, &flattened, schema),
        };

        // Lines 10-12: DoGroup per priority, in decreasing order.
        let by_id: FxHashMap<TransactionId, &CandidateTransaction> =
            candidates.iter().map(|c| (c.id, c)).collect();
        let mut priorities: Vec<Priority> = candidates.iter().map(|c| c.priority).collect();
        priorities.sort_unstable();
        priorities.dedup();
        priorities.reverse();
        for prio in priorities {
            Self::do_group(prio, &candidates, &conflicts, &by_id, &mut decisions);
        }

        // Lines 14-19: apply accepted candidates, recomputing each update
        // extension against the set of transactions already used so shared
        // antecedents are applied exactly once.
        let mut used: FxHashSet<TransactionId> = FxHashSet::default();
        let mut outcome = ReconcileOutcome { recno: input.recno, ..Default::default() };
        for cand in &candidates {
            if decisions[&cand.id] != TransactionDecision::Accept {
                continue;
            }
            let net = cand.flattened_excluding(schema, &used);
            match Self::apply_net(instance, &net) {
                Ok(applied) => {
                    for (id, _) in &cand.members {
                        if used.insert(*id) {
                            outcome.accepted_members.push(*id);
                        }
                    }
                    outcome.accepted_roots.push(cand.id);
                    outcome.applied_updates.extend(applied);
                }
                Err(_) => {
                    // The accepted set should always apply cleanly; if an
                    // application fails despite the checks (e.g. an exotic
                    // constraint interaction), the transaction is rejected
                    // rather than leaving the instance partially updated.
                    decisions.insert(cand.id, TransactionDecision::Reject);
                }
            }
        }

        // Collect rejected and deferred roots. A root whose decision was
        // Defer can nonetheless have been *accepted as a member* of another
        // accepted candidate's extension in this very run — the store now
        // durably records it accepted, so it is no longer deferred (and must
        // not linger in the soft state where a user could "resolve" a
        // transaction the store has already committed to).
        for cand in &candidates {
            match decisions[&cand.id] {
                TransactionDecision::Reject => outcome.rejected.push(cand.id),
                TransactionDecision::Defer if !used.contains(&cand.id) => {
                    outcome.deferred.push(cand.id)
                }
                TransactionDecision::Defer | TransactionDecision::Accept => {}
            }
        }

        // Line 21: UpdateSoftState — previously deferred transactions remain
        // deferred alongside the newly deferred ones. Their chains are
        // pruned against everything accepted up to and *including* this run,
        // so the soft state never holds a member whose effects are already
        // in the instance (and crash recovery, which rebuilds deferred
        // candidates from the store's current accepted set, reproduces the
        // same chains).
        let accepted_now: FxHashSet<TransactionId> = input
            .previously_accepted
            .iter()
            .chain(outcome.accepted_members.iter())
            .copied()
            .collect();
        let mut all_deferred: Vec<CandidateTransaction> =
            soft.deferred().values().cloned().collect();
        all_deferred.sort_by_key(|c| c.id);
        for cand in &candidates {
            if decisions[&cand.id] == TransactionDecision::Defer
                && !all_deferred.iter().any(|c| c.id == cand.id)
            {
                all_deferred.push(cand.clone());
            }
        }
        // Previously deferred transactions that were decided in this run
        // (possible during conflict resolution), or accepted as members of an
        // accepted extension, drop out of the deferred set — the store's
        // durable record is authoritative.
        all_deferred.retain(|c| {
            !used.contains(&c.id)
                && decisions.get(&c.id).map(|d| *d == TransactionDecision::Defer).unwrap_or(true)
        });
        for cand in &mut all_deferred {
            cand.prune_accepted_members(&accepted_now);
        }
        soft.rebuild(input.recno, all_deferred, schema, &self.cache);
        // Accepted and rejected transactions are durably decided at the store
        // and never reappear as candidates; only deferred chains can recur,
        // so only their flattenings are worth keeping.
        self.cache.retain(|id| soft.is_deferred(id));
        outcome.conflict_groups = soft.conflict_groups().to_vec();
        outcome
    }

    /// `CheckState` (Figure 5): decide a candidate against the dirty-value
    /// set, previous decisions, the materialised instance, and the
    /// participant's own delta for this reconciliation.
    fn check_state(
        &self,
        cand: &CandidateTransaction,
        flat: &[Update],
        instance: &Database,
        soft: &SoftState,
        own_flat: &[Update],
        previously_rejected: &FxHashSet<TransactionId>,
    ) -> TransactionDecision {
        let schema = &self.schema;
        // 1-2: touches a dirty value -> defer. The flattened extension has
        // already been computed, so derive the touched keys from it rather
        // than flattening again.
        let touches_dirty = flat.iter().any(|u| {
            schema
                .relation(&u.relation)
                .map(|rel| u.touched_keys(rel).iter().any(|k| soft.is_dirty(&u.relation, k)))
                .unwrap_or(false)
        });
        if touches_dirty {
            return TransactionDecision::Defer;
        }
        // 3-4: extension contains an already rejected transaction -> reject.
        if cand.members.iter().any(|(id, _)| previously_rejected.contains(id)) {
            return TransactionDecision::Reject;
        }
        // 5-6: incompatible with the instance -> reject.
        for u in flat {
            if !instance.is_compatible(u) || instance.check_constraints(u).is_err() {
                return TransactionDecision::Reject;
            }
        }
        // 7-8: conflicts with the participant's own delta -> reject.
        for u in flat {
            for own in own_flat {
                if u.conflicts_with(own, schema) {
                    return TransactionDecision::Reject;
                }
            }
        }
        TransactionDecision::Accept
    }

    /// `FindConflicts` (Figure 5): pairwise direct conflicts between the
    /// candidates' update extensions, skipping pairs where one subsumes the
    /// other.
    ///
    /// A hash index from touched `(relation, key)` pairs to candidates keeps
    /// the common case near-linear (the paper's analysis assumes a hash
    /// table-based conflict detection step): only candidates that touch a
    /// common key are compared, and the precomputed flattened extensions are
    /// reused unless the pair shares extension members, in which case the
    /// exact Definition 4 check (excluding shared members) is performed.
    fn find_conflicts(
        candidates: &[CandidateTransaction],
        flattened: &FxHashMap<TransactionId, Arc<Vec<Update>>>,
        schema: &Schema,
    ) -> FxHashMap<TransactionId, FxHashSet<TransactionId>> {
        let mut conflicts: FxHashMap<TransactionId, FxHashSet<TransactionId>> =
            FxHashMap::default();

        // Index candidates by the keys their flattened extensions touch.
        let mut by_key: FxHashMap<
            (orchestra_model::RelName, orchestra_model::KeyValue),
            Vec<usize>,
        > = FxHashMap::default();
        for (i, cand) in candidates.iter().enumerate() {
            let mut seen: FxHashSet<(orchestra_model::RelName, orchestra_model::KeyValue)> =
                FxHashSet::default();
            for u in flattened[&cand.id].iter() {
                if let Ok(rel) = schema.relation(&u.relation) {
                    for key in u.touched_keys(rel) {
                        let entry = (u.relation.clone(), key);
                        if seen.insert(entry.clone()) {
                            by_key.entry(entry).or_default().push(i);
                        }
                    }
                }
            }
        }

        let member_sets: Vec<FxHashSet<TransactionId>> =
            candidates.iter().map(|c| c.member_ids()).collect();
        let mut checked: FxHashSet<(usize, usize)> = FxHashSet::default();
        for indices in by_key.values() {
            for a_pos in 0..indices.len() {
                for b_pos in (a_pos + 1)..indices.len() {
                    let (i, j) =
                        (indices[a_pos].min(indices[b_pos]), indices[a_pos].max(indices[b_pos]));
                    if i == j || !checked.insert((i, j)) {
                        continue;
                    }
                    let a = &candidates[i];
                    let b = &candidates[j];
                    let a_members = &member_sets[i];
                    let b_members = &member_sets[j];
                    let a_subsumes = b_members.iter().all(|id| a_members.contains(id));
                    let b_subsumes = a_members.iter().all(|id| b_members.contains(id));
                    if a_subsumes || b_subsumes {
                        continue;
                    }
                    let shares_members = a_members.iter().any(|id| b_members.contains(id));
                    let conflicting = if shares_members {
                        // Exact Definition 4 check excluding shared members.
                        a.directly_conflicts_with(b, schema)
                    } else {
                        !crate::extension::conflict_keys_between(
                            &flattened[&a.id],
                            &flattened[&b.id],
                            schema,
                        )
                        .is_empty()
                    };
                    if conflicting {
                        conflicts.entry(a.id).or_default().insert(b.id);
                        conflicts.entry(b.id).or_default().insert(a.id);
                    }
                }
            }
        }
        conflicts
    }

    /// `DoGroup` (Figure 5): within one priority group, reject transactions
    /// that conflict with higher-priority accepted transactions, defer those
    /// that conflict with higher-priority deferred transactions, and defer
    /// both members of any conflicting pair within the group.
    fn do_group(
        prio: Priority,
        candidates: &[CandidateTransaction],
        conflicts: &FxHashMap<TransactionId, FxHashSet<TransactionId>>,
        by_id: &FxHashMap<TransactionId, &CandidateTransaction>,
        decisions: &mut FxHashMap<TransactionId, TransactionDecision>,
    ) {
        let mut group: Vec<TransactionId> = candidates
            .iter()
            .filter(|c| c.priority == prio)
            .filter(|c| decisions[&c.id] != TransactionDecision::Reject)
            .map(|c| c.id)
            .collect();

        // Conflicts with strictly higher-priority transactions. The verdict
        // is aggregated over the *whole* conflict set before being applied:
        // one accepted higher-priority conflict rejects the transaction, no
        // matter how many deferred higher-priority conflicts it also has.
        // (An earlier version decided per conflict while iterating a hash
        // set, so a Defer encountered after a Reject overwrote it and the
        // outcome depended on hash-iteration order.)
        let mut removed: FxHashSet<TransactionId> = FxHashSet::default();
        for &t in &group {
            let Some(cs) = conflicts.get(&t) else { continue };
            let mut any_accepted = false;
            let mut any_deferred = false;
            for &c in cs {
                let Some(other) = by_id.get(&c) else { continue };
                if other.priority <= prio {
                    continue;
                }
                match decisions[&c] {
                    TransactionDecision::Accept => any_accepted = true,
                    TransactionDecision::Defer => any_deferred = true,
                    TransactionDecision::Reject => {}
                }
            }
            if any_accepted {
                // Reject is sticky: it wins over any deferred conflict.
                decisions.insert(t, TransactionDecision::Reject);
                removed.insert(t);
            } else if any_deferred {
                decisions.insert(t, TransactionDecision::Defer);
            }
        }
        group.retain(|t| !removed.contains(t));

        // Conflicts within the group: defer both sides.
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                let (a, b) = (group[i], group[j]);
                if conflicts.get(&a).map(|s| s.contains(&b)).unwrap_or(false) {
                    decisions.insert(a, TransactionDecision::Defer);
                    decisions.insert(b, TransactionDecision::Defer);
                }
            }
        }
    }

    /// Applies the net updates of an accepted extension, tolerating updates
    /// whose effect is already present (shared effects of previously applied
    /// extensions). Returns the updates actually applied; on error everything
    /// applied by this call is rolled back.
    fn apply_net(
        instance: &mut Database,
        net: &[Update],
    ) -> Result<Vec<Update>, orchestra_storage::StorageError> {
        let mut applied: Vec<Update> = Vec::with_capacity(net.len());
        for u in net {
            let already_satisfied = match &u.op {
                UpdateOp::Insert(t) => instance.contains_tuple_exact(&u.relation, t),
                UpdateOp::Delete(t) => !instance.key_present(&u.relation, t),
                UpdateOp::Modify { from, to } => {
                    !instance.contains_tuple_exact(&u.relation, from)
                        && instance.contains_tuple_exact(&u.relation, to)
                }
            };
            if already_satisfied {
                continue;
            }
            match instance.apply_update(u) {
                Ok(()) => applied.push(u.clone()),
                Err(e) => {
                    // Roll back what this call applied.
                    for prev in applied.iter().rev() {
                        let inv = match &prev.op {
                            UpdateOp::Insert(t) => {
                                Update::delete(prev.relation.clone(), t.clone(), prev.origin)
                            }
                            UpdateOp::Delete(t) => {
                                Update::insert(prev.relation.clone(), t.clone(), prev.origin)
                            }
                            UpdateOp::Modify { from, to } => Update::modify(
                                prev.relation.clone(),
                                to.clone(),
                                from.clone(),
                                prev.origin,
                            ),
                        };
                        let _ = instance.apply_update(&inv);
                    }
                    return Err(e);
                }
            }
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{ParticipantId, Transaction, Tuple};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn txn(i: u32, j: u64, updates: Vec<Update>) -> Transaction {
        Transaction::from_parts(p(i), j, updates).unwrap()
    }

    fn cand(txn: &Transaction, prio: u32) -> CandidateTransaction {
        CandidateTransaction::new(txn, Priority(prio), vec![])
    }

    fn setup() -> (ReconcileEngine, Database, SoftState) {
        let schema = bioinformatics_schema();
        (ReconcileEngine::new(schema.clone()), Database::new(schema), SoftState::new())
    }

    #[test]
    fn non_conflicting_candidates_are_accepted_and_applied() {
        let (engine, mut db, mut soft) = setup();
        let x1 =
            txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "immune"), p(2))]);
        let x2 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "immune"), p(3))]);
        let input = ReconcileInput {
            recno: ReconciliationId(1),
            candidates: vec![cand(&x1, 1), cand(&x2, 1)],
            ..Default::default()
        };
        let out = engine.reconcile(input, &mut db, &mut soft);
        assert_eq!(out.accepted_roots.len(), 2);
        assert!(out.rejected.is_empty());
        assert!(out.deferred.is_empty());
        assert_eq!(db.total_tuples(), 2);
        assert_eq!(out.applied_updates.len(), 2);
        assert_eq!(out.decision_of(x1.id()), Some(TransactionDecision::Accept));
    }

    #[test]
    fn equal_priority_conflicts_are_deferred_with_conflict_groups() {
        let (engine, mut db, mut soft) = setup();
        let x1 =
            txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "cell-resp"), p(2))]);
        let x2 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "immune"), p(3))]);
        let input = ReconcileInput {
            recno: ReconciliationId(1),
            candidates: vec![cand(&x1, 1), cand(&x2, 1)],
            ..Default::default()
        };
        let out = engine.reconcile(input, &mut db, &mut soft);
        assert!(out.accepted_roots.is_empty());
        assert_eq!(out.deferred.len(), 2);
        assert!(db.is_empty());
        assert_eq!(out.conflict_groups.len(), 1);
        assert_eq!(out.conflict_groups[0].options.len(), 2);
        assert!(soft.is_deferred(x1.id()));
        assert!(soft.is_deferred(x2.id()));
    }

    #[test]
    fn higher_priority_wins_and_lower_is_rejected() {
        let (engine, mut db, mut soft) = setup();
        let high =
            txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "immune"), p(2))]);
        let low =
            txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "cell-resp"), p(3))]);
        let input = ReconcileInput {
            recno: ReconciliationId(1),
            candidates: vec![cand(&low, 1), cand(&high, 5)],
            ..Default::default()
        };
        let out = engine.reconcile(input, &mut db, &mut soft);
        assert_eq!(out.accepted_roots, vec![high.id()]);
        assert_eq!(out.rejected, vec![low.id()]);
        assert!(out.deferred.is_empty());
        assert!(db.contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
    }

    #[test]
    fn conflict_with_own_updates_is_rejected() {
        let (engine, mut db, mut soft) = setup();
        // The participant already applied its own insert locally.
        db.apply_update(&Update::insert("Function", func("rat", "prot1", "cell-resp"), p(1)))
            .unwrap();
        let remote =
            txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "immune"), p(3))]);
        let input = ReconcileInput {
            recno: ReconciliationId(1),
            candidates: vec![cand(&remote, 7)],
            own_updates: vec![Update::insert("Function", func("rat", "prot1", "cell-resp"), p(1))],
            ..Default::default()
        };
        let out = engine.reconcile(input, &mut db, &mut soft);
        assert_eq!(out.rejected, vec![remote.id()]);
        assert!(db.contains_tuple_exact("Function", &func("rat", "prot1", "cell-resp")));
    }

    #[test]
    fn incompatible_with_instance_is_rejected() {
        let (engine, mut db, mut soft) = setup();
        db.apply_update(&Update::insert("Function", func("rat", "prot1", "immune"), p(1))).unwrap();
        // A remote modify of a tuple value this participant never had.
        let remote = txn(
            3,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "other"),
                func("rat", "prot1", "cell-resp"),
                p(3),
            )],
        );
        let input = ReconcileInput {
            recno: ReconciliationId(1),
            candidates: vec![cand(&remote, 1)],
            ..Default::default()
        };
        let out = engine.reconcile(input, &mut db, &mut soft);
        assert_eq!(out.rejected, vec![remote.id()]);
    }

    #[test]
    fn extension_containing_rejected_transaction_is_rejected() {
        let (engine, mut db, mut soft) = setup();
        let x0 = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "v1"), p(2))]);
        let x1 = txn(
            2,
            1,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "v1"),
                func("rat", "prot1", "v2"),
                p(2),
            )],
        );
        let candidate = CandidateTransaction::new(&x1, Priority(1), vec![x0.clone()]);
        let mut rejected = FxHashSet::default();
        rejected.insert(x0.id());
        let input = ReconcileInput {
            recno: ReconciliationId(2),
            candidates: vec![candidate],
            previously_rejected: Arc::new(rejected),
            ..Default::default()
        };
        let out = engine.reconcile(input, &mut db, &mut soft);
        assert_eq!(out.rejected, vec![x1.id()]);
        assert!(db.is_empty());
    }

    #[test]
    fn transactions_touching_dirty_values_are_deferred() {
        let (engine, mut db, mut soft) = setup();
        // First reconciliation: two equal-priority conflicting inserts defer
        // and dirty the key.
        let x1 = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        let x2 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "b"), p(3))]);
        engine.reconcile(
            ReconcileInput {
                recno: ReconciliationId(1),
                candidates: vec![cand(&x1, 1), cand(&x2, 1)],
                ..Default::default()
            },
            &mut db,
            &mut soft,
        );
        assert!(soft.is_dirty("Function", &orchestra_model::KeyValue::of_text(&["rat", "prot1"])));

        // Second reconciliation: a new (even higher-priority) transaction on
        // the same key must be deferred, so the earlier deferral stays
        // resolvable.
        let x3 = txn(4, 0, vec![Update::insert("Function", func("rat", "prot1", "c"), p(4))]);
        let out = engine.reconcile(
            ReconcileInput {
                recno: ReconciliationId(2),
                candidates: vec![cand(&x3, 9)],
                ..Default::default()
            },
            &mut db,
            &mut soft,
        );
        assert_eq!(out.deferred, vec![x3.id()]);
        assert!(db.is_empty());
        // The previously deferred transactions are still deferred.
        assert!(soft.is_deferred(x1.id()));
        assert!(soft.is_deferred(x2.id()));
        assert!(soft.is_deferred(x3.id()));
    }

    #[test]
    fn shared_antecedents_are_applied_once() {
        let (engine, mut db, mut soft) = setup();
        let base = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "base"), p(2))]);
        let left = txn(2, 1, vec![Update::insert("Function", func("mouse", "prot2", "x"), p(2))]);
        // Two candidates share `base` as an antecedent (one is base itself).
        let c_base = CandidateTransaction::new(&base, Priority(1), vec![]);
        let c_left = CandidateTransaction::new(&left, Priority(1), vec![base.clone()]);
        let out = engine.reconcile(
            ReconcileInput {
                recno: ReconciliationId(1),
                candidates: vec![c_base, c_left],
                ..Default::default()
            },
            &mut db,
            &mut soft,
        );
        assert_eq!(out.accepted_roots.len(), 2);
        // base appears once in accepted_members even though it is in both
        // extensions.
        assert_eq!(out.accepted_members.iter().filter(|id| **id == base.id()).count(), 1);
        assert_eq!(db.total_tuples(), 2);
    }

    #[test]
    fn lower_priority_conflict_with_deferred_higher_priority_is_deferred() {
        let (engine, mut db, mut soft) = setup();
        // Two high-priority transactions conflict with each other (defer);
        // a lower-priority transaction conflicting with them must defer, not
        // be accepted.
        let h1 = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        let h2 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "b"), p(3))]);
        let low = txn(4, 0, vec![Update::insert("Function", func("rat", "prot1", "c"), p(4))]);
        let out = engine.reconcile(
            ReconcileInput {
                recno: ReconciliationId(1),
                candidates: vec![cand(&h1, 5), cand(&h2, 5), cand(&low, 1)],
                ..Default::default()
            },
            &mut db,
            &mut soft,
        );
        assert!(out.accepted_roots.is_empty());
        assert_eq!(out.deferred.len(), 3);
        assert!(db.is_empty());
    }

    #[test]
    fn lower_priority_conflict_with_accepted_higher_priority_is_rejected() {
        let (engine, mut db, mut soft) = setup();
        let high = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        let low1 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "b"), p(3))]);
        let low2 = txn(4, 0, vec![Update::insert("Function", func("rat", "prot1", "c"), p(4))]);
        let out = engine.reconcile(
            ReconcileInput {
                recno: ReconciliationId(1),
                candidates: vec![cand(&high, 5), cand(&low1, 1), cand(&low2, 1)],
                ..Default::default()
            },
            &mut db,
            &mut soft,
        );
        // The high-priority transaction is applied; both low-priority
        // transactions conflict with it and are rejected, not deferred.
        assert_eq!(out.accepted_roots, vec![high.id()]);
        assert_eq!(out.rejected.len(), 2);
        assert!(out.deferred.is_empty());
        assert!(db.contains_tuple_exact("Function", &func("rat", "prot1", "a")));
    }

    #[test]
    fn reject_is_sticky_regardless_of_conflict_iteration_order() {
        // Regression test for an order-dependence bug in DoGroup: a candidate
        // conflicting with BOTH an accepted and a deferred higher-priority
        // transaction must be rejected. The old code iterated the conflict
        // hash set and overwrote decisions per conflict, so whenever the
        // deferred conflict happened to be visited after the accepted one the
        // Reject became a Defer. The low-priority candidate's id is varied so
        // that every hash-iteration order of its conflict set is exercised.
        for (d2_participant, low_participant) in
            [(4u32, 5u32), (8, 4), (8, 5), (8, 9), (14, 4), (4, 9)]
        {
            let (engine, mut db, mut soft) = setup();
            // `high` is alone at priority 9 on key (rat, prot1): accepted.
            let high = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
            // `d1`/`d2` collide at priority 5 on key (rat, prot2): deferred.
            let d1 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot2", "b"), p(3))]);
            let d2 = txn(
                d2_participant,
                0,
                vec![Update::insert("Function", func("rat", "prot2", "c"), p(d2_participant))],
            );
            // `low` conflicts with the accepted `high` (rat, prot1) and with
            // the deferred `d1`/`d2` (rat, prot2).
            let low = txn(
                low_participant,
                0,
                vec![
                    Update::insert("Function", func("rat", "prot1", "x"), p(low_participant)),
                    Update::insert("Function", func("rat", "prot2", "y"), p(low_participant)),
                ],
            );
            let out = engine.reconcile(
                ReconcileInput {
                    recno: ReconciliationId(1),
                    candidates: vec![cand(&high, 9), cand(&d1, 5), cand(&d2, 5), cand(&low, 1)],
                    ..Default::default()
                },
                &mut db,
                &mut soft,
            );
            assert_eq!(out.accepted_roots, vec![high.id()]);
            assert_eq!(out.deferred.len(), 2, "only d1/d2 defer (low id {low_participant})");
            assert_eq!(
                out.decision_of(low.id()),
                Some(TransactionDecision::Reject),
                "low-priority candidate {low_participant} must be rejected, not deferred"
            );
        }
    }

    #[test]
    fn unchanged_deferred_chains_are_flattened_once() {
        let (engine, mut db, mut soft) = setup();
        let x1 = txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(2))]);
        let x2 = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "b"), p(3))]);
        engine.reconcile(
            ReconcileInput {
                recno: ReconciliationId(1),
                candidates: vec![cand(&x1, 1), cand(&x2, 1)],
                ..Default::default()
            },
            &mut db,
            &mut soft,
        );
        let (_, misses_after_first) = engine.extension_cache().stats();
        assert_eq!(engine.extension_cache().len(), 2, "both deferred chains stay cached");

        // A second reconciliation with no new candidates re-presents the
        // deferred chains via the soft state; nothing is re-flattened.
        engine.reconcile(
            ReconcileInput { recno: ReconciliationId(2), ..Default::default() },
            &mut db,
            &mut soft,
        );
        let (hits, misses) = engine.extension_cache().stats();
        assert_eq!(misses, misses_after_first, "unchanged chains must not re-flatten");
        assert!(hits > 0, "soft-state rebuild must hit the cache");
    }

    #[test]
    fn decided_candidates_are_pruned_from_the_cache() {
        let (engine, mut db, mut soft) = setup();
        let x1 =
            txn(2, 0, vec![Update::insert("Function", func("mouse", "prot2", "immune"), p(2))]);
        let out = engine.reconcile(
            ReconcileInput {
                recno: ReconciliationId(1),
                candidates: vec![cand(&x1, 1)],
                ..Default::default()
            },
            &mut db,
            &mut soft,
        );
        assert_eq!(out.accepted_roots, vec![x1.id()]);
        // The accepted candidate can never reappear; its flattening is gone.
        assert!(engine.extension_cache().is_empty());
    }

    #[test]
    fn identical_remote_insert_is_accepted_as_noop() {
        let (engine, mut db, mut soft) = setup();
        db.apply_update(&Update::insert("Function", func("rat", "prot1", "immune"), p(1))).unwrap();
        let remote =
            txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "immune"), p(2))]);
        let out = engine.reconcile(
            ReconcileInput {
                recno: ReconciliationId(1),
                candidates: vec![cand(&remote, 1)],
                own_updates: vec![Update::insert("Function", func("rat", "prot1", "immune"), p(1))],
                ..Default::default()
            },
            &mut db,
            &mut soft,
        );
        assert_eq!(out.accepted_roots, vec![remote.id()]);
        // Nothing new was applied; the value was already there.
        assert!(out.applied_updates.is_empty());
        assert_eq!(db.total_tuples(), 1);
    }
}
