//! User-driven conflict resolution.
//!
//! Once transactions have been deferred, Section 4.2 of the paper resolves
//! conflicts as follows: the user specifies, for one or more conflict groups,
//! which option to keep. The transactions of the other options are rejected
//! and removed from the deferred set; the remaining deferred transactions are
//! then treated as freshly published and `ReconcileUpdates` is re-run, so
//! that transactions whose conflicts have been resolved are finally accepted
//! (or re-deferred if they still conflict with something else).

use crate::engine::{ReconcileEngine, ReconcileInput, ReconcileOutcome};
use crate::extension::CandidateTransaction;
use crate::softstate::SoftState;
use orchestra_model::{ConflictKey, ReconciliationId, TransactionId, Update};
use orchestra_storage::Database;
use rustc_hash::FxHashSet;

/// One user decision: for the conflict group identified by `group`, keep the
/// option at index `chosen_option` (all other options' transactions are
/// rejected). To reject *every* option of a group, pass `chosen_option:
/// None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolutionChoice {
    /// The conflict group being resolved.
    pub group: ConflictKey,
    /// Index of the option to keep, or `None` to reject all options.
    pub chosen_option: Option<usize>,
}

/// The outcome of applying a set of resolution choices.
#[derive(Debug, Clone, Default)]
pub struct ResolutionOutcome {
    /// Transactions rejected because the user did not choose their option.
    pub newly_rejected: Vec<TransactionId>,
    /// The reconciliation outcome of re-running `ReconcileUpdates` over the
    /// remaining deferred transactions.
    pub rerun: ReconcileOutcome,
}

/// Applies the user's resolution choices and re-runs reconciliation over the
/// remaining deferred transactions.
///
/// `previously_rejected` is the participant's rejected set from the update
/// store; the newly rejected transactions are added to it by the caller after
/// this returns. `previously_accepted` is the matching accepted snapshot,
/// which the rerun uses to keep candidate extensions on Definition 3
/// (accepted members are pruned). `own_updates` should normally be empty —
/// resolution is not a publication step.
pub fn resolve_conflicts(
    engine: &ReconcileEngine,
    recno: ReconciliationId,
    choices: &[ResolutionChoice],
    instance: &mut Database,
    soft: &mut SoftState,
    previously_rejected: &FxHashSet<TransactionId>,
    previously_accepted: std::sync::Arc<FxHashSet<TransactionId>>,
) -> ResolutionOutcome {
    let mut outcome = ResolutionOutcome::default();

    // Work out which transactions the user rejected.
    let mut rejected_now: FxHashSet<TransactionId> = FxHashSet::default();
    for choice in choices {
        let Some(group) = soft.conflict_groups().iter().find(|g| g.key == choice.group) else {
            continue;
        };
        for (idx, option) in group.options.iter().enumerate() {
            let keep = choice.chosen_option == Some(idx);
            if !keep {
                for t in &option.transactions {
                    rejected_now.insert(*t);
                }
            }
        }
        // A transaction the user explicitly kept must not be rejected because
        // it also appears in a losing option of another group resolved in the
        // same call; the keep wins.
        if let Some(idx) = choice.chosen_option {
            if let Some(option) = group.options.get(idx) {
                for t in &option.transactions {
                    rejected_now.remove(t);
                }
            }
        }
    }

    // Remove rejected transactions from the deferred set.
    let mut remaining: Vec<CandidateTransaction> = Vec::new();
    let deferred_ids: Vec<TransactionId> = soft.deferred().keys().copied().collect();
    for id in deferred_ids {
        if rejected_now.contains(&id) {
            soft.remove_deferred(id);
            outcome.newly_rejected.push(id);
        } else if let Some(cand) = soft.remove_deferred(id) {
            remaining.push(cand);
        }
    }
    outcome.newly_rejected.sort();
    remaining.sort_by_key(|c| c.id);

    // Clear the soft state (the deferred set has been drained) and re-run
    // reconciliation treating the remaining deferred transactions as freshly
    // published.
    soft.rebuild(recno, Vec::new(), engine.schema(), engine.extension_cache());
    let mut all_rejected = previously_rejected.clone();
    all_rejected.extend(rejected_now.iter().copied());
    let input = ReconcileInput {
        recno,
        candidates: remaining,
        own_updates: Vec::<Update>::new(),
        previously_rejected: std::sync::Arc::new(all_rejected),
        previously_accepted,
        precomputed_conflicts: None,
    };
    outcome.rerun = engine.reconcile(input, instance, soft);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{ParticipantId, Priority, Transaction, Tuple};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn insert_txn(i: u32, j: u64, org: &str, prot: &str, f: &str) -> Transaction {
        Transaction::from_parts(p(i), j, vec![Update::insert("Function", func(org, prot, f), p(i))])
            .unwrap()
    }

    fn cand(txn: &Transaction, prio: u32) -> CandidateTransaction {
        CandidateTransaction::new(txn, Priority(prio), vec![])
    }

    fn defer_two() -> (ReconcileEngine, Database, SoftState, Transaction, Transaction) {
        let schema = bioinformatics_schema();
        let engine = ReconcileEngine::new(schema.clone());
        let mut db = Database::new(schema);
        let mut soft = SoftState::new();
        let x1 = insert_txn(2, 0, "rat", "prot1", "cell-resp");
        let x2 = insert_txn(3, 0, "rat", "prot1", "immune");
        let out = engine.reconcile(
            ReconcileInput {
                recno: ReconciliationId(1),
                candidates: vec![cand(&x1, 1), cand(&x2, 1)],
                ..Default::default()
            },
            &mut db,
            &mut soft,
        );
        assert_eq!(out.deferred.len(), 2);
        (engine, db, soft, x1, x2)
    }

    #[test]
    fn choosing_an_option_accepts_it_and_rejects_the_rest() {
        let (engine, mut db, mut soft, x1, x2) = defer_two();
        let group_key = soft.conflict_groups()[0].key.clone();
        // Find which option carries x2 and choose it.
        let chosen_idx = soft.conflict_groups()[0]
            .options
            .iter()
            .position(|o| o.transactions.contains(&x2.id()))
            .unwrap();
        let outcome = resolve_conflicts(
            &engine,
            ReconciliationId(2),
            &[ResolutionChoice { group: group_key, chosen_option: Some(chosen_idx) }],
            &mut db,
            &mut soft,
            &FxHashSet::default(),
            std::sync::Arc::default(),
        );
        assert_eq!(outcome.newly_rejected, vec![x1.id()]);
        assert_eq!(outcome.rerun.accepted_roots, vec![x2.id()]);
        assert!(db.contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
        assert!(!db.contains_tuple_exact("Function", &func("rat", "prot1", "cell-resp")));
        assert!(soft.deferred().is_empty());
        assert!(soft.conflict_groups().is_empty());
        assert_eq!(soft.dirty_len(), 0);
    }

    #[test]
    fn rejecting_every_option_leaves_the_instance_unchanged() {
        let (engine, mut db, mut soft, x1, x2) = defer_two();
        let group_key = soft.conflict_groups()[0].key.clone();
        let outcome = resolve_conflicts(
            &engine,
            ReconciliationId(2),
            &[ResolutionChoice { group: group_key, chosen_option: None }],
            &mut db,
            &mut soft,
            &FxHashSet::default(),
            std::sync::Arc::default(),
        );
        let mut rejected = outcome.newly_rejected.clone();
        rejected.sort();
        let mut expected = vec![x1.id(), x2.id()];
        expected.sort();
        assert_eq!(rejected, expected);
        assert!(db.is_empty());
        assert!(soft.deferred().is_empty());
    }

    #[test]
    fn unrelated_deferred_transactions_stay_deferred_after_resolution() {
        let schema = bioinformatics_schema();
        let engine = ReconcileEngine::new(schema.clone());
        let mut db = Database::new(schema);
        let mut soft = SoftState::new();
        // Two independent conflicts over different keys.
        let a1 = insert_txn(2, 0, "rat", "prot1", "v1");
        let a2 = insert_txn(3, 0, "rat", "prot1", "v2");
        let b1 = insert_txn(2, 1, "mouse", "prot2", "w1");
        let b2 = insert_txn(3, 1, "mouse", "prot2", "w2");
        engine.reconcile(
            ReconcileInput {
                recno: ReconciliationId(1),
                candidates: vec![cand(&a1, 1), cand(&a2, 1), cand(&b1, 1), cand(&b2, 1)],
                ..Default::default()
            },
            &mut db,
            &mut soft,
        );
        assert_eq!(soft.conflict_groups().len(), 2);

        // Resolve only the rat/prot1 group, keeping a1.
        let rat_group =
            soft.conflict_groups().iter().find(|g| g.transactions().contains(&a1.id())).unwrap();
        let key = rat_group.key.clone();
        let idx = rat_group.options.iter().position(|o| o.transactions.contains(&a1.id())).unwrap();
        let outcome = resolve_conflicts(
            &engine,
            ReconciliationId(2),
            &[ResolutionChoice { group: key, chosen_option: Some(idx) }],
            &mut db,
            &mut soft,
            &FxHashSet::default(),
            std::sync::Arc::default(),
        );
        assert_eq!(outcome.newly_rejected, vec![a2.id()]);
        assert!(outcome.rerun.accepted_roots.contains(&a1.id()));
        // The mouse/prot2 conflict is still unresolved and re-deferred.
        assert!(soft.is_deferred(b1.id()));
        assert!(soft.is_deferred(b2.id()));
        assert_eq!(soft.conflict_groups().len(), 1);
        assert!(db.contains_tuple_exact("Function", &func("rat", "prot1", "v1")));
        assert!(!db.contains_tuple_exact("Function", &func("mouse", "prot2", "w1")));
    }

    #[test]
    fn unknown_group_key_is_ignored() {
        let (engine, mut db, mut soft, x1, x2) = defer_two();
        let bogus = ConflictKey::new(
            orchestra_model::ConflictKind::DivergentInsert,
            "Function",
            orchestra_model::KeyValue::of_text(&["nothing", "here"]),
        );
        let outcome = resolve_conflicts(
            &engine,
            ReconciliationId(2),
            &[ResolutionChoice { group: bogus, chosen_option: Some(0) }],
            &mut db,
            &mut soft,
            &FxHashSet::default(),
            std::sync::Arc::default(),
        );
        assert!(outcome.newly_rejected.is_empty());
        // Nothing was resolved, so both transactions re-defer.
        assert!(soft.is_deferred(x1.id()));
        assert!(soft.is_deferred(x2.id()));
        assert!(db.is_empty());
    }
}
