//! Crash-recovery equivalence: a catalogue recovered from its durability
//! directory (snapshot + WAL replay) must be byte-identical to the live one
//! and must drive every subsequent decision identically.
//!
//! The property test generates arbitrary publish/reconcile/resolve schedules
//! over a small confederation, optionally takes a compacting snapshot midway,
//! "crashes" at an arbitrary point, recovers, and checks:
//!
//! * the recovered catalogue's durable-state `Debug` rendering is identical
//!   to the live store's at the crash point;
//! * rebuilding every participant from the recovered store and finishing the
//!   schedule reaches decisions identical to the uninterrupted run — the
//!   instance, the own-publish delta *and* the deferred conflict state all
//!   survive the crash.

use orchestra::{CdssSystem, Participant, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TrustPolicy, Tuple, Update};
use orchestra_store::{CentralStore, Codec, RetentionPolicy, WalOptions};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// The codec × segment-layout matrix every recovery property must hold over.
const LAYOUTS: [WalOptions; 4] = [
    WalOptions { codec: Codec::Binary, per_shard: true },
    WalOptions { codec: Codec::Binary, per_shard: false },
    WalOptions { codec: Codec::Json, per_shard: true },
    WalOptions { codec: Codec::Json, per_shard: false },
];

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "orchestra-recovery-prop-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

const PARTICIPANTS: u32 = 3;

fn policies() -> Vec<TrustPolicy> {
    (1..=PARTICIPANTS)
        .map(|i| {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=PARTICIPANTS {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            policy
        })
        .collect()
}

/// One step of a generated schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Participant executes an insert-or-modify on a small key space and
    /// publishes it.
    Publish { who: u32, key: u32, value: u32 },
    /// Participant reconciles.
    Reconcile { who: u32 },
    /// Participant resolves every open conflict group, keeping option 0.
    Resolve { who: u32 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1..PARTICIPANTS + 1, 0u32..4, 0u32..3).prop_map(|(who, key, value)| Step::Publish {
            who,
            key,
            value
        }),
        (1..PARTICIPANTS + 1).prop_map(|who| Step::Reconcile { who }),
        (1..PARTICIPANTS + 1).prop_map(|who| Step::Resolve { who }),
    ]
}

fn func(key: u32, value: u32) -> Tuple {
    Tuple::of_text(&["rat", &format!("prot{key}"), &format!("fn{value}")])
}

/// Applies one step; decisions are summarised into `log` so two runs can be
/// compared step for step.
fn apply_step(system: &mut CdssSystem<CentralStore>, step: &Step, log: &mut Vec<String>) {
    match step {
        Step::Publish { who, key, value } => {
            let id = p(*who);
            // Execute whichever of insert/modify applies to the current
            // instance; skip silently if neither does (mirrors a curator
            // abandoning an edit).
            let instance = system.participant(id).expect("participant").instance();
            let tuple = func(*key, *value);
            let update = if instance.key_present("Function", &tuple) {
                let existing = instance
                    .relation_contents("Function")
                    .into_iter()
                    .find(|(k, _)| {
                        *k == orchestra_model::KeyValue::of_text(&["rat", &format!("prot{key}")])
                    })
                    .map(|(_, t)| t);
                match existing {
                    Some(from) if from != tuple => Update::modify("Function", from, tuple, id),
                    _ => return,
                }
            } else {
                Update::insert("Function", tuple, id)
            };
            if system.execute(id, vec![update]).is_ok() {
                let epoch = system.publish(id).expect("publish succeeds");
                log.push(format!("publish {who} -> {epoch:?}"));
            }
        }
        Step::Reconcile { who } => {
            let report = system.reconcile(p(*who)).expect("reconcile succeeds");
            let mut accepted = report.accepted.clone();
            accepted.sort();
            let mut rejected = report.rejected.clone();
            rejected.sort();
            let mut deferred = report.deferred.clone();
            deferred.sort();
            log.push(format!(
                "reconcile {who} recno {:?} acc {accepted:?} rej {rejected:?} def {deferred:?}",
                report.recno
            ));
        }
        Step::Resolve { who } => {
            let id = p(*who);
            let groups: Vec<_> = system
                .participant(id)
                .expect("participant")
                .deferred_conflicts()
                .iter()
                .map(|g| g.key.clone())
                .collect();
            if groups.is_empty() {
                return;
            }
            let choices: Vec<orchestra_recon::ResolutionChoice> = groups
                .into_iter()
                .map(|key| orchestra_recon::ResolutionChoice { group: key, chosen_option: Some(0) })
                .collect();
            let outcome = system.resolve_conflicts(id, &choices).expect("resolution succeeds");
            let mut acc = outcome.newly_accepted.clone();
            acc.sort();
            let mut rej = outcome.newly_rejected.clone();
            rej.sort();
            log.push(format!("resolve {who} acc {acc:?} rej {rej:?}"));
        }
    }
}

fn fresh_system(store: CentralStore) -> CdssSystem<CentralStore> {
    let mut system = CdssSystem::new(bioinformatics_schema(), store);
    for policy in policies() {
        system.add_participant(ParticipantConfig::new(policy)).expect("unique participants");
    }
    system
}

fn instances_fingerprint(system: &CdssSystem<CentralStore>) -> Vec<String> {
    system
        .participant_ids()
        .into_iter()
        .map(|id| format!("{:?}", system.participant(id).expect("participant").instance()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any schedule, crash point and snapshot choice: recovery is
    /// byte-identical and the finished schedule is decision-identical.
    /// `snapshot_at` values past the schedule mean "no snapshot", so the
    /// WAL-replay-only path is exercised too.
    #[test]
    fn recovery_is_equivalent_to_never_crashing(
        steps in prop::collection::vec(step_strategy(), 4..40),
        crash_at in 0usize..40,
        snapshot_raw in 0usize..60,
        layout in 0usize..4,
    ) {
        let crash_at = crash_at.min(steps.len());
        let snapshot_at = (snapshot_raw < 40).then_some(snapshot_raw);
        let options = LAYOUTS[layout];

        // Uninterrupted reference run (ephemeral store).
        let mut reference = fresh_system(CentralStore::new(bioinformatics_schema()));
        let mut reference_log = Vec::new();
        for step in &steps {
            apply_step(&mut reference, step, &mut reference_log);
        }

        // Durable run, crashed at `crash_at` (optionally snapshotting at
        // `snapshot_at` if that lands before the crash).
        let dir = scratch_dir();
        let mut system = fresh_system(
            CentralStore::durable_with(bioinformatics_schema(), &dir, options)
                .expect("fresh dir"),
        );
        let mut log = Vec::new();
        for (i, step) in steps[..crash_at].iter().enumerate() {
            if snapshot_at == Some(i) {
                system.store().snapshot().expect("snapshot succeeds");
            }
            apply_step(&mut system, step, &mut log);
        }

        // Crash: capture the durable fingerprint, drop all in-memory state.
        let fingerprint = format!("{:?}", system.store().catalog());
        drop(system);

        // Recover the store and rebuild every participant from it alone.
        let store = CentralStore::recover(&dir).expect("store recovers");
        prop_assert_eq!(
            format!("{:?}", store.catalog()),
            fingerprint,
            "recovered durable state diverged"
        );
        let rebuilt: Vec<Participant> = policies()
            .into_iter()
            .map(|policy| {
                Participant::rebuild_from_store(
                    bioinformatics_schema(),
                    ParticipantConfig::new(policy),
                    &store,
                )
                .expect("participant rebuilds")
            })
            .collect();
        let mut system = CdssSystem::new(bioinformatics_schema(), store);
        for participant in rebuilt {
            system.adopt_participant(participant).expect("unique participants");
        }

        // Finish the schedule; every remaining decision must match the
        // uninterrupted run's.
        for step in &steps[crash_at..] {
            apply_step(&mut system, step, &mut log);
        }
        // Final catch-up: everyone reconciles once more in both runs.
        for i in 1..=PARTICIPANTS {
            apply_step(&mut reference, &Step::Reconcile { who: i }, &mut reference_log);
            apply_step(&mut system, &Step::Reconcile { who: i }, &mut log);
        }
        prop_assert_eq!(&log, &reference_log, "decision streams diverged");
        prop_assert_eq!(
            instances_fingerprint(&system),
            instances_fingerprint(&reference),
            "final instances diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A crashed store that is recovered *twice* (crash during recovery-use) is
/// still byte-identical — recovery does not consume or corrupt the log.
#[test]
fn recovery_is_idempotent() {
    let dir = scratch_dir();
    let mut system =
        fresh_system(CentralStore::durable(bioinformatics_schema(), &dir).expect("fresh dir"));
    let mut log = Vec::new();
    apply_step(&mut system, &Step::Publish { who: 1, key: 0, value: 0 }, &mut log);
    apply_step(&mut system, &Step::Publish { who: 2, key: 0, value: 1 }, &mut log);
    apply_step(&mut system, &Step::Reconcile { who: 3 }, &mut log);
    let fingerprint = format!("{:?}", system.store().catalog());
    drop(system);

    let first = CentralStore::recover(&dir).expect("first recovery");
    assert_eq!(format!("{:?}", first.catalog()), fingerprint);
    drop(first);
    let second = CentralStore::recover(&dir).expect("second recovery");
    assert_eq!(format!("{:?}", second.catalog()), fingerprint);
    std::fs::remove_dir_all(&dir).ok();
}

/// A fixed, conflict-bearing schedule used by the cross-layout tests: every
/// run of it is deterministic, so durable state may be compared across
/// codecs and segment layouts.
fn fixed_schedule() -> Vec<Step> {
    vec![
        Step::Publish { who: 1, key: 0, value: 0 },
        Step::Publish { who: 2, key: 0, value: 1 },
        Step::Reconcile { who: 3 },
        Step::Resolve { who: 3 },
        Step::Publish { who: 3, key: 1, value: 2 },
        Step::Reconcile { who: 1 },
        Step::Resolve { who: 1 },
        Step::Publish { who: 1, key: 2, value: 1 },
        Step::Reconcile { who: 2 },
        Step::Resolve { who: 2 },
        Step::Reconcile { who: 1 },
        Step::Reconcile { who: 2 },
        Step::Reconcile { who: 3 },
    ]
}

/// The same schedule written through every codec × layout combination
/// recovers to the same catalogue (the `Debug` fingerprint excludes the
/// durability backend, so the comparison is across layouts) with the same
/// decision stream — the per-shard segmented layout is byte-equivalent to
/// the single-segment one, in both codecs.
#[test]
fn every_layout_recovers_the_same_catalogue() {
    let mut outcomes: Vec<(String, Vec<String>)> = Vec::new();
    for options in LAYOUTS {
        let dir = scratch_dir();
        let mut system = fresh_system(
            CentralStore::durable_with(bioinformatics_schema(), &dir, options).expect("fresh dir"),
        );
        let mut log = Vec::new();
        for step in fixed_schedule() {
            apply_step(&mut system, &step, &mut log);
        }
        let fingerprint = format!("{:?}", system.store().catalog());
        drop(system);
        let recovered = CentralStore::recover(&dir).expect("recovery");
        assert_eq!(format!("{:?}", recovered.catalog()), fingerprint, "{options:?} diverged");
        outcomes.push((fingerprint, log));
        std::fs::remove_dir_all(&dir).ok();
    }
    for pair in outcomes.windows(2) {
        assert_eq!(pair[0], pair[1], "layouts disagreed");
    }
}

/// Prune-then-crash and crash-then-prune reach the same durable state in
/// every codec × layout combination (the `Prune` record does not persist the
/// pinned-ancestor closure, so this checks replay re-derives it identically
/// through the segmented merge path too).
#[test]
fn pruning_commutes_with_recovery_across_layouts() {
    for options in LAYOUTS {
        let dir_a = scratch_dir();
        let mut system = fresh_system(
            CentralStore::durable_with(bioinformatics_schema(), &dir_a, options)
                .expect("fresh dir"),
        );
        let mut log = Vec::new();
        for step in fixed_schedule() {
            apply_step(&mut system, &step, &mut log);
        }
        system.store().set_retention(RetentionPolicy::ConvergedOnly);
        let report_a = system.store().prune_to_horizon().expect("prune");
        drop(system);
        let recovered_a = CentralStore::recover(&dir_a).expect("recovery after prune");

        let dir_b = scratch_dir();
        let mut system = fresh_system(
            CentralStore::durable_with(bioinformatics_schema(), &dir_b, options)
                .expect("fresh dir"),
        );
        let mut log = Vec::new();
        for step in fixed_schedule() {
            apply_step(&mut system, &step, &mut log);
        }
        drop(system);
        let recovered_b = CentralStore::recover(&dir_b).expect("recovery before prune");
        recovered_b.set_retention(RetentionPolicy::ConvergedOnly);
        let report_b = recovered_b.prune_to_horizon().expect("prune after recovery");

        assert_eq!(report_a.is_noop(), report_b.is_noop(), "{options:?}");
        assert_eq!(
            format!("{:?}", recovered_a.catalog()),
            format!("{:?}", recovered_b.catalog()),
            "{options:?}: prune and recovery do not commute"
        );
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}

/// Switching the codec on a live store (JSON inspection mode ↔ binary)
/// recovers byte-identically whether the switch lands mid-generation (a
/// mixed-codec generation, sniffed per record) or is followed by a snapshot
/// (a cross-codec generation boundary). The recovered backend keeps writing
/// in the codec the directory last used.
#[test]
fn codec_switches_recover_across_generations() {
    for (first, second) in [(Codec::Json, Codec::Binary), (Codec::Binary, Codec::Json)] {
        for snapshot_after_switch in [false, true] {
            let dir = scratch_dir();
            let options = WalOptions { codec: first, per_shard: true };
            let mut system = fresh_system(
                CentralStore::durable_with(bioinformatics_schema(), &dir, options)
                    .expect("fresh dir"),
            );
            let mut log = Vec::new();
            apply_step(&mut system, &Step::Publish { who: 1, key: 0, value: 0 }, &mut log);
            apply_step(&mut system, &Step::Reconcile { who: 2 }, &mut log);
            system
                .store()
                .catalog()
                .durability()
                .file_backend()
                .expect("durable")
                .set_codec(second);
            apply_step(&mut system, &Step::Publish { who: 2, key: 1, value: 1 }, &mut log);
            if snapshot_after_switch {
                system.store().snapshot().expect("snapshot succeeds");
            }
            apply_step(&mut system, &Step::Reconcile { who: 1 }, &mut log);
            let fingerprint = format!("{:?}", system.store().catalog());
            drop(system);

            let recovered = CentralStore::recover(&dir).expect("recovery");
            assert_eq!(format!("{:?}", recovered.catalog()), fingerprint);
            let backend = recovered.catalog().durability().file_backend().expect("durable");
            // With a snapshot the whole surviving generation is in `second`;
            // without one the generation starts in `first` and recovery keeps
            // the directory's original configured codec.
            let expected = if snapshot_after_switch { second } else { first };
            assert_eq!(backend.codec(), expected);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// The compacting snapshot round-trips through both codecs: re-encoding the
/// recovered snapshot either way decodes to the same state, and each
/// encoding sniffs back to its own codec.
#[test]
fn snapshot_round_trips_through_both_codecs() {
    let dir = scratch_dir();
    let mut system =
        fresh_system(CentralStore::durable(bioinformatics_schema(), &dir).expect("fresh dir"));
    let mut log = Vec::new();
    for step in fixed_schedule() {
        apply_step(&mut system, &step, &mut log);
    }
    system.store().snapshot().expect("snapshot succeeds");
    drop(system);

    let (snapshot, codec) = orchestra_storage::snapshot::read_snapshot_with_codec(&dir)
        .expect("snapshot reads")
        .expect("snapshot present");
    assert_eq!(codec, Codec::Binary, "default codec");
    let reference = format!("{snapshot:?}");
    for codec in [Codec::Binary, Codec::Json] {
        let bytes = orchestra_storage::codec::encode_snapshot(&snapshot, codec).expect("encodes");
        let (decoded, sniffed) =
            orchestra_storage::codec::decode_snapshot(&bytes).expect("decodes");
        assert_eq!(sniffed, codec);
        assert_eq!(format!("{decoded:?}"), reference);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot taken right before the crash leaves nothing to replay; one
/// taken earlier leaves a WAL tail. Both must recover byte-identically.
#[test]
fn snapshot_positions_do_not_change_recovery() {
    for snapshot_last in [false, true] {
        let dir = scratch_dir();
        let mut system =
            fresh_system(CentralStore::durable(bioinformatics_schema(), &dir).expect("fresh dir"));
        let mut log = Vec::new();
        apply_step(&mut system, &Step::Publish { who: 1, key: 0, value: 0 }, &mut log);
        apply_step(&mut system, &Step::Reconcile { who: 2 }, &mut log);
        if !snapshot_last {
            system.store().snapshot().expect("snapshot succeeds");
        }
        apply_step(&mut system, &Step::Publish { who: 2, key: 1, value: 2 }, &mut log);
        apply_step(&mut system, &Step::Reconcile { who: 1 }, &mut log);
        if snapshot_last {
            system.store().snapshot().expect("snapshot succeeds");
            // Nothing after the snapshot: the WAL tail is empty.
            assert_eq!(
                system
                    .store()
                    .catalog()
                    .durability()
                    .file_backend()
                    .expect("durable")
                    .wal_records(),
                0
            );
        }
        let fingerprint = format!("{:?}", system.store().catalog());
        drop(system);
        let recovered = CentralStore::recover(&dir).expect("recovery");
        assert_eq!(format!("{:?}", recovered.catalog()), fingerprint);
        std::fs::remove_dir_all(&dir).ok();
    }
}
