//! Integration test reproducing Figure 2 of the paper exactly: three
//! participants with the trust policies of Figure 1, four epochs of
//! publication and reconciliation, and the paper's final instances and
//! deferred set.

use orchestra::{CdssSystem, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TransactionId, TrustPolicy, Tuple, Update};
use orchestra_store::{CentralStore, DhtStore, UpdateStore};

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

fn run_figure2<S: UpdateStore>(store: S) -> CdssSystem<S> {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema, store);
    let p1 = ParticipantId(1);
    let p2 = ParticipantId(2);
    let p3 = ParticipantId(3);
    system
        .add_participant(ParticipantConfig::new(
            TrustPolicy::new(p1).trusting(p2, 1u32).trusting(p3, 1u32),
        ))
        .unwrap();
    system
        .add_participant(ParticipantConfig::new(
            TrustPolicy::new(p2).trusting(p1, 2u32).trusting(p3, 1u32),
        ))
        .unwrap();
    system
        .add_participant(ParticipantConfig::new(TrustPolicy::new(p3).trusting(p2, 1u32)))
        .unwrap();

    // Epoch 1: p3 publishes X3:0 (insert) and X3:1 (revision) and reconciles.
    system
        .execute(p3, vec![Update::insert("Function", func("rat", "prot1", "cell-metab"), p3)])
        .unwrap();
    system
        .execute(
            p3,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "cell-metab"),
                func("rat", "prot1", "immune"),
                p3,
            )],
        )
        .unwrap();
    system.publish_and_reconcile(p3).unwrap();

    // Epoch 2: p2 publishes X2:0 and X2:1 and reconciles.
    system
        .execute(p2, vec![Update::insert("Function", func("mouse", "prot2", "immune"), p2)])
        .unwrap();
    system
        .execute(p2, vec![Update::insert("Function", func("rat", "prot1", "cell-resp"), p2)])
        .unwrap();
    system.publish_and_reconcile(p2).unwrap();

    // Epoch 3: p3 reconciles again.
    system.reconcile(p3).unwrap();

    // Epoch 4: p1 reconciles for the first time.
    system.reconcile(p1).unwrap();
    system
}

fn assert_figure2_outcome<S: UpdateStore>(system: &CdssSystem<S>) {
    let p1 = ParticipantId(1);
    let p2 = ParticipantId(2);
    let p3 = ParticipantId(3);

    // I2(F)|2 = {(mouse, prot2, immune), (rat, prot1, cell-resp)}
    let i2 = system.participant(p2).unwrap().instance();
    assert!(i2.contains_tuple_exact("Function", &func("mouse", "prot2", "immune")));
    assert!(i2.contains_tuple_exact("Function", &func("rat", "prot1", "cell-resp")));
    assert_eq!(i2.total_tuples(), 2);

    // I3(F)|3 = {(mouse, prot2, immune), (rat, prot1, immune)}
    let i3 = system.participant(p3).unwrap().instance();
    assert!(i3.contains_tuple_exact("Function", &func("mouse", "prot2", "immune")));
    assert!(i3.contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
    assert_eq!(i3.total_tuples(), 2);

    // I1(F)|4 = {(mouse, prot2, immune)}; X3:0, X3:1 and X2:1 deferred.
    let participant1 = system.participant(p1).unwrap();
    let i1 = participant1.instance();
    assert!(i1.contains_tuple_exact("Function", &func("mouse", "prot2", "immune")));
    assert_eq!(i1.total_tuples(), 1);

    let deferred = participant1.soft_state().deferred();
    assert_eq!(deferred.len(), 3);
    assert!(deferred.contains_key(&TransactionId::new(p3, 0)));
    assert!(deferred.contains_key(&TransactionId::new(p3, 1)));
    assert!(deferred.contains_key(&TransactionId::new(p2, 1)));
    // The accepted mouse transaction is X2:0 and must not be deferred.
    assert!(!deferred.contains_key(&TransactionId::new(p2, 0)));

    // One conflict group over the rat/prot1 key, with two distinct options
    // (p3's value, possibly backed by its two chained transactions, and p2's
    // value).
    let groups = participant1.deferred_conflicts();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].options.len(), 2);
}

#[test]
fn figure2_is_reproduced_on_the_central_store() {
    let system = run_figure2(CentralStore::new(bioinformatics_schema()));
    assert_figure2_outcome(&system);
}

#[test]
fn figure2_is_reproduced_on_the_dht_store() {
    let system = run_figure2(DhtStore::new(bioinformatics_schema()));
    assert_figure2_outcome(&system);
}

#[test]
fn figure2_conflict_resolves_in_favour_of_the_chosen_option() {
    let mut system = run_figure2(CentralStore::new(bioinformatics_schema()));
    let p1 = ParticipantId(1);
    let p3 = ParticipantId(3);
    let (key, idx) = {
        let groups = system.participant(p1).unwrap().deferred_conflicts();
        let group = &groups[0];
        let idx = group
            .options
            .iter()
            .position(|o| o.transactions.iter().any(|t| t.participant == p3))
            .expect("p3 proposed an option");
        (group.key.clone(), idx)
    };
    let report = system
        .resolve_conflicts(
            p1,
            &[orchestra_recon::ResolutionChoice { group: key, chosen_option: Some(idx) }],
        )
        .unwrap();
    assert!(!report.newly_accepted.is_empty());
    let i1 = system.participant(p1).unwrap().instance();
    assert!(i1.contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
    assert!(system.participant(p1).unwrap().deferred_conflicts().is_empty());
}
