//! Property tests of the WAL codecs: arbitrary records and snapshots must
//! round-trip byte-exactly through both the length-prefixed binary codec and
//! the JSON debug codec, the binary encoding must actually be smaller, and
//! the CRC framing must turn torn tails and bit flips into clean truncation —
//! never into a silently wrong record.

use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{
    AcceptanceRule, Epoch, ParticipantId, Predicate, ReconciliationId, Schema, Transaction,
    TransactionId, TrustPolicy, Tuple, Update, UpdateKind, Value,
};
use orchestra_storage::codec::{decode_record, encode_record, payload_codec};
use orchestra_storage::wal::{decode_frames, encode_frame, WalRecord};
use orchestra_storage::Codec;
use proptest::prelude::*;

fn pid() -> impl Strategy<Value = ParticipantId> {
    (1u32..6).prop_map(ParticipantId)
}

fn word() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 1..9)
        .prop_map(|cs| cs.into_iter().map(|c| char::from(b'a' + c)).collect())
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u32..1).prop_map(|_| Value::Null),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        // Eighths keep the floats exact in both codecs (no NaN, no rounding),
        // while still exercising non-integer bit patterns.
        (-40_000i64..40_000).prop_map(|n| Value::Float(n as f64 / 8.0)),
        word().prop_map(Value::Text),
        (0u32..2).prop_map(|b| Value::Bool(b == 1)),
    ]
}

fn tuple() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(value(), 1..5).prop_map(Tuple::new)
}

fn relation() -> impl Strategy<Value = String> {
    (0u32..3).prop_map(|i| ["Function", "XRef", "Notes"][i as usize].to_string())
}

fn update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (relation(), tuple(), pid()).prop_map(|(r, t, p)| Update::insert(r, t, p)),
        (relation(), tuple(), pid()).prop_map(|(r, t, p)| Update::delete(r, t, p)),
        (relation(), tuple(), tuple(), pid())
            .prop_map(|(r, from, to, p)| Update::modify(r, from, to, p)),
    ]
}

fn transaction() -> impl Strategy<Value = Transaction> {
    (pid(), 0u64..100, prop::collection::vec(update(), 1..5)).prop_map(|(p, local, mut updates)| {
        // A transaction's updates must all carry its originator.
        for update in &mut updates {
            update.origin = p;
        }
        Transaction::from_parts(p, local, updates).expect("non-empty, origin-consistent")
    })
}

fn txn_id() -> impl Strategy<Value = TransactionId> {
    (pid(), 0u64..100).prop_map(|(p, local)| TransactionId::new(p, local))
}

fn predicate(depth: u32) -> BoxedStrategy<Predicate> {
    let leaf = || {
        prop_oneof![
            (0u32..1).prop_map(|_| Predicate::True),
            (0u32..1).prop_map(|_| Predicate::False),
            pid().prop_map(Predicate::FromParticipant),
            prop::collection::vec(pid(), 0..4).prop_map(Predicate::FromAnyOf),
            relation().prop_map(Predicate::OverRelation),
            (0u32..3).prop_map(|k| Predicate::OfKind(
                [UpdateKind::Insert, UpdateKind::Delete, UpdateKind::Modify][k as usize]
            )),
            (word(), value())
                .prop_map(|(column, equals)| Predicate::WritesValue { column, equals }),
        ]
    };
    if depth == 0 {
        leaf().boxed()
    } else {
        let inner = move || predicate(depth - 1);
        prop_oneof![
            leaf(),
            prop::collection::vec(inner(), 0..3).prop_map(Predicate::And),
            prop::collection::vec(inner(), 0..3).prop_map(Predicate::Or),
            inner().prop_map(|p| Predicate::Not(Box::new(p))),
        ]
        .boxed()
    }
}

fn policy() -> impl Strategy<Value = TrustPolicy> {
    (pid(), prop::collection::vec((predicate(2), 0u32..10), 0..4)).prop_map(|(owner, rules)| {
        rules.into_iter().fold(TrustPolicy::new(owner), |policy, (predicate, priority)| {
            policy.with_rule(AcceptanceRule::new(predicate, priority))
        })
    })
}

fn record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (0u32..2).prop_map(|i| WalRecord::Init {
            schema: if i == 0 { Schema::new() } else { bioinformatics_schema() },
        }),
        policy().prop_map(|policy| WalRecord::RegisterPolicy { policy }),
        (pid(), 1u64..1000, prop::collection::vec(transaction(), 1..4)).prop_map(
            |(participant, epoch, transactions)| WalRecord::Publish {
                participant,
                epoch: Epoch(epoch),
                transactions,
            }
        ),
        (pid(), 0u64..100, 1u64..1000, prop::collection::vec(txn_id(), 0..5),).prop_map(
            |(participant, recno, epoch, accepted)| {
                // Rejected ids reuse the accepted strategy's shape via a
                // deterministic twist, staying within the 4-tuple limit of
                // the vendored strategy combinators.
                let rejected = accepted
                    .iter()
                    .map(|id| TransactionId::new(id.participant, id.local + 1))
                    .collect();
                WalRecord::CommitReconciliation {
                    participant,
                    recno: ReconciliationId(recno),
                    epoch: Epoch(epoch),
                    accepted,
                    rejected,
                }
            }
        ),
        (pid(), prop::collection::vec(txn_id(), 0..5), prop::collection::vec(txn_id(), 0..5))
            .prop_map(|(participant, accepted, rejected)| WalRecord::Decisions {
                participant,
                accepted,
                rejected,
            }),
        (0u64..u64::MAX / 2).prop_map(|e| WalRecord::MembershipFrontier { epoch: Epoch(e) }),
        pid().prop_map(|participant| WalRecord::RetireParticipant { participant }),
        (0u64..1000).prop_map(|e| WalRecord::Prune { horizon: Epoch(e) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every record round-trips byte-exactly through both codecs, each
    /// encoding is sniffed back to the codec that produced it, and the
    /// binary encoding is strictly smaller than the JSON one.
    #[test]
    fn records_round_trip_through_both_codecs(record in record()) {
        let binary = encode_record(&record, Codec::Binary);
        let json = encode_record(&record, Codec::Json);
        prop_assert_eq!(payload_codec(&binary), Codec::Binary);
        prop_assert_eq!(payload_codec(&json), Codec::Json);
        prop_assert_eq!(&decode_record(&binary).expect("binary decodes"), &record);
        prop_assert_eq!(&decode_record(&json).expect("json decodes"), &record);
        prop_assert!(
            binary.len() < json.len(),
            "binary ({}) not smaller than json ({}) for {:?}",
            binary.len(),
            json.len(),
            record
        );
    }

    /// Encoding is deterministic: two encodes of one record are identical,
    /// and decode-then-re-encode reproduces the bytes. (Replay and the
    /// byte-identical-recovery gate both rely on this.)
    #[test]
    fn binary_encoding_is_deterministic(record in record()) {
        let first = encode_record(&record, Codec::Binary);
        prop_assert_eq!(&encode_record(&record, Codec::Binary), &first);
        let decoded = decode_record(&first).expect("decodes");
        prop_assert_eq!(&encode_record(&decoded, Codec::Binary), &first);
    }

    /// A log truncated at an arbitrary byte (a torn tail) yields exactly the
    /// frames that fit whole before the cut — decoded records match the
    /// originals, and nothing partial leaks through.
    #[test]
    fn torn_tails_truncate_to_whole_frames(
        records in prop::collection::vec(record(), 1..6),
        cut_seed in 0usize..10_000,
    ) {
        let mut bytes = Vec::new();
        let mut boundaries = Vec::new(); // cumulative end offset of each frame
        for record in &records {
            bytes.extend_from_slice(&encode_frame(&encode_record(record, Codec::Binary)));
            boundaries.push(bytes.len());
        }
        let cut = cut_seed % bytes.len();
        let expect_intact = boundaries.iter().filter(|&&end| end <= cut).count();
        let (frames, consumed) = decode_frames(&bytes[..cut]);
        prop_assert_eq!(frames.len(), expect_intact);
        prop_assert_eq!(consumed, boundaries.get(expect_intact.wrapping_sub(1)).copied().unwrap_or(0));
        for (frame, record) in frames.iter().zip(&records) {
            prop_assert_eq!(&decode_record(frame).expect("intact frame decodes"), record);
        }
    }

    /// A single flipped bit anywhere in the log is caught by the CRC: replay
    /// stops at the damaged frame and every frame before it decodes to its
    /// original record. No bit flip ever produces a *different* record.
    #[test]
    fn bit_flips_are_caught_by_the_crc(
        records in prop::collection::vec(record(), 1..6),
        flip_seed in 0usize..100_000,
        codec_json in 0u32..2,
    ) {
        let codec = if codec_json == 1 { Codec::Json } else { Codec::Binary };
        let mut bytes = Vec::new();
        let mut boundaries = Vec::new();
        for record in &records {
            bytes.extend_from_slice(&encode_frame(&encode_record(record, codec)));
            boundaries.push(bytes.len());
        }
        let flip_at = flip_seed % (bytes.len() * 8);
        bytes[flip_at / 8] ^= 1 << (flip_at % 8);
        let damaged_frame = boundaries.iter().filter(|&&end| end * 8 <= flip_at).count();
        let (frames, _) = decode_frames(&bytes);
        prop_assert_eq!(frames.len(), damaged_frame);
        for (frame, record) in frames.iter().zip(&records) {
            prop_assert_eq!(&decode_record(frame).expect("undamaged frame decodes"), record);
        }
    }
}
