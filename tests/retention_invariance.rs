//! Decision invariance of convergence-horizon retention: for arbitrary
//! schedules × retention policies × prune points × crash points, a pruned
//! store and an unpruned store drive **identical decisions**, and pruning
//! commutes with crash recovery byte-for-byte.
//!
//! The property test generates arbitrary publish/reconcile/resolve schedules
//! over a small fully-trusting confederation (with an optional mid-schedule
//! retirement), and runs the schedule twice:
//!
//! * the **reference** run over an ephemeral `KeepAll` store that never
//!   prunes;
//! * the **pruned** run over a *durable* store under a generated policy
//!   (`ConvergedOnly` or `KeepLastN`), pruning at arbitrary step indices and
//!   crashing (dropping the store, keeping the clients) at an arbitrary
//!   point.
//!
//! Checks: the recovered store is byte-identical to the pre-crash one (prune
//! records replay deterministically); recover-then-prune equals
//! prune-then-recover; every decision in the step log, every durable
//! accept/reject set and every final instance matches the reference run.

use orchestra::{Participant, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TrustPolicy, Tuple, Update};
use orchestra_store::{CentralStore, RetentionPolicy, UpdateStore};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "orchestra-retention-prop-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

const PARTICIPANTS: u32 = 3;

fn policies() -> Vec<TrustPolicy> {
    (1..=PARTICIPANTS)
        .map(|i| {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=PARTICIPANTS {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            policy
        })
        .collect()
}

fn participants() -> Vec<Participant> {
    policies()
        .into_iter()
        .map(|policy| Participant::new(bioinformatics_schema(), ParticipantConfig::new(policy)))
        .collect()
}

/// One step of a generated schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Participant executes an insert-or-modify on a small key space and
    /// publishes it.
    Publish { who: u32, key: u32, value: u32 },
    /// Participant reconciles.
    Reconcile { who: u32 },
    /// Participant resolves every open conflict group, keeping option 0.
    Resolve { who: u32 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1..PARTICIPANTS + 1, 0u32..4, 0u32..3).prop_map(|(who, key, value)| Step::Publish {
            who,
            key,
            value
        }),
        (1..PARTICIPANTS + 1).prop_map(|who| Step::Reconcile { who }),
        (1..PARTICIPANTS + 1).prop_map(|who| Step::Resolve { who }),
    ]
}

fn policy_strategy() -> impl Strategy<Value = RetentionPolicy> {
    // 0 ⇒ ConvergedOnly, 1..=3 ⇒ KeepLastN(n - 1); the vendored proptest
    // has no `Just`, so the constant arm is encoded in the range.
    (0u64..4).prop_map(|n| match n {
        0 => RetentionPolicy::ConvergedOnly,
        n => RetentionPolicy::KeepLastN(n - 1),
    })
}

fn func(key: u32, value: u32) -> Tuple {
    Tuple::of_text(&["rat", &format!("prot{key}"), &format!("fn{value}")])
}

/// Applies one step against a store + client set; decisions are summarised
/// into `log` so two runs can be compared step for step. The last retired
/// participant (if any) is skipped — retirement happens in both runs.
fn apply_step(
    participants: &mut [Participant],
    store: &CentralStore,
    step: &Step,
    retired: Option<u32>,
    log: &mut Vec<String>,
) {
    let who = match step {
        Step::Publish { who, .. } | Step::Reconcile { who } | Step::Resolve { who } => *who,
    };
    if retired == Some(who) {
        return;
    }
    let participant = &mut participants[(who - 1) as usize];
    match step {
        Step::Publish { key, value, .. } => {
            let id = p(who);
            let tuple = func(*key, *value);
            let update = if participant.instance().key_present("Function", &tuple) {
                let existing = participant
                    .instance()
                    .relation_contents("Function")
                    .into_iter()
                    .find(|(k, _)| {
                        *k == orchestra_model::KeyValue::of_text(&["rat", &format!("prot{key}")])
                    })
                    .map(|(_, t)| t);
                match existing {
                    Some(from) if from != tuple => Update::modify("Function", from, tuple, id),
                    _ => return,
                }
            } else {
                Update::insert("Function", tuple, id)
            };
            if participant.execute_transaction(vec![update]).is_ok() {
                let epoch = participant.publish(store).expect("publish succeeds");
                log.push(format!("publish {who} -> {epoch:?}"));
            }
        }
        Step::Reconcile { .. } => {
            let report = participant.reconcile(store).expect("reconcile succeeds");
            let mut accepted = report.accepted.clone();
            accepted.sort();
            let mut rejected = report.rejected.clone();
            rejected.sort();
            let mut deferred = report.deferred.clone();
            deferred.sort();
            log.push(format!(
                "reconcile {who} recno {:?} acc {accepted:?} rej {rejected:?} def {deferred:?}",
                report.recno
            ));
        }
        Step::Resolve { .. } => {
            let groups: Vec<_> =
                participant.deferred_conflicts().iter().map(|g| g.key.clone()).collect();
            if groups.is_empty() {
                return;
            }
            let choices: Vec<orchestra_recon::ResolutionChoice> = groups
                .into_iter()
                .map(|key| orchestra_recon::ResolutionChoice { group: key, chosen_option: Some(0) })
                .collect();
            let outcome =
                participant.resolve_conflicts(store, &choices).expect("resolution succeeds");
            let mut acc = outcome.newly_accepted.clone();
            acc.sort();
            let mut rej = outcome.newly_rejected.clone();
            rej.sort();
            log.push(format!("resolve {who} acc {acc:?} rej {rej:?}"));
        }
    }
}

/// Registers every policy and closes membership — identical setup on both
/// stores, so the frontier semantics (not the pruning) fix late-join
/// behaviour.
fn setup(store: &CentralStore) {
    for policy in policies() {
        store.register_participant(policy);
    }
    store.catalog().close_membership().expect("close membership");
}

/// The per-participant durable accept/reject sets, sorted for comparison.
fn decision_sets(store: &CentralStore) -> Vec<(Vec<String>, Vec<String>)> {
    (1..=PARTICIPANTS)
        .map(|i| {
            let mut acc: Vec<String> =
                store.accepted_set(p(i)).iter().map(|id| id.to_string()).collect();
            acc.sort();
            let mut rej: Vec<String> =
                store.rejected_set(p(i)).iter().map(|id| id.to_string()).collect();
            rej.sort();
            (acc, rej)
        })
        .collect()
}

fn instances_fingerprint(participants: &[Participant]) -> Vec<String> {
    participants.iter().map(|participant| format!("{:?}", participant.instance())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any schedule, retention policy, prune points and crash point:
    /// pruned ≡ unpruned decisions, and prune commutes with recovery.
    #[test]
    fn pruning_never_changes_decisions(
        steps in prop::collection::vec(step_strategy(), 6..40),
        policy in policy_strategy(),
        prune_at in prop::collection::vec(0usize..40, 0..4),
        crash_at in 0usize..40,
        retire_raw in 0usize..80,
    ) {
        let crash_at = crash_at.min(steps.len());
        // A retirement point inside the schedule (participant 3) half the
        // time; past-the-end values mean "never retire".
        let retire_at = (retire_raw < 40).then_some(retire_raw.min(steps.len()));

        // Reference: ephemeral KeepAll store, never pruned, same schedule.
        let reference_store = CentralStore::new(bioinformatics_schema());
        setup(&reference_store);
        let mut reference_clients = participants();
        let mut reference_log = Vec::new();

        // Pruned run: durable store under the generated policy.
        let dir = scratch_dir();
        let store = CentralStore::durable(bioinformatics_schema(), &dir).expect("fresh dir");
        store.set_retention(policy);
        setup(&store);
        let mut clients = participants();
        let mut log = Vec::new();

        let mut retired: Option<u32> = None;
        let mut store = Some(store);
        for (i, step) in steps.iter().enumerate() {
            if retire_at == Some(i) {
                // Retire participant 3 in both runs: it stops pinning the
                // horizon and is skipped from here on.
                reference_store.retire_participant(p(3)).expect("retire succeeds");
                store.as_ref().unwrap().retire_participant(p(3)).expect("retire succeeds");
                retired = Some(3);
            }
            if prune_at.contains(&i) {
                // Prune only the retention store; the reference keeps all.
                store.as_ref().unwrap().prune_to_horizon().expect("prune succeeds");
            }
            if crash_at == i {
                // Crash: the store's memory is lost (clients keep theirs —
                // the store is a separate process). Recovery must be
                // byte-identical, including every prune replay.
                let live = format!("{:?}", store.as_ref().unwrap().catalog());
                // Prune-then-recover ≡ recover-then-prune: an ephemeral twin
                // pruned now must match the recovered store pruned after.
                let twin = store.as_ref().unwrap().clone();
                drop(store.take());
                let recovered = CentralStore::recover(&dir).expect("store recovers");
                prop_assert_eq!(
                    format!("{:?}", recovered.catalog()),
                    live,
                    "recovered durable state diverged"
                );
                recovered.set_retention(policy);
                twin.prune_to_horizon().expect("twin prune succeeds");
                let probe = recovered.clone();
                probe.prune_to_horizon().expect("probe prune succeeds");
                prop_assert_eq!(
                    format!("{:?}", probe.catalog()),
                    format!("{:?}", twin.catalog()),
                    "prune does not commute with recovery"
                );
                store = Some(recovered);
            }
            apply_step(&mut reference_clients, &reference_store, step, retired, &mut reference_log);
            apply_step(&mut clients, store.as_ref().unwrap(), step, retired, &mut log);
        }
        let store = store.take().unwrap();

        // Catch-up: everyone still active reconciles once more, then one
        // final prune on the retention store.
        for i in 1..=PARTICIPANTS {
            let step = Step::Reconcile { who: i };
            apply_step(&mut reference_clients, &reference_store, &step, retired, &mut reference_log);
            apply_step(&mut clients, &store, &step, retired, &mut log);
        }
        let report = store.prune_to_horizon().expect("final prune succeeds");
        prop_assert!(report.horizon >= store.catalog().pruned_through());

        prop_assert_eq!(&log, &reference_log, "decision streams diverged");
        prop_assert_eq!(
            decision_sets(&store),
            decision_sets(&reference_store),
            "durable decision sets diverged"
        );
        prop_assert_eq!(
            instances_fingerprint(&clients),
            instances_fingerprint(&reference_clients),
            "final instances diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Deterministic end-to-end smoke of the same property at a fixed schedule
/// whose history goes dead on purpose: one writer cycles a value through
/// insert → delete → re-insert while everyone keeps up, so superseded
/// prefixes leave the pinned-ancestor closure and the pruned store actually
/// removes log entries (the proptest cannot guarantee its random schedules
/// converge).
#[test]
fn a_converging_schedule_actually_prunes() {
    let reference_store = CentralStore::new(bioinformatics_schema());
    setup(&reference_store);
    let mut reference_clients = participants();

    let store =
        CentralStore::new(bioinformatics_schema()).with_retention(RetentionPolicy::ConvergedOnly);
    setup(&store);
    let mut clients = participants();

    let tuple = func(0, 0);
    let mut log = Vec::new();
    let mut reference_log = Vec::new();
    let mut pruned_total = 0u64;
    for round in 0..10u32 {
        // Participant 1 toggles the tuple's existence; the others follow.
        for (participants, store, log) in [
            (&mut reference_clients, &reference_store, &mut reference_log),
            (&mut clients, &store, &mut log),
        ] {
            let writer = &mut participants[0];
            let update = if writer.instance().contains_tuple_exact("Function", &tuple) {
                Update::delete("Function", tuple.clone(), p(1))
            } else {
                Update::insert("Function", tuple.clone(), p(1))
            };
            writer.execute_transaction(vec![update]).expect("toggle applies");
            writer.publish(store).expect("publish succeeds");
            log.push(format!("toggle round {round}"));
            for who in 1..=PARTICIPANTS {
                apply_step(participants, store, &Step::Reconcile { who }, None, log);
            }
        }
        pruned_total += store.prune_to_horizon().unwrap().pruned_log_entries;
    }
    assert_eq!(log, reference_log, "decision streams diverged");
    assert!(pruned_total > 0, "superseded toggles must be pruned");
    assert!(store.catalog().log_len() < reference_store.catalog().log_len());
    assert_eq!(decision_sets(&store), decision_sets(&reference_store));
    // Only the live suffix survives: the last insert plus the undecided /
    // recent window, never the whole toggle history.
    assert!(store.catalog().log_len() <= 3, "live set was {}", store.catalog().log_len());
}
