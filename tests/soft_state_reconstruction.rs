//! The paper's soft-state claim: everything a participant needs besides its
//! trust policy lives in the update store, so a participant that lost its
//! local state can be reconstructed by reconciling from scratch against the
//! store. These tests exercise that claim and the JSON persistence of
//! instances.

use orchestra::{Participant, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TrustPolicy, Tuple, Update};
use orchestra_storage::persist;
use orchestra_store::{CentralStore, UpdateStore};

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

fn policies(n: u32) -> Vec<TrustPolicy> {
    (1..=n)
        .map(|i| {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=n {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            policy
        })
        .collect()
}

#[test]
fn a_participant_can_be_rebuilt_from_the_update_store() {
    let schema = bioinformatics_schema();
    let store = CentralStore::new(schema.clone());
    let pols = policies(3);
    for policy in &pols {
        store.register_participant(policy.clone());
    }
    let mut p1 = Participant::new(schema.clone(), ParticipantConfig::new(pols[0].clone()));
    let mut p2 = Participant::new(schema.clone(), ParticipantConfig::new(pols[1].clone()));
    let mut p3 = Participant::new(schema.clone(), ParticipantConfig::new(pols[2].clone()));

    // Everyone publishes non-conflicting facts; p2 also revises one of p3's.
    p3.execute_transaction(vec![Update::insert(
        "Function",
        func("rat", "prot1", "cell-metab"),
        p(3),
    )])
    .unwrap();
    p3.publish_and_reconcile(&store).unwrap();
    p2.publish_and_reconcile(&store).unwrap();
    p2.execute_transaction(vec![Update::modify(
        "Function",
        func("rat", "prot1", "cell-metab"),
        func("rat", "prot1", "immune"),
        p(2),
    )])
    .unwrap();
    p2.execute_transaction(vec![Update::insert(
        "Function",
        func("mouse", "prot2", "dna-repair"),
        p(2),
    )])
    .unwrap();
    p2.publish_and_reconcile(&store).unwrap();
    let original_report = p1.publish_and_reconcile(&store).unwrap();
    assert!(!original_report.accepted.is_empty());

    // p1 loses its local state entirely. A fresh participant is rebuilt from
    // the store by replaying its accepted transactions in publication order.
    let rebuilt = Participant::rebuild_from_store(
        schema.clone(),
        ParticipantConfig::new(pols[0].clone()),
        &store,
    )
    .unwrap();

    // The rebuilt instance matches the original's.
    assert_eq!(
        p1.instance().relation_contents("Function"),
        rebuilt.instance().relation_contents("Function"),
    );
    assert_eq!(
        p1.instance().relation_contents("XRef"),
        rebuilt.instance().relation_contents("XRef"),
    );
}

#[test]
fn instances_round_trip_through_json_persistence() {
    let schema = bioinformatics_schema();
    let store = CentralStore::new(schema.clone());
    let pols = policies(2);
    for policy in &pols {
        store.register_participant(policy.clone());
    }
    let mut p1 = Participant::new(schema.clone(), ParticipantConfig::new(pols[0].clone()));
    p1.execute_transaction(vec![
        Update::insert("Function", func("human", "p53", "transcription-factor"), p(1)),
        Update::insert("XRef", Tuple::of_text(&["human", "p53", "pdb", "1TUP"]), p(1)),
    ])
    .unwrap();
    p1.publish_and_reconcile(&store).unwrap();

    // Persist, reload, and hand the instance to a new participant as its
    // initial state.
    let json = persist::database_to_json(p1.instance()).unwrap();
    let restored = persist::database_from_json(&json).unwrap();
    assert_eq!(&restored, p1.instance());

    let resumed =
        Participant::new(schema, ParticipantConfig::new(pols[0].clone()).with_instance(restored));
    assert_eq!(
        resumed.instance().relation_contents("Function"),
        p1.instance().relation_contents("Function")
    );
}

#[test]
fn decisions_survive_in_the_store_across_participant_restarts() {
    // A rejected transaction stays rejected for a rebuilt participant: its
    // rejection is durable store state, not client soft state.
    let schema = bioinformatics_schema();
    let store = CentralStore::new(schema.clone());
    let pols = policies(2);
    for policy in &pols {
        store.register_participant(policy.clone());
    }
    let mut p1 = Participant::new(schema.clone(), ParticipantConfig::new(pols[0].clone()));
    let mut p2 = Participant::new(schema.clone(), ParticipantConfig::new(pols[1].clone()));

    // p1 publishes its own value first, then p2 publishes a divergent one.
    p1.execute_transaction(vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))])
        .unwrap();
    p1.publish_and_reconcile(&store).unwrap();
    p2.execute_transaction(vec![Update::insert("Function", func("rat", "prot1", "b"), p(2))])
        .unwrap();
    p2.publish_and_reconcile(&store).unwrap();

    // p1 reconciles and rejects p2's divergent value (it conflicts with p1's
    // own accepted state).
    let report = p1.reconcile(&store).unwrap();
    assert_eq!(report.rejected.len(), 1);
    let rejected_id = report.rejected[0];
    assert!(store.rejected_set(p(1)).contains(&rejected_id));

    // A rebuilt p1 replays its own accepted insertion but not the rejected
    // transaction; a follow-up reconciliation does not resurrect it either.
    let mut rebuilt =
        Participant::rebuild_from_store(schema, ParticipantConfig::new(pols[0].clone()), &store)
            .unwrap();
    assert!(rebuilt.instance().contains_tuple_exact("Function", &func("rat", "prot1", "a")));
    assert!(!rebuilt.instance().contains_tuple_exact("Function", &func("rat", "prot1", "b")));
    rebuilt.reconcile(&store).unwrap();
    assert!(!rebuilt.instance().contains_tuple_exact("Function", &func("rat", "prot1", "b")));
}
