//! Store-equivalence tests.
//!
//! The scripted smoke test guards the contract on a fixed scenario: on a
//! small fully trusting confederation, the centralised and DHT-based update
//! stores must produce *identical* final instances, tuple for tuple — not
//! merely the same summary statistics. CI relies on this invariant staying
//! cheap to check.
//!
//! The property test generalises it: randomized interleaved
//! publish/reconcile/resolve schedules must yield identical final instances
//! and identical accept/reject/defer decisions across the incremental
//! central store, the rescan-baseline central store, the DHT store
//! (client-centric), and the DHT store's network-centric mode.

use orchestra::{CdssSystem, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TrustPolicy, Tuple, Update};
use orchestra_store::{CentralStore, DhtStore, UpdateStore};

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

fn xref(org: &str, prot: &str, db: &str, accession: &str) -> Tuple {
    Tuple::of_text(&[org, prot, db, accession])
}

/// Drives a fixed script over a three-participant, fully trusting
/// confederation: non-conflicting inserts, a cross-reference, a revision,
/// and one genuine conflict (two participants writing divergent values for
/// the same key in the same reconciliation round).
fn drive<S: UpdateStore>(store: S) -> CdssSystem<S> {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema, store);
    for i in 1..=3u32 {
        let mut policy = TrustPolicy::new(p(i));
        for j in 1..=3u32 {
            if i != j {
                policy = policy.trusting(p(j), 1u32);
            }
        }
        system.add_participant(ParticipantConfig::new(policy)).unwrap();
    }

    // Round 1: independent facts from every participant.
    system
        .execute(p(1), vec![Update::insert("Function", func("human", "prot1", "kinase"), p(1))])
        .unwrap();
    system
        .execute(
            p(2),
            vec![
                Update::insert("Function", func("human", "prot2", "ligase"), p(2)),
                Update::insert("XRef", xref("human", "prot2", "pdb", "1ABC"), p(2)),
            ],
        )
        .unwrap();
    system
        .execute(p(3), vec![Update::insert("Function", func("rat", "prot3", "transport"), p(3))])
        .unwrap();
    for i in 1..=3u32 {
        system.publish_and_reconcile(p(i)).unwrap();
    }

    // Round 2: a revision plus a divergent pair of writes to one fresh key
    // (p2 and p3 disagree about prot4, so equal trust must defer both).
    system
        .execute(
            p(1),
            vec![Update::modify(
                "Function",
                func("human", "prot1", "kinase"),
                func("human", "prot1", "phosphatase"),
                p(1),
            )],
        )
        .unwrap();
    system
        .execute(p(2), vec![Update::insert("Function", func("human", "prot4", "storage"), p(2))])
        .unwrap();
    system
        .execute(p(3), vec![Update::insert("Function", func("human", "prot4", "signaling"), p(3))])
        .unwrap();
    for i in 1..=3u32 {
        system.publish_and_reconcile(p(i)).unwrap();
    }
    // A final catch-up round so early reconciliations observe later
    // publications.
    for i in 1..=3u32 {
        system.reconcile(p(i)).unwrap();
    }
    system
}

#[test]
fn central_and_dht_final_instances_are_identical() {
    let central = drive(CentralStore::new(bioinformatics_schema()));
    let dht = drive(DhtStore::new(bioinformatics_schema()));

    for i in 1..=3u32 {
        for relation in ["Function", "XRef"] {
            let central_rows =
                central.participant(p(i)).unwrap().instance().relation_contents(relation);
            let dht_rows = dht.participant(p(i)).unwrap().instance().relation_contents(relation);
            assert_eq!(
                central_rows, dht_rows,
                "participant {i} diverged between stores on relation {relation}"
            );
        }
    }
}

mod random_schedules {
    use super::*;
    use orchestra::{Participant, ReconcileReport};
    use orchestra_model::{KeyValue, TransactionId};
    use orchestra_recon::ResolutionChoice;
    use orchestra_store::RetrievalMode;
    use proptest::prelude::*;

    const PARTICIPANTS: u32 = 4;
    const KEY_POOL: usize = 6;
    const VALUE_POOL: usize = 4;

    /// One step of a schedule: `(participant, action, key, value)`. The
    /// action decodes as 0-1 = execute a transaction, 2 = publish,
    /// 3 = publish + reconcile, 4 = resolve open conflicts.
    type Op = (usize, u8, usize, usize);

    /// Everything observable about a confederation after a schedule ran:
    /// per-participant instance contents, durable accept/reject records, and
    /// soft deferred sets.
    #[derive(Debug, PartialEq, Eq)]
    struct Snapshot {
        instances: Vec<Vec<(KeyValue, Tuple)>>,
        accepted: Vec<Vec<TransactionId>>,
        rejected: Vec<Vec<TransactionId>>,
        deferred: Vec<Vec<TransactionId>>,
    }

    fn policies() -> Vec<TrustPolicy> {
        (1..=PARTICIPANTS)
            .map(|i| {
                let mut policy = TrustPolicy::new(p(i));
                for j in 1..=PARTICIPANTS {
                    if i != j {
                        policy = policy.trusting(p(j), 1u32);
                    }
                }
                policy
            })
            .collect()
    }

    /// Executes a deterministic state-dependent edit: insert the key if the
    /// participant doesn't have it, revise it otherwise. Failures (e.g. a
    /// no-op modify) are ignored, as in the workload driver.
    fn execute(participant: &mut Participant, key: usize, value: usize) {
        let id = participant.id();
        let prot = format!("prot{key}");
        let new_tuple = func("org", &prot, &format!("f{value}"));
        let existing =
            participant.instance().value_at("Function", &KeyValue::of_text(&["org", &prot]));
        let update = match existing {
            None => Update::insert("Function", new_tuple, id),
            Some(current) => {
                if current == new_tuple {
                    return;
                }
                Update::modify("Function", current, new_tuple, id)
            }
        };
        let _ = participant.execute_transaction(vec![update]);
    }

    fn resolve<S: UpdateStore>(participant: &mut Participant, store: &S, value: usize) {
        let groups: Vec<_> = participant
            .deferred_conflicts()
            .iter()
            .map(|g| (g.key.clone(), g.options.len()))
            .collect();
        if groups.is_empty() {
            return;
        }
        let choices: Vec<ResolutionChoice> = groups
            .into_iter()
            .map(|(key, options)| ResolutionChoice {
                group: key,
                // Deterministic but schedule-dependent choice; `options` is
                // identical across stores because decisions are.
                chosen_option: Some(value % options),
            })
            .collect();
        let _ = participant.resolve_conflicts(store, &choices);
    }

    /// Runs a schedule against a store, with the reconciliation step
    /// abstracted so the DHT's network-centric mode can ride the same
    /// driver. Ends with a catch-up publish+reconcile for every participant.
    fn run_schedule<S: UpdateStore>(
        store: S,
        ops: &[Op],
        reconcile: impl Fn(&mut Participant, &S) -> ReconcileReport,
    ) -> Snapshot {
        let schema = bioinformatics_schema();
        let mut participants: Vec<Participant> = policies()
            .into_iter()
            .map(|policy| {
                store.register_participant(policy.clone());
                Participant::new(schema.clone(), ParticipantConfig::new(policy))
            })
            .collect();

        for &(who, action, key, value) in ops {
            let participant = &mut participants[who % PARTICIPANTS as usize];
            match action % 5 {
                0 | 1 => execute(participant, key % KEY_POOL, value % VALUE_POOL),
                2 => {
                    participant.publish(&store).unwrap();
                }
                3 => {
                    participant.publish(&store).unwrap();
                    reconcile(participant, &store);
                }
                _ => resolve(participant, &store, value),
            }
        }
        for participant in &mut participants {
            participant.publish(&store).unwrap();
            reconcile(participant, &store);
        }

        let sorted = |mut v: Vec<TransactionId>| {
            v.sort();
            v
        };
        Snapshot {
            instances: participants
                .iter()
                .map(|p| p.instance().relation_contents("Function"))
                .collect(),
            accepted: participants
                .iter()
                .map(|p| sorted(store.accepted_set(p.id()).iter().copied().collect()))
                .collect(),
            rejected: participants
                .iter()
                .map(|p| sorted(store.rejected_set(p.id()).iter().copied().collect()))
                .collect(),
            deferred: participants
                .iter()
                .map(|p| sorted(p.soft_state().deferred().keys().copied().collect()))
                .collect(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn all_store_modes_agree_on_random_schedules(
            ops in prop::collection::vec(
                (0..PARTICIPANTS as usize, 0..5u8, 0..KEY_POOL, 0..VALUE_POOL),
                1..40,
            )
        ) {
            let client_centric = |p: &mut Participant, s: &_| p.reconcile(s).unwrap();
            let central = run_schedule(
                CentralStore::new(bioinformatics_schema()),
                &ops,
                |p, s| p.reconcile(s).unwrap(),
            );
            let rescan = run_schedule(
                CentralStore::with_retrieval(
                    bioinformatics_schema(),
                    RetrievalMode::RescanBaseline,
                ),
                &ops,
                |p, s| p.reconcile(s).unwrap(),
            );
            let dht = run_schedule(
                DhtStore::new(bioinformatics_schema()),
                &ops,
                client_centric,
            );
            let network_centric = run_schedule(
                DhtStore::new(bioinformatics_schema()),
                &ops,
                |p: &mut Participant, s: &DhtStore| p.reconcile_network_centric(s).unwrap(),
            );

            prop_assert_eq!(&central, &rescan, "rescan baseline diverged");
            prop_assert_eq!(&central, &dht, "dht store diverged");
            prop_assert_eq!(&central, &network_centric, "network-centric mode diverged");
        }
    }
}

#[test]
fn scripted_confederation_converges_where_it_should() {
    let system = drive(CentralStore::new(bioinformatics_schema()));

    // The four uncontested facts (prot1 revised, prot2 + its xref, prot3)
    // are visible everywhere; the divergent prot4 writes are deferred, so
    // at most one of them may appear in any instance.
    for i in 1..=3u32 {
        let instance = system.participant(p(i)).unwrap().instance();
        let functions = instance.relation_contents("Function");
        assert!(
            functions.iter().any(|(_, t)| *t == func("human", "prot1", "phosphatase")),
            "participant {i} missed the prot1 revision"
        );
        assert!(
            functions.iter().any(|(_, t)| *t == func("human", "prot2", "ligase")),
            "participant {i} missed prot2"
        );
        assert!(
            functions.iter().any(|(_, t)| *t == func("rat", "prot3", "transport")),
            "participant {i} missed prot3"
        );
        assert_eq!(instance.relation_contents("XRef").len(), 1, "participant {i} missed the xref");
    }
}
