//! Smoke test guarding the store-equivalence contract: on a small fully
//! trusting confederation, the centralised and DHT-based update stores must
//! produce *identical* final instances, tuple for tuple — not merely the
//! same summary statistics. CI relies on this invariant staying cheap to
//! check, so the scenario is fixed and scripted rather than workload-driven.

use orchestra::{CdssSystem, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TrustPolicy, Tuple, Update};
use orchestra_store::{CentralStore, DhtStore, UpdateStore};

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

fn xref(org: &str, prot: &str, db: &str, accession: &str) -> Tuple {
    Tuple::of_text(&[org, prot, db, accession])
}

/// Drives a fixed script over a three-participant, fully trusting
/// confederation: non-conflicting inserts, a cross-reference, a revision,
/// and one genuine conflict (two participants writing divergent values for
/// the same key in the same reconciliation round).
fn drive<S: UpdateStore>(store: S) -> CdssSystem<S> {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema, store);
    for i in 1..=3u32 {
        let mut policy = TrustPolicy::new(p(i));
        for j in 1..=3u32 {
            if i != j {
                policy = policy.trusting(p(j), 1u32);
            }
        }
        system.add_participant(ParticipantConfig::new(policy));
    }

    // Round 1: independent facts from every participant.
    system
        .execute(p(1), vec![Update::insert("Function", func("human", "prot1", "kinase"), p(1))])
        .unwrap();
    system
        .execute(
            p(2),
            vec![
                Update::insert("Function", func("human", "prot2", "ligase"), p(2)),
                Update::insert("XRef", xref("human", "prot2", "pdb", "1ABC"), p(2)),
            ],
        )
        .unwrap();
    system
        .execute(p(3), vec![Update::insert("Function", func("rat", "prot3", "transport"), p(3))])
        .unwrap();
    for i in 1..=3u32 {
        system.publish_and_reconcile(p(i)).unwrap();
    }

    // Round 2: a revision plus a divergent pair of writes to one fresh key
    // (p2 and p3 disagree about prot4, so equal trust must defer both).
    system
        .execute(
            p(1),
            vec![Update::modify(
                "Function",
                func("human", "prot1", "kinase"),
                func("human", "prot1", "phosphatase"),
                p(1),
            )],
        )
        .unwrap();
    system
        .execute(p(2), vec![Update::insert("Function", func("human", "prot4", "storage"), p(2))])
        .unwrap();
    system
        .execute(p(3), vec![Update::insert("Function", func("human", "prot4", "signaling"), p(3))])
        .unwrap();
    for i in 1..=3u32 {
        system.publish_and_reconcile(p(i)).unwrap();
    }
    // A final catch-up round so early reconciliations observe later
    // publications.
    for i in 1..=3u32 {
        system.reconcile(p(i)).unwrap();
    }
    system
}

#[test]
fn central_and_dht_final_instances_are_identical() {
    let central = drive(CentralStore::new(bioinformatics_schema()));
    let dht = drive(DhtStore::new(bioinformatics_schema()));

    for i in 1..=3u32 {
        for relation in ["Function", "XRef"] {
            let central_rows =
                central.participant(p(i)).unwrap().instance().relation_contents(relation);
            let dht_rows = dht.participant(p(i)).unwrap().instance().relation_contents(relation);
            assert_eq!(
                central_rows, dht_rows,
                "participant {i} diverged between stores on relation {relation}"
            );
        }
    }
}

#[test]
fn scripted_confederation_converges_where_it_should() {
    let system = drive(CentralStore::new(bioinformatics_schema()));

    // The four uncontested facts (prot1 revised, prot2 + its xref, prot3)
    // are visible everywhere; the divergent prot4 writes are deferred, so
    // at most one of them may appear in any instance.
    for i in 1..=3u32 {
        let instance = system.participant(p(i)).unwrap().instance();
        let functions = instance.relation_contents("Function");
        assert!(
            functions.iter().any(|(_, t)| *t == func("human", "prot1", "phosphatase")),
            "participant {i} missed the prot1 revision"
        );
        assert!(
            functions.iter().any(|(_, t)| *t == func("human", "prot2", "ligase")),
            "participant {i} missed prot2"
        );
        assert!(
            functions.iter().any(|(_, t)| *t == func("rat", "prot3", "transport")),
            "participant {i} missed prot3"
        );
        assert_eq!(instance.relation_contents("XRef").len(), 1, "participant {i} missed the xref");
    }
}
