//! Integration tests for the network-centric reconciliation mode: identical
//! decisions to the client-centric mode, at a different cost distribution.

use orchestra::{Participant, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TrustPolicy, Tuple, Update};
use orchestra_store::{DhtStore, UpdateStore};

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

/// Builds a DHT store with `n` mutually trusting participants and a spread of
/// published transactions, including a conflict and a revision chain.
fn populated_store(n: u32) -> (DhtStore, Vec<TrustPolicy>) {
    let store = DhtStore::new(bioinformatics_schema());
    let mut policies = Vec::new();
    for i in 1..=n {
        let mut policy = TrustPolicy::new(p(i));
        for j in 1..=n {
            if i != j {
                policy = policy.trusting(p(j), 1u32);
            }
        }
        store.register_participant(policy.clone());
        policies.push(policy);
    }
    // p2 and p3 disagree about rat/prot1; p4 publishes an independent fact
    // and then revises it; p5 publishes an uncontroversial fact.
    let t = |i: u32, j: u64, ups: Vec<Update>| {
        orchestra_model::Transaction::from_parts(p(i), j, ups).unwrap()
    };
    store
        .publish(
            p(2),
            vec![t(2, 0, vec![Update::insert("Function", func("rat", "prot1", "immune"), p(2))])],
        )
        .unwrap();
    store
        .publish(
            p(3),
            vec![t(
                3,
                0,
                vec![Update::insert("Function", func("rat", "prot1", "cell-resp"), p(3))],
            )],
        )
        .unwrap();
    store
        .publish(
            p(4),
            vec![
                t(
                    4,
                    0,
                    vec![Update::insert("Function", func("mouse", "prot2", "dna-repair"), p(4))],
                ),
                t(
                    4,
                    1,
                    vec![Update::modify(
                        "Function",
                        func("mouse", "prot2", "dna-repair"),
                        func("mouse", "prot2", "rna-splicing"),
                        p(4),
                    )],
                ),
            ],
        )
        .unwrap();
    if n >= 5 {
        store
            .publish(
                p(5),
                vec![t(
                    5,
                    0,
                    vec![Update::insert(
                        "Function",
                        func("yeast", "cdc28", "cell-cycle-control"),
                        p(5),
                    )],
                )],
            )
            .unwrap();
    }
    (store, policies)
}

#[test]
fn network_centric_reconciliation_reaches_the_same_decisions() {
    let schema = bioinformatics_schema();

    let (store_a, policies) = populated_store(5);
    let mut client = Participant::new(schema.clone(), ParticipantConfig::new(policies[0].clone()));
    let client_report = client.reconcile(&store_a).unwrap();

    let (store_b, policies) = populated_store(5);
    let mut network = Participant::new(schema.clone(), ParticipantConfig::new(policies[0].clone()));
    let network_report = network.reconcile_network_centric(&store_b).unwrap();

    // Identical decisions...
    let mut a = client_report.accepted.clone();
    let mut b = network_report.accepted.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(client_report.rejected.len(), network_report.rejected.len());
    let mut a = client_report.deferred.clone();
    let mut b = network_report.deferred.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);

    // ...and identical resulting instances.
    assert_eq!(
        client.instance().relation_contents("Function"),
        network.instance().relation_contents("Function")
    );
    // The divergent rat/prot1 insertions must have been deferred in both
    // modes (equal trust, no unique winner).
    assert_eq!(client_report.deferred.len(), 2);
    assert_eq!(client.deferred_conflicts().len(), network.deferred_conflicts().len());
}

#[test]
fn network_centric_mode_trades_messages_for_client_work() {
    let schema = bioinformatics_schema();

    let (store_a, policies) = populated_store(5);
    let mut client = Participant::new(schema.clone(), ParticipantConfig::new(policies[0].clone()));
    client.reconcile(&store_a).unwrap();
    let client_messages = store_a.network_stats().messages;

    let (store_b, policies) = populated_store(5);
    let mut network = Participant::new(schema.clone(), ParticipantConfig::new(policies[0].clone()));
    let report = network.reconcile_network_centric(&store_b).unwrap();
    let network_messages = store_b.network_stats().messages;

    // Figure 3's trade-off: the network-centric mode sends more messages.
    assert!(
        network_messages > client_messages,
        "network-centric sent {network_messages} messages, client-centric {client_messages}"
    );
    // Its store time reflects the extra distribution traffic.
    assert!(report.timing.store > std::time::Duration::ZERO);
}

#[test]
fn network_centric_mode_composes_with_later_client_centric_runs() {
    // A participant can switch modes between reconciliations without
    // corrupting its state: decisions recorded by one mode are honoured by
    // the other.
    let schema = bioinformatics_schema();
    let (store, policies) = populated_store(4);
    let mut participant =
        Participant::new(schema.clone(), ParticipantConfig::new(policies[0].clone()));
    let first = participant.reconcile_network_centric(&store).unwrap();
    assert!(!first.accepted.is_empty());

    // New publication afterwards.
    let t = orchestra_model::Transaction::from_parts(
        p(4),
        2,
        vec![Update::insert("Function", func("zebrafish", "shh", "signal-transduction"), p(4))],
    )
    .unwrap();
    store.publish(p(4), vec![t.clone()]).unwrap();

    let second = participant.reconcile(&store).unwrap();
    assert!(second.accepted.contains(&t.id()));
    // Previously accepted transactions are not replayed.
    assert!(!second.accepted.contains(&first.accepted[0]));
}
