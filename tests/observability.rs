//! Workspace-level guarantees of the observability layer (PR 10):
//!
//! * **Determinism** — a trace captured under the virtual clock is a pure
//!   function of the schedule: two identical service runs export
//!   byte-identical traces, and the fabric capture is reproducible too.
//! * **Decision invariance** — turning the tracer on changes no decision:
//!   fingerprints, session counts and state ratios are identical with
//!   tracing enabled and disabled, for both the service and fabric drivers.
//! * **Near-zero disabled cost** — a disabled tracer reduces every span and
//!   event call to one `Option` check; a comparative microbench pins that
//!   below the enabled tracer's cost.

use orchestra_model::schema::bioinformatics_schema;
use orchestra_obs::{export, Obs};
use orchestra_store::CentralStore;
use orchestra_workload::{
    run_churn_scale, run_churn_scale_fabric, run_churn_scale_fabric_observed,
    run_churn_scale_observed, ScaleConfig, ScaleDriver,
};

/// A schedule small enough for debug-build CI but large enough to exercise
/// publish fan-out, sessions, batching and the final catch-up wave.
fn mini_config() -> ScaleConfig {
    let mut config = ScaleConfig::quick();
    config.participants = 10;
    config.rounds = 2;
    config.service_max_open_sessions = 8;
    config
}

#[test]
fn identical_service_runs_export_byte_identical_traces() {
    let run = || {
        let obs = Obs::enabled();
        let result = run_churn_scale_observed(
            CentralStore::new(bioinformatics_schema()),
            &mini_config(),
            ScaleDriver::Service,
            &obs,
        );
        (obs.tracer.export(), result.decision_fingerprint)
    };
    let (trace_a, fingerprint_a) = run();
    let (trace_b, fingerprint_b) = run();
    assert_eq!(fingerprint_a, fingerprint_b);
    assert_eq!(trace_a, trace_b, "virtual-clock traces must be deterministic");
    // The capture is a real trace, not an empty header: it parses, and the
    // service-side vocabulary is present.
    let events = export::parse_text(&trace_a).unwrap();
    assert!(!events.is_empty());
    for name in ["service.publish_phase", "service.reconcile_phase", "session.begin", "publish"] {
        assert!(events.iter().any(|e| e.name == name), "trace lacks {name} events");
    }
}

#[test]
fn fabric_trace_capture_is_deterministic_and_shard_stamped() {
    let run = || {
        let obs = Obs::enabled();
        let result = run_churn_scale_fabric_observed(&mini_config(), &obs);
        (obs.tracer.export(), result.decision_fingerprint)
    };
    let (trace_a, fingerprint_a) = run();
    let (trace_b, fingerprint_b) = run();
    assert_eq!(fingerprint_a, fingerprint_b);
    assert_eq!(trace_a, trace_b);
    let events = export::parse_text(&trace_a).unwrap();
    let shards = mini_config().fabric_shards as u64;
    for shard in 0..shards {
        assert!(
            events
                .iter()
                .any(|e| e.fields.iter().any(|(k, v)| k.as_str() == "shard" && *v == shard)),
            "no trace event stamped shard={shard}"
        );
    }
}

#[test]
fn tracing_changes_no_decisions() {
    let config = mini_config();

    let dark =
        run_churn_scale(CentralStore::new(bioinformatics_schema()), &config, ScaleDriver::Service);
    let lit = run_churn_scale_observed(
        CentralStore::new(bioinformatics_schema()),
        &config,
        ScaleDriver::Service,
        &Obs::enabled(),
    );
    assert_eq!(dark.decision_fingerprint, lit.decision_fingerprint);
    assert_eq!(dark.sessions, lit.sessions);
    assert_eq!(dark.state_ratio, lit.state_ratio);

    let dark_fabric = run_churn_scale_fabric(&config);
    let lit_fabric = run_churn_scale_fabric_observed(&config, &Obs::enabled());
    assert_eq!(dark_fabric.decision_fingerprint, lit_fabric.decision_fingerprint);
    assert_eq!(dark_fabric.sessions, lit_fabric.sessions);
    assert_eq!(dark_fabric.state_ratio, lit_fabric.state_ratio);
    // And they all agree with each other — the service and fabric drivers
    // replay one schedule.
    assert_eq!(dark.decision_fingerprint, dark_fabric.decision_fingerprint);
}

#[test]
fn disabled_tracer_costs_no_more_than_an_option_check() {
    const ITERS: u64 = 200_000;
    let time = |obs: &Obs| {
        let start = std::time::Instant::now();
        for i in 0..ITERS {
            let span = obs.tracer.span("bench.span", &[("i", i)]);
            span.event("bench.event", &[("i", i)]);
        }
        start.elapsed()
    };
    // Warm up allocators and caches on a throwaway enabled run.
    let _ = time(&Obs::enabled());

    let disabled = time(&Obs::disabled());
    let enabled_obs = Obs::enabled();
    let enabled = time(&enabled_obs);

    assert_eq!(enabled_obs.tracer.len(), 3 * ITERS as usize, "enabled run records 3 events/iter");
    // The disabled path does no locking, no allocation and no timestamping;
    // it must not cost more than the enabled path that does all three. (A
    // generous relative bound keeps this robust on noisy CI hosts.)
    assert!(
        disabled <= enabled,
        "disabled tracer ({disabled:?}) slower than enabled tracer ({enabled:?})"
    );
}
