//! Property-based tests over the core invariants of the data model and the
//! reconciliation semantics.

use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{
    flatten, ParticipantId, Priority, ReconciliationId, Schema, Transaction, Tuple, Update,
};
use orchestra_recon::{CandidateTransaction, ReconcileEngine, ReconcileInput, SoftState};
use orchestra_storage::Database;
use proptest::prelude::*;

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

fn func(key: u8, value: u8) -> Tuple {
    Tuple::of_text(&["organism", &format!("prot{key}"), &format!("fn{value}")])
}

/// A compact description of a random update against a small key/value
/// domain, expanded into a real [`Update`] against the current state of a
/// scratch instance so that the generated sequence is always applicable.
#[derive(Debug, Clone)]
enum Action {
    Insert { key: u8, value: u8 },
    Revise { key: u8, value: u8 },
    Remove { key: u8 },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..6, 0u8..5).prop_map(|(key, value)| Action::Insert { key, value }),
        (0u8..6, 0u8..5).prop_map(|(key, value)| Action::Revise { key, value }),
        (0u8..6).prop_map(|key| Action::Remove { key }),
    ]
}

/// Expands a list of actions into a sequence of applicable updates (relative
/// to an initially empty instance), skipping actions that do not apply.
fn realise(actions: &[Action], origin: ParticipantId, schema: &Schema) -> Vec<Update> {
    let mut instance = Database::new(schema.clone());
    let mut updates = Vec::new();
    for action in actions {
        let update = match action {
            Action::Insert { key, value } => {
                let t = func(*key, *value);
                let key_value = schema.relation("Function").unwrap().key_of(&t);
                if instance.value_at("Function", &key_value).is_some() {
                    continue;
                }
                Update::insert("Function", t, origin)
            }
            Action::Revise { key, value } => {
                let probe = func(*key, 0);
                let key_value = schema.relation("Function").unwrap().key_of(&probe);
                match instance.value_at("Function", &key_value) {
                    Some(existing) => {
                        let to = func(*key, *value);
                        if existing == to {
                            continue;
                        }
                        Update::modify("Function", existing, to, origin)
                    }
                    None => continue,
                }
            }
            Action::Remove { key } => {
                let probe = func(*key, 0);
                let key_value = schema.relation("Function").unwrap().key_of(&probe);
                match instance.value_at("Function", &key_value) {
                    Some(existing) => Update::delete("Function", existing, origin),
                    None => continue,
                }
            }
        };
        instance.apply_update(&update).expect("realised updates apply");
        updates.push(update);
    }
    updates
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Applying a flattened sequence produces exactly the same instance as
    /// applying the original sequence step by step.
    #[test]
    fn flatten_preserves_the_net_effect(actions in prop::collection::vec(action_strategy(), 0..40)) {
        let schema = bioinformatics_schema();
        let updates = realise(&actions, p(1), &schema);

        let mut sequential = Database::new(schema.clone());
        sequential.apply_all(&updates).expect("original sequence applies");

        let mut flattened_instance = Database::new(schema.clone());
        let flat = flatten(&schema, &updates);
        flattened_instance.apply_all(&flat).expect("flattened sequence applies");

        prop_assert_eq!(
            sequential.relation_contents("Function"),
            flattened_instance.relation_contents("Function")
        );
    }

    /// Flattening is idempotent: flattening an already flattened sequence
    /// changes nothing.
    #[test]
    fn flatten_is_idempotent(actions in prop::collection::vec(action_strategy(), 0..40)) {
        let schema = bioinformatics_schema();
        let updates = realise(&actions, p(1), &schema);
        let once = flatten(&schema, &updates);
        let twice = flatten(&schema, &once);
        prop_assert_eq!(once, twice);
    }

    /// A flattened sequence never contains two updates writing or reading the
    /// same key (they are mutually independent).
    #[test]
    fn flattened_updates_are_per_key_independent(actions in prop::collection::vec(action_strategy(), 0..40)) {
        let schema = bioinformatics_schema();
        let updates = realise(&actions, p(1), &schema);
        let flat = flatten(&schema, &updates);
        let rel = schema.relation("Function").unwrap();
        let mut seen = std::collections::HashSet::new();
        for u in &flat {
            if let Some(read) = u.read_key(rel) {
                prop_assert!(seen.insert(("r", read.clone())) || !seen.contains(&("r", read)));
            }
        }
        // Written keys must be unique across the flattened set.
        let mut written = std::collections::HashSet::new();
        for u in &flat {
            if let Some(key) = u.written_key(rel) {
                prop_assert!(written.insert(key), "duplicate written key in flattened set");
            }
        }
    }

    /// The conflict relation between updates is symmetric.
    #[test]
    fn update_conflicts_are_symmetric(
        a_actions in prop::collection::vec(action_strategy(), 1..10),
        b_actions in prop::collection::vec(action_strategy(), 1..10),
    ) {
        let schema = bioinformatics_schema();
        let a_updates = realise(&a_actions, p(1), &schema);
        let b_updates = realise(&b_actions, p(2), &schema);
        for a in &a_updates {
            for b in &b_updates {
                prop_assert_eq!(a.conflicts_with(b, &schema), b.conflicts_with(a, &schema));
            }
        }
    }

    /// The reconciliation engine is deterministic and exhaustive: every
    /// candidate receives exactly one decision, accepted candidates are
    /// applied, and re-running the same input on a fresh instance produces
    /// the same decisions.
    #[test]
    fn reconciliation_decides_every_candidate_deterministically(
        seeds in prop::collection::vec((1u32..6, prop::collection::vec(action_strategy(), 1..8)), 1..8)
    ) {
        let schema = bioinformatics_schema();
        let engine = ReconcileEngine::new(schema.clone());

        let mut candidates = Vec::new();
        for (idx, (origin, actions)) in seeds.iter().enumerate() {
            let updates = realise(actions, p(*origin), &schema);
            if updates.is_empty() {
                continue;
            }
            let txn = Transaction::from_parts(p(*origin), idx as u64, updates).unwrap();
            candidates.push(CandidateTransaction::new(&txn, Priority(1), vec![]));
        }

        let run = |candidates: Vec<CandidateTransaction>| {
            let mut db = Database::new(schema.clone());
            let mut soft = SoftState::new();
            let outcome = engine.reconcile(
                ReconcileInput {
                    recno: ReconciliationId(1),
                    candidates,
                    ..Default::default()
                },
                &mut db,
                &mut soft,
            );
            (outcome, db)
        };

        let (first, db_first) = run(candidates.clone());
        let (second, db_second) = run(candidates.clone());

        // Exhaustive: every candidate decided exactly once.
        let decided = first.accepted_roots.len() + first.rejected.len() + first.deferred.len();
        prop_assert_eq!(decided, candidates.len());
        // Deterministic.
        prop_assert_eq!(&first.accepted_roots, &second.accepted_roots);
        prop_assert_eq!(&first.rejected, &second.rejected);
        prop_assert_eq!(&first.deferred, &second.deferred);
        prop_assert_eq!(
            db_first.relation_contents("Function"),
            db_second.relation_contents("Function")
        );

        // Accepted candidates' final values are present in the instance.
        for id in &first.accepted_roots {
            let cand = candidates.iter().find(|c| c.id == *id).unwrap();
            for u in cand.flattened(&schema) {
                if let Some(written) = u.written_tuple() {
                    prop_assert!(
                        db_first.contains_tuple_exact(&u.relation, written),
                        "accepted value missing from instance"
                    );
                }
            }
        }
    }

    /// Mutually conflicting equal-priority candidates are never applied; the
    /// instance stays consistent (at most one value per key).
    #[test]
    fn equal_priority_conflicts_never_corrupt_the_instance(
        values in prop::collection::vec(0u8..5, 2..6)
    ) {
        let schema = bioinformatics_schema();
        let engine = ReconcileEngine::new(schema.clone());
        // Every candidate writes the same key with a (possibly) different
        // value.
        let candidates: Vec<CandidateTransaction> = values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let txn = Transaction::from_parts(
                    p(i as u32 + 1),
                    0,
                    vec![Update::insert("Function", func(0, *v), p(i as u32 + 1))],
                )
                .unwrap();
                CandidateTransaction::new(&txn, Priority(1), vec![])
            })
            .collect();
        let mut db = Database::new(schema.clone());
        let mut soft = SoftState::new();
        let outcome = engine.reconcile(
            ReconcileInput { recno: ReconciliationId(1), candidates, ..Default::default() },
            &mut db,
            &mut soft,
        );
        // The instance holds at most one tuple for the contested key.
        prop_assert!(db.relation_contents("Function").len() <= 1);
        // If any two candidates proposed different values, none of the
        // divergent ones may have been silently applied over another.
        let distinct: std::collections::HashSet<_> = values.iter().collect();
        if distinct.len() > 1 {
            prop_assert!(outcome.deferred.len() >= 2, "divergent writers must be deferred");
        }
    }
}
