//! Order-invariance of causal-DAG epochs: for arbitrary causal DAGs of
//! stamped publications × arbitrary linear extensions of the causal order ×
//! crash points × both WAL codecs, reconciliation reaches **identical
//! decision streams and durable decision sets**.
//!
//! The property test generates a random causal DAG: three publishers each
//! emit a FIFO chain of single-insert transactions over a small key space,
//! and each publication's parent antichain is the frontier the publisher
//! had observed at stamping time (publishers randomly observe the global
//! frontier, creating cross-publisher causal edges). The same DAG is then
//! published three times, each through `publish_stamped`:
//!
//! * in one random linear extension over an ephemeral causal store (the
//!   reference);
//! * in a *different* random linear extension over a second ephemeral store;
//! * in the second extension again over a *durable* store (binary or JSON
//!   WAL codec) that crashes — drop the store, recover from disk — at an
//!   arbitrary point of the publication stream.
//!
//! Epoch numbers differ between extensions (arrival order assigns them),
//! but decisions must not: after everyone reconciles, resolves every
//! conflict (keeping option 0) and reconciles again, every participant's
//! decision stream, the store's durable accept/reject sets, the final
//! instances and the causal frontier must be identical across all three
//! runs — and the recovered durable state must be byte-identical to the
//! pre-crash one under either codec.

use orchestra::{Participant, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{
    AntichainClock, CausalStamp, ParticipantId, Transaction, TrustPolicy, Tuple, Update,
};
use orchestra_storage::Codec;
use orchestra_store::{CentralStore, UpdateStore, WalOptions};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "orchestra-causal-prop-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

const PUBLISHERS: u32 = 3;

fn policies() -> Vec<TrustPolicy> {
    (1..=PUBLISHERS)
        .map(|i| {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=PUBLISHERS {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            policy
        })
        .collect()
}

fn clients() -> Vec<Participant> {
    policies()
        .into_iter()
        .map(|policy| Participant::new(bioinformatics_schema(), ParticipantConfig::new(policy)))
        .collect()
}

fn setup(store: &CentralStore) {
    for policy in policies() {
        store.register_participant(policy);
    }
    store.enable_causal_mode().expect("fresh store accepts causal mode");
}

/// One stamped publication of the generated DAG.
#[derive(Debug, Clone)]
struct Publication {
    stamp: CausalStamp,
    transaction: Transaction,
}

/// Builds the causal DAG from the generated `(who, key, observe)` stream.
/// The generation order is one valid history: each publisher's parents are
/// its own chain plus whatever slice of the global frontier it had observed.
/// Every value is unique per publication, so any two publications on the
/// same key genuinely conflict and the conflict handling is exercised on
/// every overlap.
fn build_dag(spec: &[(u32, u32, u32)]) -> Vec<Publication> {
    let mut seqs = vec![0u64; PUBLISHERS as usize + 1];
    let mut observed = vec![AntichainClock::new(); PUBLISHERS as usize + 1];
    let mut frontier = AntichainClock::new();
    let mut publications = Vec::new();
    for (who, key, observe) in spec {
        let who = *who;
        if *observe == 1 {
            observed[who as usize].merge(&frontier);
        }
        let seq = seqs[who as usize] + 1;
        seqs[who as usize] = seq;
        let stamp = CausalStamp::new(p(who), seq, observed[who as usize].clone());
        observed[who as usize].insert(stamp.id());
        frontier.insert(stamp.id());
        let tuple = Tuple::of_text(&["rat", &format!("prot{key}"), &format!("fn{who}_{seq}")]);
        let transaction =
            Transaction::from_parts(p(who), seq, vec![Update::insert("Function", tuple, p(who))])
                .expect("valid transaction");
        publications.push(Publication { stamp, transaction });
    }
    publications
}

/// Picks a linear extension of the DAG's causal order: repeatedly choose —
/// driven by the `choices` stream — among the publications whose publisher
/// FIFO predecessor and whose whole parent antichain have been emitted.
fn linear_extension(publications: &[Publication], choices: &[usize]) -> Vec<usize> {
    let mut emitted_seq = vec![0u64; PUBLISHERS as usize + 1];
    let mut remaining: Vec<usize> = (0..publications.len()).collect();
    let mut order = Vec::with_capacity(publications.len());
    let mut pick = 0usize;
    while !remaining.is_empty() {
        let ready: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                let stamp = &publications[i].stamp;
                let who = stamp.publisher.as_u32() as usize;
                emitted_seq[who] + 1 == stamp.seq
                    && stamp
                        .parents
                        .members()
                        .iter()
                        .all(|id| emitted_seq[id.publisher.as_u32() as usize] >= id.seq)
            })
            .collect();
        assert!(!ready.is_empty(), "a causal DAG always has a ready publication");
        let choice = choices.get(pick).copied().unwrap_or(0) % ready.len();
        pick += 1;
        let next = ready[choice];
        let who = publications[next].stamp.publisher.as_u32() as usize;
        emitted_seq[who] = publications[next].stamp.seq;
        remaining.retain(|&i| i != next);
        order.push(next);
    }
    order
}

/// Publishes the DAG in the given order, reconciling/resolving at the end,
/// and returns the per-participant decision stream. `crash_at` (durable
/// stores only) drops the store mid-stream and recovers it from disk,
/// asserting byte-identical durable state.
fn run_extension(
    mut store: CentralStore,
    dir: Option<&PathBuf>,
    publications: &[Publication],
    order: &[usize],
    crash_at: usize,
) -> (CentralStore, Vec<Participant>, Vec<String>) {
    let mut participants = clients();
    let mut log = Vec::new();
    for (step, &i) in order.iter().enumerate() {
        if let Some(dir) = dir {
            if step == crash_at.min(order.len()) && step > 0 {
                let fingerprint = format!("{:?}", store.catalog());
                drop(store);
                store = CentralStore::recover(dir).expect("store recovers");
                assert_eq!(
                    format!("{:?}", store.catalog()),
                    fingerprint,
                    "recovered durable state diverged"
                );
            }
        }
        let publication = &publications[i];
        store
            .publish_stamped(publication.stamp.clone(), vec![publication.transaction.clone()])
            .expect("stamped publish succeeds");
    }
    for round in 0..2 {
        for (idx, participant) in participants.iter_mut().enumerate() {
            let report = participant.reconcile(&store).expect("reconcile succeeds");
            let mut accepted = report.accepted.clone();
            accepted.sort();
            let mut rejected = report.rejected.clone();
            rejected.sort();
            let mut deferred = report.deferred.clone();
            deferred.sort();
            log.push(format!(
                "round {round} reconcile p{} acc {accepted:?} rej {rejected:?} def {deferred:?}",
                idx + 1
            ));
        }
        if round > 0 {
            break;
        }
        for (idx, participant) in participants.iter_mut().enumerate() {
            let groups: Vec<_> =
                participant.deferred_conflicts().iter().map(|g| g.key.clone()).collect();
            if groups.is_empty() {
                continue;
            }
            let choices: Vec<orchestra_recon::ResolutionChoice> = groups
                .into_iter()
                .map(|key| orchestra_recon::ResolutionChoice { group: key, chosen_option: Some(0) })
                .collect();
            let outcome =
                participant.resolve_conflicts(&store, &choices).expect("resolution succeeds");
            let mut acc = outcome.newly_accepted.clone();
            acc.sort();
            let mut rej = outcome.newly_rejected.clone();
            rej.sort();
            log.push(format!("resolve p{} acc {acc:?} rej {rej:?}", idx + 1));
        }
    }
    (store, participants, log)
}

/// The per-participant durable accept/reject sets, sorted for comparison.
fn decision_sets(store: &CentralStore) -> Vec<(Vec<String>, Vec<String>)> {
    (1..=PUBLISHERS)
        .map(|i| {
            let mut acc: Vec<String> =
                store.accepted_set(p(i)).iter().map(|id| id.to_string()).collect();
            acc.sort();
            let mut rej: Vec<String> =
                store.rejected_set(p(i)).iter().map(|id| id.to_string()).collect();
            rej.sort();
            (acc, rej)
        })
        .collect()
}

fn instances_fingerprint(participants: &[Participant]) -> Vec<String> {
    participants.iter().map(|participant| format!("{:?}", participant.instance())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any causal DAG, any two linear extensions of it, any crash point
    /// and either WAL codec: identical decision streams, durable decision
    /// sets, final instances and causal frontier.
    #[test]
    fn linear_extensions_reach_identical_decisions(
        spec in prop::collection::vec((1u32..PUBLISHERS + 1, 0u32..4, 0u32..2), 4..24),
        choices_a in prop::collection::vec(0usize..97, 24),
        choices_b in prop::collection::vec(0usize..97, 24),
        crash_at in 0usize..24,
        codec_raw in 0u32..2,
    ) {
        let publications = build_dag(&spec);
        let order_a = linear_extension(&publications, &choices_a);
        let order_b = linear_extension(&publications, &choices_b);

        // Reference: extension A over an ephemeral causal store.
        let reference_store = CentralStore::new(bioinformatics_schema());
        setup(&reference_store);
        let (reference_store, reference_clients, reference_log) =
            run_extension(reference_store, None, &publications, &order_a, usize::MAX);

        // Extension B over a second ephemeral store.
        let other_store = CentralStore::new(bioinformatics_schema());
        setup(&other_store);
        let (other_store, other_clients, other_log) =
            run_extension(other_store, None, &publications, &order_b, usize::MAX);

        // Extension B again, durable under the generated codec, crashing
        // (and recovering byte-identically) at an arbitrary point.
        let codec = if codec_raw == 0 { Codec::Binary } else { Codec::Json };
        let dir = scratch_dir();
        let durable_store = CentralStore::durable_with(
            bioinformatics_schema(),
            &dir,
            WalOptions { codec, per_shard: true },
        )
        .expect("fresh durability directory");
        setup(&durable_store);
        let (durable_store, durable_clients, durable_log) =
            run_extension(durable_store, Some(&dir), &publications, &order_b, crash_at);

        prop_assert_eq!(&other_log, &reference_log, "decision streams diverged across extensions");
        prop_assert_eq!(&durable_log, &reference_log, "decision streams diverged across codecs");
        prop_assert_eq!(
            decision_sets(&other_store),
            decision_sets(&reference_store),
            "durable decision sets diverged across extensions"
        );
        prop_assert_eq!(
            decision_sets(&durable_store),
            decision_sets(&reference_store),
            "durable decision sets diverged across crash points"
        );
        prop_assert_eq!(
            instances_fingerprint(&other_clients),
            instances_fingerprint(&reference_clients),
            "final instances diverged"
        );
        prop_assert_eq!(
            instances_fingerprint(&durable_clients),
            instances_fingerprint(&reference_clients),
            "final durable-run instances diverged"
        );
        prop_assert_eq!(
            other_store.causal_frontier().to_string(),
            reference_store.causal_frontier().to_string(),
            "causal frontiers diverged"
        );
        prop_assert_eq!(
            durable_store.causal_frontier().to_string(),
            reference_store.causal_frontier().to_string(),
            "durable causal frontier diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
