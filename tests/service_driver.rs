//! Equivalence and admission-control tests for the service driver: on
//! arbitrary publish/reconcile schedules — scalar *and* causal-DAG epoch
//! mode — the framed store service reaches decisions identical to both the
//! sequential and the thread-per-participant drivers, and a starved
//! admission cap sheds `Begin`s without losing a single session.

use orchestra::{CdssSystem, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{KeyValue, ParticipantId, TransactionId, TrustPolicy, Tuple, Update};
use orchestra_store::{CentralStore, ServiceConfig, UpdateStore};
use proptest::prelude::*;

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

fn mutual_policies(n: u32) -> Vec<TrustPolicy> {
    (1..=n)
        .map(|i| {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=n {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            policy
        })
        .collect()
}

const PARTICIPANTS: u32 = 4;
const KEY_POOL: usize = 6;
const VALUE_POOL: usize = 4;

/// One step of a schedule: `(participant, key, value, reconcile_wave)`.
/// Every step executes a state-dependent edit and publishes it; when
/// `reconcile_wave` is odd, all participants then reconcile as one wave.
type Op = (usize, usize, usize, u8);

/// The three deployment models under comparison.
#[derive(Clone, Copy, PartialEq)]
enum Driver {
    Sequential,
    Threads,
    Service,
}

fn execute(system: &mut CdssSystem<CentralStore>, who: ParticipantId, key: usize, value: usize) {
    let prot = format!("prot{key}");
    let new_tuple = func("org", &prot, &format!("f{value}"));
    let existing = system
        .participant(who)
        .unwrap()
        .instance()
        .value_at("Function", &KeyValue::of_text(&["org", &prot]));
    let update = match existing {
        None => Update::insert("Function", new_tuple, who),
        Some(current) => {
            if current == new_tuple {
                return;
            }
            Update::modify("Function", current, new_tuple, who)
        }
    };
    let _ = system.execute(who, vec![update]);
}

/// Everything compared between the drivers, per participant: the final
/// instance contents and the durable accepted/rejected records.
type ParticipantSnapshot = (Vec<(KeyValue, Tuple)>, Vec<TransactionId>, Vec<TransactionId>);

/// Runs a schedule under one driver. The service driver also routes its
/// *publishes* through the framed protocol, so the proptest covers
/// `publish_service` (scalar and causal-stamped) as well as the session
/// protocol.
fn run(ops: &[Op], driver: Driver, causal: bool) -> Vec<ParticipantSnapshot> {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema, CentralStore::new(bioinformatics_schema()));
    for policy in mutual_policies(PARTICIPANTS) {
        system.add_participant(ParticipantConfig::new(policy)).unwrap();
    }
    if causal {
        system.enable_causal_mode().unwrap();
    }
    let config = ServiceConfig::default();
    for &(who, key, value, reconcile_wave) in ops {
        let who = p((who % PARTICIPANTS as usize) as u32 + 1);
        execute(&mut system, who, key % KEY_POOL, value % VALUE_POOL);
        match driver {
            Driver::Sequential | Driver::Threads => {
                system.publish(who).unwrap();
            }
            Driver::Service => {
                system.run_service_round(&[who], &[], &config).unwrap();
            }
        }
        if reconcile_wave % 2 == 1 {
            wave(&mut system, driver, &config);
        }
    }
    // Final catch-up wave.
    wave(&mut system, driver, &config);

    let sorted = |mut v: Vec<TransactionId>| {
        v.sort();
        v
    };
    system
        .participant_ids()
        .into_iter()
        .map(|id| {
            (
                system.participant(id).unwrap().instance().relation_contents("Function"),
                sorted(system.store().accepted_set(id).iter().copied().collect()),
                sorted(system.store().rejected_set(id).iter().copied().collect()),
            )
        })
        .collect()
}

fn wave(system: &mut CdssSystem<CentralStore>, driver: Driver, config: &ServiceConfig) {
    match driver {
        Driver::Sequential => {
            system.reconcile_all().unwrap();
        }
        Driver::Threads => {
            system.reconcile_all_parallel().unwrap();
        }
        Driver::Service => {
            system.reconcile_all_service(config).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scalar epochs: the service driver reaches decisions (accepted and
    /// rejected sets, final instances) identical to both the sequential and
    /// the thread-per-participant drivers on random publish/reconcile
    /// schedules, including schedules that force genuine conflicts.
    #[test]
    fn service_driver_is_equivalent_on_scalar_schedules(
        ops in prop::collection::vec(
            (0..PARTICIPANTS as usize, 0..KEY_POOL, 0..VALUE_POOL, 0..2u8),
            1..30,
        )
    ) {
        let sequential = run(&ops, Driver::Sequential, false);
        let threads = run(&ops, Driver::Threads, false);
        let service = run(&ops, Driver::Service, false);
        prop_assert_eq!(&sequential, &threads, "threaded driver diverged");
        prop_assert_eq!(&sequential, &service, "service driver diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Causal-DAG epochs: the same three-way equivalence with causal mode
    /// enabled, so the service publishes go through the client-stamped
    /// `publish_stamped` frame.
    #[test]
    fn service_driver_is_equivalent_on_causal_schedules(
        ops in prop::collection::vec(
            (0..PARTICIPANTS as usize, 0..KEY_POOL, 0..VALUE_POOL, 0..2u8),
            1..20,
        )
    ) {
        let sequential = run(&ops, Driver::Sequential, true);
        let threads = run(&ops, Driver::Threads, true);
        let service = run(&ops, Driver::Service, true);
        prop_assert_eq!(&sequential, &threads, "threaded driver diverged");
        prop_assert_eq!(&sequential, &service, "service driver diverged");
    }
}

/// A cap of one open session forces every concurrent `Begin` but one into
/// `Busy`/retry — yet every session completes and the decisions match a
/// run with no cap at all.
#[test]
fn starved_admission_cap_completes_every_session_with_identical_decisions() {
    const N: u32 = 6;

    let build = || {
        let mut system =
            CdssSystem::new(bioinformatics_schema(), CentralStore::new(bioinformatics_schema()));
        for policy in mutual_policies(N) {
            system.add_participant(ParticipantConfig::new(policy)).unwrap();
        }
        for i in 1..=N {
            let who = p(i);
            system
                .execute(
                    who,
                    vec![Update::insert("Function", func("org", "shared", &format!("f{i}")), who)],
                )
                .unwrap();
            system.publish(who).unwrap();
        }
        system
    };

    let mut starved = build();
    let starved_config =
        ServiceConfig { max_open_sessions: 1, workers: 1, ..ServiceConfig::default() };
    let ids = starved.participant_ids();
    let report = starved.run_service_round(&[], &ids, &starved_config).unwrap();
    assert_eq!(report.results.len(), ids.len(), "every session must complete");
    assert!(
        report.stats.busy_rejections > 0,
        "a cap of 1 over {N} concurrent sessions must shed Begins"
    );
    assert_eq!(report.stats.open_sessions, 0, "no session may leak past the round");

    let mut roomy = build();
    roomy.reconcile_all_service(&ServiceConfig::default()).unwrap();
    for &id in &ids {
        assert_eq!(
            starved.store().accepted_set(id),
            roomy.store().accepted_set(id),
            "admission control changed decisions for {id}"
        );
        assert_eq!(starved.store().rejected_set(id), roomy.store().rejected_set(id));
    }
}
