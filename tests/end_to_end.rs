//! Workspace-level integration tests: update propagation across the whole
//! stack, equivalence of the centralised and DHT-based stores, monotonicity
//! of acceptance, and the behaviour of the scenario driver.

use orchestra::{CdssSystem, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TrustPolicy, Tuple, Update};
use orchestra_store::{CentralStore, DhtStore, UpdateStore};
use orchestra_workload::{run_scenario, ScenarioConfig, WorkloadConfig, WorkloadGenerator};

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

fn fully_trusting_system<S: UpdateStore>(store: S, n: u32) -> CdssSystem<S> {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema, store);
    for i in 1..=n {
        let mut policy = TrustPolicy::new(p(i));
        for j in 1..=n {
            if i != j {
                policy = policy.trusting(p(j), 1u32);
            }
        }
        system.add_participant(ParticipantConfig::new(policy)).unwrap();
    }
    system
}

#[test]
fn non_conflicting_updates_converge_everywhere() {
    let mut system = fully_trusting_system(CentralStore::new(bioinformatics_schema()), 5);
    // Every participant contributes one distinct fact.
    for i in 1..=5u32 {
        system
            .execute(
                p(i),
                vec![Update::insert(
                    "Function",
                    func("human", &format!("prot{i}"), "dna-repair"),
                    p(i),
                )],
            )
            .unwrap();
        system.publish_and_reconcile(p(i)).unwrap();
    }
    // One more reconciliation round lets the early publishers see the late
    // ones.
    for i in 1..=5u32 {
        system.reconcile(p(i)).unwrap();
    }
    for i in 1..=5u32 {
        assert_eq!(
            system.participant(p(i)).unwrap().instance().total_tuples(),
            5,
            "participant {i} did not converge"
        );
    }
    assert!((system.state_ratio_for("Function") - 1.0).abs() < 1e-9);
}

#[test]
fn central_and_dht_stores_produce_identical_instances() {
    // Drive both stores through an identical seeded workload and compare
    // every participant's final instance. The store implementation must not
    // change reconciliation outcomes, only their cost.
    let config = ScenarioConfig {
        participants: 5,
        transactions_between_reconciliations: 3,
        rounds: 2,
        workload: WorkloadConfig {
            transaction_size: 2,
            key_universe: 80,
            function_pool: 30,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        },
        seed: 99,
    };
    let central = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
    let dht = run_scenario(DhtStore::new(bioinformatics_schema()), &config);
    assert_eq!(central.accepted, dht.accepted);
    assert_eq!(central.rejected, dht.rejected);
    assert_eq!(central.deferred, dht.deferred);
    assert!((central.state_ratio - dht.state_ratio).abs() < 1e-12);
    // The DHT store must charge strictly more store time (simulated network
    // latency) than the centralised one for the same outcome.
    assert!(dht.store_time_per_participant > central.store_time_per_participant);
}

#[test]
fn acceptance_is_monotone_across_reconciliations() {
    // Once a participant has applied a tuple, later conflicting publications
    // from others never remove or replace it without user action.
    let mut system = fully_trusting_system(CentralStore::new(bioinformatics_schema()), 3);
    system
        .execute(p(1), vec![Update::insert("Function", func("rat", "prot1", "immune"), p(1))])
        .unwrap();
    system.publish_and_reconcile(p(1)).unwrap();
    system.publish_and_reconcile(p(2)).unwrap();
    assert!(system
        .participant(p(2))
        .unwrap()
        .instance()
        .contains_tuple_exact("Function", &func("rat", "prot1", "immune")));

    // p3 imports the fact, then publishes a replacement of it.
    system.publish_and_reconcile(p(3)).unwrap();
    system
        .execute(
            p(3),
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "immune"),
                func("rat", "prot1", "cell-resp"),
                p(3),
            )],
        )
        .unwrap();
    system.publish_and_reconcile(p(3)).unwrap();
    system.reconcile(p(2)).unwrap();
    // p2 already accepted p1's version; p3's replacement of the same
    // antecedent it trusts equally is applied only if it does not conflict
    // with p2's state — it does not (it chains from the accepted value), so
    // p2 follows the revision chain. p1's original fact is still the
    // antecedent, never silently rolled back to an empty state.
    let i2 = system.participant(p(2)).unwrap().instance();
    assert_eq!(i2.relation_contents("Function").len(), 1);
}

#[test]
fn untrusted_participants_share_nothing() {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema.clone(), CentralStore::new(schema));
    // Two participants that do not trust each other at all.
    system.add_participant(ParticipantConfig::new(TrustPolicy::new(p(1)))).unwrap();
    system.add_participant(ParticipantConfig::new(TrustPolicy::new(p(2)))).unwrap();
    system
        .execute(p(1), vec![Update::insert("Function", func("rat", "prot1", "immune"), p(1))])
        .unwrap();
    system.publish_and_reconcile(p(1)).unwrap();
    let report = system.publish_and_reconcile(p(2)).unwrap();
    assert_eq!(report.considered(), 0);
    assert!(system.participant(p(2)).unwrap().instance().is_empty());
    assert!((system.state_ratio_for("Function") - 2.0).abs() < 1e-9);
}

#[test]
fn chained_revisions_propagate_through_transitive_trust() {
    // p3 inserts, p2 revises p3's value, p1 trusts only p2 — accepting p2's
    // revision forces transitive acceptance of p3's insertion (the
    // antecedent), exactly the exception described for Figure 1.
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema.clone(), CentralStore::new(schema));
    system
        .add_participant(ParticipantConfig::new(TrustPolicy::new(p(1)).trusting(p(2), 1u32)))
        .unwrap();
    system
        .add_participant(ParticipantConfig::new(TrustPolicy::new(p(2)).trusting(p(3), 1u32)))
        .unwrap();
    system.add_participant(ParticipantConfig::new(TrustPolicy::new(p(3)))).unwrap();

    system
        .execute(p(3), vec![Update::insert("Function", func("rat", "prot1", "cell-metab"), p(3))])
        .unwrap();
    system.publish_and_reconcile(p(3)).unwrap();
    system.publish_and_reconcile(p(2)).unwrap();
    // p2 imported p3's fact; now p2 revises it.
    system
        .execute(
            p(2),
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "cell-metab"),
                func("rat", "prot1", "immune"),
                p(2),
            )],
        )
        .unwrap();
    system.publish_and_reconcile(p(2)).unwrap();

    // p1 trusts only p2, but importing p2's revision pulls in p3's insertion
    // as its antecedent.
    system.publish_and_reconcile(p(1)).unwrap();
    let i1 = system.participant(p(1)).unwrap().instance();
    assert!(i1.contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
    assert_eq!(i1.relation_contents("Function").len(), 1);
}

#[test]
fn scenario_driver_reports_consistent_counts() {
    let config = ScenarioConfig {
        participants: 3,
        transactions_between_reconciliations: 2,
        rounds: 2,
        workload: WorkloadConfig {
            transaction_size: 1,
            key_universe: 40,
            function_pool: 15,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        },
        seed: 5,
    };
    let result = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
    assert_eq!(result.reconciliations, 6);
    assert!(result.state_ratio >= 1.0 && result.state_ratio <= 3.0);
    assert!(result.overall_state_ratio >= 1.0);
}

#[test]
fn workload_generator_output_is_publishable_end_to_end() {
    // Generated transactions must round-trip through the whole stack: local
    // execution, publication, and reconciliation at another peer.
    let mut system = fully_trusting_system(CentralStore::new(bioinformatics_schema()), 2);
    let config = WorkloadConfig {
        transaction_size: 3,
        key_universe: 30,
        function_pool: 12,
        value_zipf_exponent: 1.5,
        key_zipf_exponent: 0.9,
        xref_mean: 7.3,
    };
    let mut generator = WorkloadGenerator::new(config, 11);
    for _ in 0..5 {
        let batch = {
            let participant = system.participant(p(1)).unwrap();
            generator.next_batch(p(1), participant.instance(), 2)
        };
        for updates in batch {
            system.execute(p(1), updates).unwrap();
        }
        system.publish_and_reconcile(p(1)).unwrap();
        system.publish_and_reconcile(p(2)).unwrap();
    }
    let i1 = system.participant(p(1)).unwrap().instance();
    let i2 = system.participant(p(2)).unwrap().instance();
    assert!(i1.total_tuples() > 0);
    // p2 trusts everything p1 publishes and publishes nothing of its own, so
    // it converges to p1's instance.
    assert_eq!(i1.relation_contents("Function"), i2.relation_contents("Function"));
    assert_eq!(i1.relation_contents("XRef"), i2.relation_contents("XRef"));
}
