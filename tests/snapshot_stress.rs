//! Compacting snapshots under concurrent load: 8 threads publish and
//! reconcile against one durable [`CentralStore`] (with group-commit WAL
//! flushing) while snapshots — and retention prunes — run concurrently, and
//! recovery must still rebuild byte-identical durable state.
//!
//! Consistent-cut audit (why this is safe, kept in sync with
//! `StoreCatalog::snapshot`): the snapshot takes the log read lock, the
//! shard-map read lock and every shard's read lock in the catalogue's one
//! total order (`log → shard map → shards sorted by id`). Every durable
//! mutation appends its WAL record while holding the *write* lock of the
//! state it mutates (publishes: log + publisher shard; commits/decisions/
//! retirements: the shard; frontier: the log), so while the snapshot holds
//! the full read-lock set no writer can slip a record between the cut and
//! the generation switch. `prune_to_horizon` takes the same locks in the
//! same order in write mode, so snapshots, prunes and publishes serialise
//! cleanly instead of deadlocking.

use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, Transaction, TrustPolicy, Tuple, Update};
use orchestra_store::{
    CentralStore, FlushPolicy, ReconciliationSession, RetentionPolicy, UpdateStore,
};
use std::path::PathBuf;
use std::time::Duration;

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("orchestra-snapshot-stress-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

const THREADS: u32 = 8;
const ROUNDS: u64 = 24;

#[test]
fn snapshots_under_publish_reconcile_load_recover_byte_identically() {
    let dir = scratch_dir("load");
    let schema = bioinformatics_schema();
    let store = CentralStore::durable(schema, &dir).expect("fresh dir");
    // Group commit (satellite of the same PR): batches of appends share one
    // fsync; the stress run proves order survives concurrency.
    store
        .catalog()
        .durability()
        .file_backend()
        .expect("durable store")
        .set_flush_policy(FlushPolicy::EveryN(8));
    for i in 1..=THREADS {
        let mut policy = TrustPolicy::new(p(i));
        for j in 1..=THREADS {
            if i != j {
                policy = policy.trusting(p(j), 1u32);
            }
        }
        store.register_participant(policy);
    }
    store.catalog().close_membership().expect("close membership");
    store.set_retention(RetentionPolicy::ConvergedOnly);

    std::thread::scope(|scope| {
        for i in 1..=THREADS {
            let store = &store;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Distinct keys per thread: the load exercises locking,
                    // not conflict semantics (covered elsewhere).
                    let tuple = Tuple::of_text(&[&format!("org{i}"), &format!("prot{round}"), "v"]);
                    let txn = Transaction::from_parts(
                        p(i),
                        round,
                        vec![Update::insert("Function", tuple, p(i))],
                    )
                    .expect("valid transaction");
                    store.publish(p(i), vec![txn]).expect("publish succeeds");
                    if round % 3 == i as u64 % 3 {
                        let mut session =
                            ReconciliationSession::open(store, p(i)).expect("session opens");
                        let candidates = session.drain(16).expect("drain succeeds");
                        let accepted: Vec<_> = candidates
                            .iter()
                            .flat_map(|c| c.members.iter().map(|(id, _)| *id))
                            .collect();
                        session.commit(&accepted, &[]).expect("commit succeeds");
                    }
                }
            });
        }
        // The snapshot + prune thread: compaction and retention race the
        // publishers the whole run.
        let store = &store;
        scope.spawn(move || {
            for round in 0..8 {
                std::thread::sleep(Duration::from_millis(2));
                store.snapshot().expect("snapshot under load succeeds");
                if round % 2 == 0 {
                    store.prune_to_horizon().expect("prune under load succeeds");
                }
            }
        });
    });

    // Quiesce, then compare the recovered catalogue byte for byte.
    let live = format!("{:?}", store.catalog());
    let generation = store.catalog().durability().file_backend().expect("durable").generation();
    assert!(generation >= 8, "snapshots must have advanced the WAL generation");
    drop(store);
    let recovered = CentralStore::recover(&dir).expect("store recovers");
    assert_eq!(format!("{:?}", recovered.catalog()), live, "recovered state diverged");

    // The recovered store keeps serving: one more publish + snapshot +
    // recovery round trip stays identical.
    let txn = Transaction::from_parts(
        p(1),
        ROUNDS,
        vec![Update::insert("Function", Tuple::of_text(&["postrec", "prot", "v"]), p(1))],
    )
    .expect("valid transaction");
    recovered.publish(p(1), vec![txn]).expect("publish after recovery");
    recovered.snapshot().expect("snapshot after recovery");
    let live2 = format!("{:?}", recovered.catalog());
    drop(recovered);
    let recovered2 = CentralStore::recover(&dir).expect("second recovery");
    assert_eq!(format!("{:?}", recovered2.catalog()), live2);
    std::fs::remove_dir_all(&dir).ok();
}
