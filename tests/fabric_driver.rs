//! Equivalence and starvation tests for the sharded fabric driver: on
//! arbitrary publish/reconcile schedules — scalar *and* causal-DAG epoch
//! mode — a multi-shard store fabric reaches decisions identical to both
//! the sequential driver and the single-service driver, and a fabric whose
//! every shard admits only one session at a time still completes every
//! cross-shard session without changing a single decision.

use orchestra::{CdssSystem, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{KeyValue, ParticipantId, TransactionId, TrustPolicy, Tuple, Update};
use orchestra_store::{CentralStore, FabricConfig, ServiceConfig, StoreFabric, UpdateStore};
use proptest::prelude::*;

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

fn mutual_policies(n: u32) -> Vec<TrustPolicy> {
    (1..=n)
        .map(|i| {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=n {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            policy
        })
        .collect()
}

/// With 4 participants over 4 shards every participant is homed on a
/// different shard, so every session is a cross-shard merge.
const PARTICIPANTS: u32 = 4;
const SHARDS: usize = 4;
const KEY_POOL: usize = 6;
const VALUE_POOL: usize = 4;

/// One step of a schedule: `(participant, key, value, reconcile_wave)`.
/// Every step executes a state-dependent edit and publishes it; when
/// `reconcile_wave` is odd, all participants then reconcile as one wave.
type Op = (usize, usize, usize, u8);

/// Everything compared between the drivers, per participant: the final
/// instance contents and the durable accepted/rejected records.
type ParticipantSnapshot = (Vec<(KeyValue, Tuple)>, Vec<TransactionId>, Vec<TransactionId>);

fn execute<S: UpdateStore>(
    system: &mut CdssSystem<S>,
    who: ParticipantId,
    key: usize,
    value: usize,
) {
    let prot = format!("prot{key}");
    let new_tuple = func("org", &prot, &format!("f{value}"));
    let existing = system
        .participant(who)
        .unwrap()
        .instance()
        .value_at("Function", &KeyValue::of_text(&["org", &prot]));
    let update = match existing {
        None => Update::insert("Function", new_tuple, who),
        Some(current) => {
            if current == new_tuple {
                return;
            }
            Update::modify("Function", current, new_tuple, who)
        }
    };
    let _ = system.execute(who, vec![update]);
}

fn snapshots<S: UpdateStore>(system: &CdssSystem<S>) -> Vec<ParticipantSnapshot> {
    let sorted = |mut v: Vec<TransactionId>| {
        v.sort();
        v
    };
    system
        .participant_ids()
        .into_iter()
        .map(|id| {
            (
                system.participant(id).unwrap().instance().relation_contents("Function"),
                sorted(system.store().accepted_set(id).iter().copied().collect()),
                sorted(system.store().rejected_set(id).iter().copied().collect()),
            )
        })
        .collect()
}

/// The single-store deployment models the fabric is compared against.
#[derive(Clone, Copy, PartialEq)]
enum Driver {
    Sequential,
    Service,
}

/// Runs a schedule against one [`CentralStore`].
fn run_single(ops: &[Op], driver: Driver, causal: bool) -> Vec<ParticipantSnapshot> {
    let mut system =
        CdssSystem::new(bioinformatics_schema(), CentralStore::new(bioinformatics_schema()));
    for policy in mutual_policies(PARTICIPANTS) {
        system.add_participant(ParticipantConfig::new(policy)).unwrap();
    }
    if causal {
        system.enable_causal_mode().unwrap();
    }
    let config = ServiceConfig::default();
    for &(who, key, value, reconcile_wave) in ops {
        let who = p((who % PARTICIPANTS as usize) as u32 + 1);
        execute(&mut system, who, key % KEY_POOL, value % VALUE_POOL);
        match driver {
            Driver::Sequential => {
                system.publish(who).unwrap();
            }
            Driver::Service => {
                system.run_service_round(&[who], &[], &config).unwrap();
            }
        }
        if reconcile_wave % 2 == 1 {
            match driver {
                Driver::Sequential => system.reconcile_all().map(|_| ()).unwrap(),
                Driver::Service => system.reconcile_all_service(&config).map(|_| ()).unwrap(),
            }
        }
    }
    match driver {
        Driver::Sequential => system.reconcile_all().map(|_| ()).unwrap(),
        Driver::Service => system.reconcile_all_service(&config).map(|_| ()).unwrap(),
    }
    snapshots(&system)
}

/// Runs the same schedule against a [`StoreFabric`]: publishes route to the
/// participant's home shard and fan out to every replica, and each
/// reconciliation session merges candidates from every shard into one
/// virtual timeline.
fn run_fabric(ops: &[Op], causal: bool) -> Vec<ParticipantSnapshot> {
    let mut system =
        CdssSystem::new(bioinformatics_schema(), StoreFabric::new(bioinformatics_schema(), SHARDS));
    for policy in mutual_policies(PARTICIPANTS) {
        system.add_participant(ParticipantConfig::new(policy)).unwrap();
    }
    if causal {
        system.enable_causal_mode().unwrap();
    }
    let config = FabricConfig { shards: SHARDS, ..FabricConfig::default() };
    for &(who, key, value, reconcile_wave) in ops {
        let who = p((who % PARTICIPANTS as usize) as u32 + 1);
        execute(&mut system, who, key % KEY_POOL, value % VALUE_POOL);
        system.run_fabric_round(&[who], &[], &config).unwrap();
        if reconcile_wave % 2 == 1 {
            system.reconcile_all_fabric(&config).unwrap();
        }
    }
    system.reconcile_all_fabric(&config).unwrap();
    snapshots(&system)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scalar epochs: the fabric reaches decisions (accepted and rejected
    /// sets, final instances) identical to both the sequential and the
    /// single-service drivers on random publish/reconcile schedules,
    /// including schedules that force genuine cross-shard conflicts.
    #[test]
    fn fabric_driver_is_equivalent_on_scalar_schedules(
        ops in prop::collection::vec(
            (0..PARTICIPANTS as usize, 0..KEY_POOL, 0..VALUE_POOL, 0..2u8),
            1..24,
        )
    ) {
        let sequential = run_single(&ops, Driver::Sequential, false);
        let service = run_single(&ops, Driver::Service, false);
        let fabric = run_fabric(&ops, false);
        prop_assert_eq!(&sequential, &service, "single-service driver diverged");
        prop_assert_eq!(&sequential, &fabric, "fabric driver diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Causal-DAG epochs: the same three-way equivalence with causal mode
    /// enabled, so fabric publishes carry client causal stamps to the home
    /// shard and replay them verbatim on every replica.
    #[test]
    fn fabric_driver_is_equivalent_on_causal_schedules(
        ops in prop::collection::vec(
            (0..PARTICIPANTS as usize, 0..KEY_POOL, 0..VALUE_POOL, 0..2u8),
            1..16,
        )
    ) {
        let sequential = run_single(&ops, Driver::Sequential, true);
        let service = run_single(&ops, Driver::Service, true);
        let fabric = run_fabric(&ops, true);
        prop_assert_eq!(&sequential, &service, "single-service driver diverged");
        prop_assert_eq!(&sequential, &fabric, "fabric driver diverged");
    }
}

/// Every shard capped at one open session: every cross-shard fabric session
/// still completes (ordered shard acquisition means `Busy` retries cannot
/// deadlock) and the decisions are identical to an uncapped fabric.
#[test]
fn starved_shards_complete_every_cross_shard_session_with_identical_decisions() {
    const N: u32 = 6;

    let build = || {
        let mut system = CdssSystem::new(
            bioinformatics_schema(),
            StoreFabric::new(bioinformatics_schema(), SHARDS),
        );
        for policy in mutual_policies(N) {
            system.add_participant(ParticipantConfig::new(policy)).unwrap();
        }
        // Everyone publishes a conflicting edit of one shared key, so every
        // session must merge candidates published on every home shard.
        for i in 1..=N {
            let who = p(i);
            system
                .execute(
                    who,
                    vec![Update::insert("Function", func("org", "shared", &format!("f{i}")), who)],
                )
                .unwrap();
            system.publish(who).unwrap();
        }
        system
    };

    let mut starved = build();
    let starved_config = FabricConfig {
        shards: SHARDS,
        service: ServiceConfig { max_open_sessions: 1, workers: 1, ..ServiceConfig::default() },
    };
    let ids = starved.participant_ids();
    let report = starved.run_fabric_round(&[], &ids, &starved_config).unwrap();
    assert_eq!(report.results.len(), ids.len(), "every session must complete");
    let shed: u64 = report.shard_stats.iter().map(|stats| stats.busy_rejections).sum();
    assert!(shed > 0, "a cap of 1 per shard over {N} concurrent sessions must shed Begins");
    for (shard, stats) in report.shard_stats.iter().enumerate() {
        assert_eq!(stats.open_sessions, 0, "shard {shard} leaked a session past the round");
    }

    let mut roomy = build();
    roomy
        .reconcile_all_fabric(&FabricConfig { shards: SHARDS, ..FabricConfig::default() })
        .unwrap();
    for &id in &ids {
        assert_eq!(
            starved.store().accepted_set(id),
            roomy.store().accepted_set(id),
            "per-shard admission control changed decisions for {id}"
        );
        assert_eq!(starved.store().rejected_set(id), roomy.store().rejected_set(id));
    }
}
