//! Session-semantics tests for the paged reconciliation API: aborts leave
//! the store byte-identical, interleaved sessions from different
//! participants are isolated, and paged retrieval equals the old single-shot
//! retrieval.

use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, Transaction, TrustPolicy, Tuple, Update};
use orchestra_store::{CentralStore, ReconciliationSession, UpdateStore};

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

fn txn(i: u32, j: u64, updates: Vec<Update>) -> Transaction {
    Transaction::from_parts(p(i), j, updates).unwrap()
}

/// A store with three mutually trusting participants and a spread of
/// published transactions, including a revision chain.
fn populated_store() -> CentralStore {
    let store = CentralStore::new(bioinformatics_schema());
    for i in 1..=3u32 {
        let mut policy = TrustPolicy::new(p(i));
        for j in 1..=3u32 {
            if i != j {
                policy = policy.trusting(p(j), 1u32);
            }
        }
        store.register_participant(policy);
    }
    store
        .publish(
            p(2),
            vec![
                txn(2, 0, vec![Update::insert("Function", func("rat", "prot1", "v1"), p(2))]),
                txn(
                    2,
                    1,
                    vec![Update::modify(
                        "Function",
                        func("rat", "prot1", "v1"),
                        func("rat", "prot1", "v2"),
                        p(2),
                    )],
                ),
            ],
        )
        .unwrap();
    store
        .publish(
            p(3),
            vec![txn(3, 0, vec![Update::insert("Function", func("mouse", "prot2", "w"), p(3))])],
        )
        .unwrap();
    store
        .publish(
            p(1),
            vec![txn(1, 0, vec![Update::insert("Function", func("dog", "prot3", "x"), p(1))])],
        )
        .unwrap();
    store
}

#[test]
fn abort_leaves_store_state_byte_identical() {
    let store = populated_store();
    // The catalogue's Debug rendering covers every piece of durable state
    // (log, registry, shards: policies, relevance, cursors, decisions) and
    // deliberately excludes soft session state.
    let before = format!("{:?}", store.catalog());

    // Open, page through, and abort — mid-stream, not only when exhausted.
    let mut session = ReconciliationSession::open(&store, p(1)).unwrap();
    let first_page = session.next_batch(1).unwrap();
    assert!(!first_page.is_empty());
    session.abort().unwrap();
    assert_eq!(format!("{:?}", store.catalog()), before, "abort mutated durable state");

    // An implicitly dropped session aborts too.
    {
        let mut dropped = ReconciliationSession::open(&store, p(3)).unwrap();
        let _ = dropped.next_batch(1).unwrap();
    }
    assert_eq!(format!("{:?}", store.catalog()), before, "drop-abort mutated durable state");

    // Observable queries agree: no reconciliation recorded, cursor unmoved.
    assert_eq!(store.current_reconciliation(p(1)), Default::default());
    assert_eq!(store.catalog().epoch_cursor(p(1)), orchestra_model::Epoch::ZERO);
    assert_eq!(store.catalog().open_sessions(), 0);

    // After the aborts, a fresh session sees exactly what the first one saw.
    let mut retry = ReconciliationSession::open(&store, p(1)).unwrap();
    assert_eq!(retry.next_batch(1).unwrap()[0].id, first_page[0].id);
    retry.abort().unwrap();
}

#[test]
fn interleaved_sessions_do_not_observe_each_others_undecided_candidates() {
    let store = populated_store();

    // Two sessions from different participants, opened back to back.
    let mut s1 = ReconciliationSession::open(&store, p(1)).unwrap();
    let mut s3 = ReconciliationSession::open(&store, p(3)).unwrap();

    // p1 sees p2's chain and p3's insert; p3 sees p2's chain and p1's insert.
    let c1 = s1.drain(1).unwrap();
    let ids1: Vec<_> = c1.iter().map(|c| c.id).collect();
    assert!(ids1.contains(
        &txn(3, 0, vec![Update::insert("Function", func("mouse", "prot2", "w"), p(3))]).id()
    ));

    // p1 commits decisions mid-flight of p3's session.
    let accepted: Vec<_> = ids1.clone();
    s1.commit(&accepted, &[]).unwrap();

    // p3's already-open session streams its own snapshot: p1's concurrent
    // decisions are p1's alone and must not leak into (or filter) p3's
    // candidate stream.
    let c3 = s3.drain(1).unwrap();
    let ids3: Vec<_> = c3.iter().map(|c| c.id).collect();
    assert!(ids3.contains(
        &txn(1, 0, vec![Update::insert("Function", func("dog", "prot3", "x"), p(1))]).id()
    ));
    assert!(
        ids3.iter().all(|id| id.participant != p(3)),
        "a participant never sees its own transactions"
    );
    s3.commit(&ids3, &[]).unwrap();

    // Decision records stayed per-participant.
    for id in &ids1 {
        assert!(store.accepted_set(p(1)).contains(id));
    }
    for id in &ids3 {
        assert!(store.accepted_set(p(3)).contains(id));
    }
    // p1's decisions never leaked into p3's record: everything p3's record
    // holds is either its own publication or one of its own session commits.
    for id in store.accepted_set(p(3)).iter() {
        assert!(
            id.participant == p(3) || ids3.contains(id),
            "foreign decision {id:?} leaked into p3's record"
        );
    }
}

#[test]
fn paged_retrieval_equals_single_shot_retrieval() {
    // Two identically populated stores: one participant drains everything in
    // one huge page, the other pages with max_candidates = 1. Candidate
    // streams must be identical, element for element, extensions included.
    let store = populated_store();
    let paged = store.clone();

    let mut single = ReconciliationSession::open(&store, p(1)).unwrap();
    let all = single.drain(1_000).unwrap();
    single.abort().unwrap();

    let mut paged_session = ReconciliationSession::open(&paged, p(1)).unwrap();
    let mut pages = Vec::new();
    loop {
        let page = paged_session.next_batch(1).unwrap();
        if page.is_empty() {
            break;
        }
        assert!(page.len() <= 1, "page exceeded max_candidates");
        pages.extend(page);
    }
    paged_session.abort().unwrap();

    assert_eq!(all.len(), pages.len());
    for (a, b) in all.iter().zip(pages.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.priority, b.priority);
        assert_eq!(
            a.members.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            b.members.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            "extension members diverged for {:?}",
            a.id
        );
    }
}

#[test]
fn sessions_are_pinned_to_their_open_epoch() {
    // A publish that lands *after* a session opened must not leak into the
    // session's stream; it becomes visible to the next session.
    let store = populated_store();
    let mut session = ReconciliationSession::open(&store, p(1)).unwrap();
    let pinned_epoch = session.epoch();

    store
        .publish(
            p(2),
            vec![txn(2, 2, vec![Update::insert("Function", func("cat", "prot9", "y"), p(2))])],
        )
        .unwrap();

    let ids: Vec<_> = session.drain(2).unwrap().iter().map(|c| c.id).collect();
    assert!(
        !ids.contains(&orchestra_model::TransactionId::new(p(2), 2)),
        "a post-open publish leaked into the session"
    );
    session.commit(&ids, &[]).unwrap();

    let mut next = ReconciliationSession::open(&store, p(1)).unwrap();
    assert!(next.epoch() > pinned_epoch);
    let next_ids: Vec<_> = next.drain(2).unwrap().iter().map(|c| c.id).collect();
    assert_eq!(next_ids, vec![orchestra_model::TransactionId::new(p(2), 2)]);
    next.commit(&next_ids, &[]).unwrap();
}
