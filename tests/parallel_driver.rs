//! Concurrency tests for the shared-reference store API and the parallel
//! confederation driver: a ≥ 8-thread publish/reconcile stress test against
//! one shared `CentralStore`, and a proptest asserting the parallel driver
//! reaches decisions identical to the sequential one on random schedules.

use orchestra::{CdssSystem, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, Transaction, TransactionId, TrustPolicy, Tuple, Update};
use orchestra_store::{CentralStore, ReconciliationSession, UpdateStore};

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

fn mutual_policies(n: u32) -> Vec<TrustPolicy> {
    (1..=n)
        .map(|i| {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=n {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            policy
        })
        .collect()
}

/// Eight threads — one per participant — publish and reconcile concurrently
/// against one shared `&CentralStore` for several rounds. The test asserts
/// the store's global invariants afterwards: every publish got a distinct
/// epoch, the log holds every published transaction exactly once, no
/// participant's accepted and rejected sets intersect, and every thread's
/// sessions committed monotonically increasing reconciliation numbers.
#[test]
fn eight_threads_publish_and_reconcile_against_one_store() {
    const THREADS: u32 = 8;
    const ROUNDS: u64 = 6;

    let store = CentralStore::new(bioinformatics_schema());
    for policy in mutual_policies(THREADS) {
        store.register_participant(policy);
    }

    let per_thread: Vec<(ParticipantId, Vec<TransactionId>, Vec<u64>)> =
        std::thread::scope(|scope| {
            let store = &store;
            let handles: Vec<_> = (1..=THREADS)
                .map(|i| {
                    scope.spawn(move || {
                        let me = p(i);
                        let mut published = Vec::new();
                        let mut recnos = Vec::new();
                        for round in 0..ROUNDS {
                            // Publish one transaction on a thread-private key
                            // (cross-thread conflicts are exercised by the
                            // equivalence proptest; this test is about store
                            // integrity under raw concurrency).
                            let txn = Transaction::from_parts(
                                me,
                                round,
                                vec![Update::insert(
                                    "Function",
                                    func("human", &format!("prot-{i}-{round}"), "kinase"),
                                    me,
                                )],
                            )
                            .unwrap();
                            published.push(txn.id());
                            store.publish(me, vec![txn]).unwrap();

                            // Reconcile: stream everything, accept everything
                            // (all keys are distinct, so nothing conflicts).
                            let mut session = ReconciliationSession::open(store, me).unwrap();
                            let candidates = session.drain(4).unwrap();
                            let accepted: Vec<TransactionId> =
                                candidates.iter().flat_map(|c| c.member_ids()).collect();
                            recnos.push(session.recno().0);
                            session.commit(&accepted, &[]).unwrap();
                        }
                        (me, published, recnos)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

    // Every publish allocated a distinct epoch and the frontier is stable.
    let total_published: usize = per_thread.iter().map(|(_, ids, _)| ids.len()).sum();
    assert_eq!(total_published, (THREADS as u64 * ROUNDS) as usize);
    assert_eq!(store.catalog().log_len(), total_published);
    assert_eq!(
        store.catalog().largest_stable_epoch(),
        orchestra_model::Epoch(THREADS as u64 * ROUNDS),
        "interleaved publishes must leave a fully stable epoch frontier"
    );

    for (me, published, recnos) in &per_thread {
        // Each thread's sessions committed strictly increasing recnos 1..=R.
        assert_eq!(*recnos, (1..=ROUNDS).collect::<Vec<u64>>(), "recnos for {me}");
        // Every published transaction is retrievable and owned by its origin.
        for id in published {
            let txn = store.transaction(*id).expect("published transaction in the log");
            assert_eq!(txn.origin(), *me);
        }
        // Accepted/rejected never intersect, and own transactions are
        // auto-accepted.
        let accepted = store.accepted_set(*me);
        let rejected = store.rejected_set(*me);
        assert!(accepted.is_disjoint(&rejected), "decision sets intersect for {me}");
        for id in published {
            assert!(accepted.contains(id), "{me} must auto-accept its own {id:?}");
        }
        assert_eq!(store.current_reconciliation(*me).0, ROUNDS);
    }
    assert_eq!(store.catalog().open_sessions(), 0, "every session was finished");
}

mod equivalence {
    use super::*;
    use orchestra_model::KeyValue;
    use orchestra_workload::{run_churn_concurrent, ChurnConfig, ReconcileDriver, WorkloadConfig};
    use proptest::prelude::*;

    const PARTICIPANTS: u32 = 4;
    const KEY_POOL: usize = 6;
    const VALUE_POOL: usize = 4;

    /// One step of a schedule: `(participant, key, value, reconcile_wave)`.
    /// Every step executes a state-dependent edit and publishes it; when
    /// `reconcile_wave` is odd, all participants then reconcile as one wave.
    type Op = (usize, usize, usize, u8);

    fn execute(
        system: &mut CdssSystem<CentralStore>,
        who: ParticipantId,
        key: usize,
        value: usize,
    ) {
        let prot = format!("prot{key}");
        let new_tuple = func("org", &prot, &format!("f{value}"));
        let existing = system
            .participant(who)
            .unwrap()
            .instance()
            .value_at("Function", &KeyValue::of_text(&["org", &prot]));
        let update = match existing {
            None => Update::insert("Function", new_tuple, who),
            Some(current) => {
                if current == new_tuple {
                    return;
                }
                Update::modify("Function", current, new_tuple, who)
            }
        };
        let _ = system.execute(who, vec![update]);
    }

    /// Everything compared between the two drivers, per participant: the
    /// final instance contents and the durable accepted/rejected records.
    type ParticipantSnapshot = (Vec<(KeyValue, Tuple)>, Vec<TransactionId>, Vec<TransactionId>);

    /// Runs a schedule; reconciliation waves go through the chosen driver.
    fn run(ops: &[Op], parallel: bool) -> Vec<ParticipantSnapshot> {
        let schema = bioinformatics_schema();
        let mut system = CdssSystem::new(schema, CentralStore::new(bioinformatics_schema()));
        for policy in mutual_policies(PARTICIPANTS) {
            system.add_participant(ParticipantConfig::new(policy)).unwrap();
        }
        let wave = |system: &mut CdssSystem<CentralStore>| {
            if parallel {
                system.reconcile_all_parallel().unwrap();
            } else {
                system.reconcile_all().unwrap();
            }
        };
        for &(who, key, value, reconcile_wave) in ops {
            let who = p((who % PARTICIPANTS as usize) as u32 + 1);
            execute(&mut system, who, key % KEY_POOL, value % VALUE_POOL);
            system.publish(who).unwrap();
            if reconcile_wave % 2 == 1 {
                wave(&mut system);
            }
        }
        // Final catch-up wave.
        wave(&mut system);

        let sorted = |mut v: Vec<TransactionId>| {
            v.sort();
            v
        };
        system
            .participant_ids()
            .into_iter()
            .map(|id| {
                (
                    system.participant(id).unwrap().instance().relation_contents("Function"),
                    sorted(system.store().accepted_set(id).iter().copied().collect()),
                    sorted(system.store().rejected_set(id).iter().copied().collect()),
                )
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The parallel confederation driver reaches decisions (accepted and
        /// rejected sets, final instances) identical to the sequential one on
        /// random publish/reconcile schedules, including schedules that force
        /// genuine conflicts on shared keys.
        #[test]
        fn parallel_driver_is_equivalent_to_sequential(
            ops in prop::collection::vec(
                (0..PARTICIPANTS as usize, 0..KEY_POOL, 0..VALUE_POOL, 0..2u8),
                1..30,
            )
        ) {
            let sequential = run(&ops, false);
            let parallel = run(&ops, true);
            prop_assert_eq!(&sequential, &parallel, "drivers diverged");
        }
    }

    /// The churn-scenario-level equivalence (the shape the benchmark runs),
    /// on a small fixed configuration.
    #[test]
    fn concurrent_churn_scenario_equivalence() {
        let config = ChurnConfig {
            participants: 8,
            rounds: 6,
            transactions_per_publish: 1,
            max_reconcile_interval: 3,
            resolve_every: 3,
            workload: WorkloadConfig {
                transaction_size: 1,
                key_universe: 40,
                function_pool: 15,
                value_zipf_exponent: 1.5,
                key_zipf_exponent: 0.9,
                xref_mean: 7.3,
            },
            seed: 17,
        };
        let sequential = run_churn_concurrent(
            CentralStore::new(bioinformatics_schema()),
            &config,
            ReconcileDriver::Sequential,
        );
        let parallel = run_churn_concurrent(
            CentralStore::new(bioinformatics_schema()),
            &config,
            ReconcileDriver::Parallel,
        );
        assert_eq!(sequential.accepted, parallel.accepted);
        assert_eq!(sequential.rejected, parallel.rejected);
        assert_eq!(sequential.deferred, parallel.deferred);
        assert_eq!(sequential.state_ratio, parallel.state_ratio);
        assert!(sequential.accepted > 0);
    }
}
