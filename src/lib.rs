//! Umbrella crate for the Orchestra CDSS reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`); the library surface simply re-exports
//! the member crates so examples can use a single dependency.

pub use orchestra;
pub use orchestra_model as model;
pub use orchestra_net as net;
pub use orchestra_recon as recon;
pub use orchestra_rt as rt;
pub use orchestra_storage as storage;
pub use orchestra_store as store;
pub use orchestra_workload as workload;
