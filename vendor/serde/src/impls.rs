//! `Serialize` / `Deserialize` implementations for the std types the
//! workspace uses in derived structures.

use crate::json::{Error, Number, Value};
use crate::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }

        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

// JSON numbers cannot represent the full u128/i128 range; use decimal
// strings (a convention private to this vendored stack).
impl Serialize for u128 {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for u128 {
    fn from_json(value: &Value) -> Result<Self, Error> {
        if let Some(n) = value.as_u64() {
            return Ok(n as u128);
        }
        value
            .as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::new("expected u128 as decimal string"))
    }
}

impl Serialize for i128 {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for i128 {
    fn from_json(value: &Value) -> Result<Self, Error> {
        if let Some(n) = value.as_i64() {
            return Ok(n as i128);
        }
        value
            .as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::new("expected i128 as decimal string"))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::new("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value.as_f64().map(|f| f as f32).ok_or_else(|| Error::new("expected f32"))
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned).ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| Error::new("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        T::from_json(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        T::from_json(value).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(inner) => inner.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_json(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::new("expected tuple array"))?;
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                if items.len() != ARITY {
                    return Err(Error::new("tuple arity mismatch"));
                }
                Ok(($($name::from_json(&items[$idx])?,)+))
            }
        }
    )*};
}

serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps and sets serialize as arrays of pairs / elements, sorted by the
/// compact rendering of the key so output is deterministic regardless of
/// hasher iteration order.
fn map_to_json<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    let mut pairs: Vec<(String, Value, Value)> = entries
        .map(|(k, v)| {
            let kj = k.to_json();
            (kj.to_compact(), kj, v.to_json())
        })
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Array(pairs.into_iter().map(|(_, k, v)| Value::Array(vec![k, v])).collect())
}

fn map_from_json<K: Deserialize, V: Deserialize>(
    value: &Value,
) -> Result<impl Iterator<Item = (K, V)>, Error> {
    let items = value.as_array().ok_or_else(|| Error::new("expected map as array of pairs"))?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let pair = item.as_array().ok_or_else(|| Error::new("expected [key, value] pair"))?;
        if pair.len() != 2 {
            return Err(Error::new("expected [key, value] pair"));
        }
        out.push((K::from_json(&pair[0])?, V::from_json(&pair[1])?));
    }
    Ok(out.into_iter())
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json(&self) -> Value {
        map_to_json(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_json(value: &Value) -> Result<Self, Error> {
        Ok(map_from_json(value)?.collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        map_to_json(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        Ok(map_from_json(value)?.collect())
    }
}

fn set_to_json<'a, T: Serialize + 'a>(entries: impl Iterator<Item = &'a T>) -> Value {
    let mut items: Vec<(String, Value)> = entries
        .map(|e| {
            let j = e.to_json();
            (j.to_compact(), j)
        })
        .collect();
    items.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Array(items.into_iter().map(|(_, j)| j).collect())
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_json(&self) -> Value {
        set_to_json(self.iter())
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::new("expected set as array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json(&self) -> Value {
        set_to_json(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::new("expected set as array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for std::time::Duration {
    fn to_json(&self) -> Value {
        Value::Number(Number::from_f64(self.as_secs_f64()))
    }
}

impl Deserialize for std::time::Duration {
    fn from_json(value: &Value) -> Result<Self, Error> {
        let secs = value.as_f64().ok_or_else(|| Error::new("expected duration in seconds"))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(Error::new("duration must be a non-negative finite number"));
        }
        Ok(std::time::Duration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u32::from_json(&42u32.to_json()).unwrap(), 42);
        assert_eq!(i64::from_json(&(-42i64).to_json()).unwrap(), -42);
        assert_eq!(String::from_json(&"hi".to_json()).unwrap(), "hi");
        assert_eq!(f64::from_json(&1.5f64.to_json()).unwrap(), 1.5);
        assert_eq!(u128::from_json(&(1u128 << 100).to_json()).unwrap(), 1u128 << 100);
        assert!(bool::from_json(&Value::Null).is_err());
    }

    #[test]
    fn collections_round_trip_deterministically() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let j = m.to_json();
        // Sorted by key rendering, independent of hasher order.
        assert_eq!(j.to_compact(), r#"[["a",1],["b",2]]"#);
        let back: HashMap<String, u32> = HashMap::from_json(&j).unwrap();
        assert_eq!(back, m);

        let v = vec![Some(1u8), None];
        let back: Vec<Option<u8>> = Vec::from_json(&v.to_json()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u8, "x".to_string());
        let back: (u8, String) = Deserialize::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }
}
