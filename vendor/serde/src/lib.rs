//! Vendored stand-in for the `serde` crate.
//!
//! The real serde is a format-agnostic serialization framework; this
//! stand-in collapses the data model to a single JSON-like [`json::Value`]
//! tree, which is all the workspace needs (persistence and figure output are
//! both JSON). The public names mirror upstream so that swapping the real
//! crates back in is a manifest-only change:
//!
//! * [`Serialize`] / [`Deserialize`] — implemented for the std types the
//!   workspace uses and derivable via `#[derive(Serialize, Deserialize)]`
//!   (the `derive` feature, backed by the vendored `serde_derive` proc
//!   macro).
//! * [`json`] — the value tree, printer and parser shared with the vendored
//!   `serde_json` façade.
//!
//! Conventions (self-consistent, not byte-compatible with upstream
//! serde_json): maps serialize as arrays of `[key, value]` pairs, unit enum
//! variants as strings, data-carrying variants as single-key objects, and
//! `u128` as a decimal string (JSON numbers cannot hold it).

#![forbid(unsafe_code)]

pub mod json;

mod impls;

pub use json::{Error, Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can be rendered into a [`json::Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_json(&self) -> Value;
}

/// A type that can be rebuilt from a [`json::Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value of this type from the tree, or explains why it
    /// cannot.
    fn from_json(value: &Value) -> Result<Self, Error>;
}
