//! The JSON value tree, printer and parser backing the vendored serde stack.

use std::fmt;

/// A JSON number: integer or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// Wraps an unsigned integer.
    pub fn from_u64(n: u64) -> Self {
        Number(N::PosInt(n))
    }

    /// Wraps a signed integer (stored unsigned when non-negative, so `3i64`
    /// and `3u64` compare equal).
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number(N::PosInt(n as u64))
        } else {
            Number(N::NegInt(n))
        }
    }

    /// Wraps a float.
    pub fn from_f64(n: f64) -> Self {
        Number(N::Float(n))
    }

    /// The value as an `f64` (lossy for large integers).
    pub fn as_f64(&self) -> f64 {
        match self.0 {
            N::PosInt(n) => n as f64,
            N::NegInt(n) => n as f64,
            N::Float(n) => n,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(n) => i64::try_from(n).ok(),
            N::NegInt(n) => Some(n),
            N::Float(_) => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(n) => Some(n),
            N::NegInt(_) | N::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::PosInt(n) => write!(f, "{n}"),
            N::NegInt(n) => write!(f, "{n}"),
            N::Float(n) => {
                if n.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes a `.0` for integral
                    // floats, keeping the type recoverable.
                    write!(f, "{n:?}")
                } else {
                    // JSON has no Infinity/NaN; mirror serde_json by
                    // emitting null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key/value pair, replacing any existing entry for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON value, mirroring `serde_json::Value`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Renders the value as compact JSON.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Parses JSON text into a [`Value`].
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!("unexpected '{}' at byte {}", c as char, self.pos))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain UTF-8.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Handle surrogate pairs.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::new("unpaired surrogate"));
                            }
                            let low = self.hex4()?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined).ok_or_else(|| Error::new("bad surrogate"))?
                        } else {
                            char::from_u32(code).ok_or_else(|| Error::new("bad unicode escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error::new("bad escape sequence")),
                },
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::new("truncated unicode escape"))?;
            let digit = (b as char).to_digit(16).ok_or_else(|| Error::new("bad hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            let n: f64 = text.parse().map_err(|_| Error::new("invalid float"))?;
            Ok(Value::Number(Number::from_f64(n)))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::Number(Number::from_u64(n)))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::Number(Number::from_i64(n)))
        } else {
            // Out-of-range integer: keep it as a float like serde_json's
            // arbitrary_precision-less default would reject; tolerate here.
            let n: f64 = text.parse().map_err(|_| Error::new("invalid number"))?;
            Ok(Value::Number(Number::from_f64(n)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let src = r#"{"a":[1,2.5,-3],"b":{"nested":"va\"lue"},"c":null,"d":true}"#;
        let value = parse(src).unwrap();
        assert_eq!(parse(&value.to_compact()).unwrap(), value);
        assert_eq!(parse(&value.to_pretty()).unwrap(), value);
    }

    #[test]
    fn preserves_insertion_order() {
        let value = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&String> = value.as_object().unwrap().keys().collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let value = parse(r#""A😀""#).unwrap();
        assert_eq!(value.as_str().unwrap(), "A😀");
    }

    #[test]
    fn integers_and_floats_are_distinguished() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("-3").unwrap().as_i64(), Some(-3));
        assert_eq!(parse("3.0").unwrap().as_u64(), None);
        assert_eq!(parse("3.0").unwrap().as_f64(), Some(3.0));
    }
}
