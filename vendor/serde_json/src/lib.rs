//! Vendored stand-in for the `serde_json` crate.
//!
//! The value tree, printer and parser live in the vendored `serde` crate
//! (`serde::json`) so that derived code never needs this façade; this crate
//! re-exports them under the upstream names and provides the conversion
//! entry points the workspace uses.

#![forbid(unsafe_code)]

pub use serde::json::{Error, Map, Number, Value};
use serde::{Deserialize, Serialize};

/// A `serde_json`-style result.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_json())
}

/// Rebuilds a deserializable value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_json(&value)
}

/// Serializes a value as compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.to_json().to_compact())
}

/// Serializes a value as pretty-printed JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.to_json().to_pretty())
}

/// Parses JSON text and rebuilds a value from it.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    T::from_json(&serde::json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let v = vec![1u32, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn value_round_trip() {
        let v = Some("hello".to_string());
        let value = to_value(&v).unwrap();
        assert_eq!(value.as_str(), Some("hello"));
        let back: Option<String> = from_value(value).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let text = to_string_pretty(&vec![1u8]).unwrap();
        assert_eq!(text, "[\n  1\n]");
    }
}
