//! Vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` traits without `syn`/`quote` (unavailable offline): the
//! item is parsed directly from the token stream and the impl is emitted as
//! source text.
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * structs with named fields, tuple structs, unit structs (no generics);
//! * enums with unit, tuple and struct variants;
//! * `#[serde(skip)]` on named struct fields (omitted when serializing,
//!   `Default::default()` when deserializing);
//! * `#[serde(from = "T", into = "T")]` container attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item).parse().expect("serde_derive generated invalid Serialize impl")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item).parse().expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
    /// `#[serde(from = "T")]`.
    from: Option<String>,
    /// `#[serde(into = "T")]`.
    into: Option<String>,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Unit,
    /// Tuple fields; one flag per field: skipped?
    Tuple(Vec<bool>),
    /// Named fields: (name, skipped).
    Named(Vec<(String, bool)>),
}

struct Variant {
    name: String,
    fields: Fields,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    from: Option<String>,
    into: Option<String>,
}

/// Parses the serde helper attribute body: `skip`, `from = "T"`, `into = "T"`.
fn parse_serde_attr(body: TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(ident) => {
                let name = ident.to_string();
                let value = if i + 2 < tokens.len()
                    && matches!(&tokens[i + 1], TokenTree::Punct(p) if p.as_char() == '=')
                {
                    let lit = tokens[i + 2].to_string();
                    i += 2;
                    Some(lit.trim_matches('"').to_string())
                } else {
                    None
                };
                match (name.as_str(), value) {
                    ("skip", None) => attrs.skip = true,
                    ("from", Some(v)) => attrs.from = Some(v),
                    ("into", Some(v)) => attrs.into = Some(v),
                    (other, _) => panic!("vendored serde_derive: unsupported attribute `{other}`"),
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("vendored serde_derive: unexpected token in #[serde(...)]: {other}"),
        }
        i += 1;
    }
}

/// Consumes leading attributes from `tokens[*pos..]`, collecting serde ones.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize, attrs: &mut SerdeAttrs) {
    while *pos + 1 < tokens.len() {
        let is_hash = matches!(&tokens[*pos], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            return;
        }
        let TokenTree::Group(group) = &tokens[*pos + 1] else {
            return;
        };
        if group.delimiter() != Delimiter::Bracket {
            return;
        }
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if let Some(TokenTree::Ident(name)) = inner.first() {
            if name.to_string() == "serde" {
                if let Some(TokenTree::Group(body)) = inner.get(1) {
                    parse_serde_attr(body.stream(), attrs);
                }
            }
        }
        *pos += 2;
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens[*pos], TokenTree::Ident(i) if i.to_string() == "pub") {
        *pos += 1;
        if *pos < tokens.len() {
            if let TokenTree::Group(g) = &tokens[*pos] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let mut container = SerdeAttrs::default();
    skip_attributes(&tokens, &mut pos, &mut container);
    skip_visibility(&tokens, &mut pos);

    let keyword = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("vendored serde_derive: expected struct/enum, found {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("vendored serde_derive: expected item name, found {other}"),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive: generic types are not supported (type `{name}`)");
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => panic!("vendored serde_derive: unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("vendored serde_derive: unsupported enum body: {other:?}"),
        },
        other => panic!("vendored serde_derive: expected struct or enum, found `{other}`"),
    };

    Item { name, shape, from: container.from, into: container.into }
}

/// Skips one field type: consumes tokens until a comma at angle-bracket
/// depth zero (commas inside `<...>` belong to the type).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0i32;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let mut attrs = SerdeAttrs::default();
        skip_attributes(&tokens, &mut pos, &mut attrs);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("vendored serde_derive: expected field name, found {other}"),
        };
        pos += 1;
        // ':'
        pos += 1;
        skip_type(&tokens, &mut pos);
        // ','
        pos += 1;
        fields.push((name, attrs.skip));
    }
    Fields::Named(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut skips = Vec::new();
    while pos < tokens.len() {
        let mut attrs = SerdeAttrs::default();
        skip_attributes(&tokens, &mut pos, &mut attrs);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
        // ','
        pos += 1;
        skips.push(attrs.skip);
    }
    Fields::Tuple(skips)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        let mut attrs = SerdeAttrs::default();
        skip_attributes(&tokens, &mut pos, &mut attrs);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("vendored serde_derive: expected variant name, found {other}"),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                parse_tuple_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                parse_named_fields(g.stream())
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while pos < tokens.len() {
            if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const VALUE: &str = "::serde::json::Value";
const MAP: &str = "::serde::json::Map";
const ERROR: &str = "::serde::json::Error";

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into) = &item.into {
        format!(
            "let __repr: {into} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_json(&__repr)"
        )
    } else {
        match &item.shape {
            Shape::Struct(fields) => serialize_fields(fields, &FieldAccess::SelfDot),
            Shape::Enum(variants) => serialize_enum(name, variants),
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> {VALUE} {{\n{body}\n}}\n\
         }}\n"
    )
}

/// How the generated code reaches the fields being serialized.
enum FieldAccess {
    /// `self.<name>` / `self.<index>` (struct impl body).
    SelfDot,
    /// Bound pattern variables `__f<index>` (enum match arm).
    Bound,
}

impl FieldAccess {
    fn named(&self, name: &str) -> String {
        match self {
            FieldAccess::SelfDot => format!("self.{name}"),
            FieldAccess::Bound => name.to_string(),
        }
    }

    fn tuple(&self, index: usize) -> String {
        match self {
            FieldAccess::SelfDot => format!("self.{index}"),
            FieldAccess::Bound => format!("__f{index}"),
        }
    }
}

/// Emits an expression evaluating to the serialized `Value` for a field set.
fn serialize_fields(fields: &Fields, access: &FieldAccess) -> String {
    match fields {
        Fields::Unit => format!("{VALUE}::Null"),
        Fields::Tuple(skips) => {
            let live: Vec<usize> = (0..skips.len()).filter(|i| !skips[*i]).collect();
            if live.len() == 1 && skips.len() == 1 {
                // Newtype: serialize transparently.
                format!("::serde::Serialize::to_json(&{})", access.tuple(0))
            } else {
                let items: Vec<String> = live
                    .iter()
                    .map(|i| format!("::serde::Serialize::to_json(&{})", access.tuple(*i)))
                    .collect();
                format!("{VALUE}::Array(::std::vec![{}])", items.join(", "))
            }
        }
        Fields::Named(fields) => {
            let mut out = format!("{{ let mut __m = {MAP}::new();\n");
            for (name, skip) in fields {
                if *skip {
                    continue;
                }
                out.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{name}\"), \
                     ::serde::Serialize::to_json(&{}));\n",
                    access.named(name)
                ));
            }
            out.push_str(&format!("{VALUE}::Object(__m) }}"));
            out
        }
    }
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for variant in variants {
        let vname = &variant.name;
        match &variant.fields {
            Fields::Unit => {
                arms.push_str(&format!(
                    "{name}::{vname} => {VALUE}::String(::std::string::String::from(\"{vname}\")),\n"
                ));
            }
            Fields::Tuple(skips) => {
                let binders: Vec<String> = (0..skips.len()).map(|i| format!("__f{i}")).collect();
                let inner = serialize_fields(&variant.fields, &FieldAccess::Bound);
                arms.push_str(&format!(
                    "{name}::{vname}({}) => {{ let mut __m = {MAP}::new(); \
                     __m.insert(::std::string::String::from(\"{vname}\"), {inner}); \
                     {VALUE}::Object(__m) }}\n",
                    binders.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let binders: Vec<String> = fields.iter().map(|(n, _)| n.clone()).collect();
                let inner = serialize_fields(&variant.fields, &FieldAccess::Bound);
                arms.push_str(&format!(
                    "{name}::{vname} {{ {} }} => {{ let mut __m = {MAP}::new(); \
                     __m.insert(::std::string::String::from(\"{vname}\"), {inner}); \
                     {VALUE}::Object(__m) }}\n",
                    binders.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from) = &item.from {
        format!(
            "let __repr = <{from} as ::serde::Deserialize>::from_json(__v)?;\n\
             ::std::result::Result::Ok(<{name} as ::std::convert::From<{from}>>::from(__repr))"
        )
    } else {
        match &item.shape {
            Shape::Struct(fields) => {
                deserialize_fields(fields, name, "__v", &format!("{name} (struct)"))
            }
            Shape::Enum(variants) => deserialize_enum(name, variants),
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_json(__v: &{VALUE}) -> ::std::result::Result<Self, {ERROR}> {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Emits a block evaluating to `Result<_, Error>` that builds `constructor`
/// from the value expression `source`.
fn deserialize_fields(fields: &Fields, constructor: &str, source: &str, what: &str) -> String {
    match fields {
        Fields::Unit => format!("{{ let _ = {source}; ::std::result::Result::Ok({constructor}) }}"),
        Fields::Tuple(skips) => {
            if skips.len() == 1 && !skips[0] {
                return format!(
                    "::std::result::Result::Ok({constructor}(\
                     ::serde::Deserialize::from_json({source})?))"
                );
            }
            let live_count = skips.iter().filter(|s| !**s).count();
            let mut args = Vec::new();
            let mut next = 0usize;
            for skip in skips {
                if *skip {
                    args.push("::std::default::Default::default()".to_string());
                } else {
                    args.push(format!("::serde::Deserialize::from_json(&__arr[{next}])?"));
                    next += 1;
                }
            }
            format!(
                "{{ let __arr = {source}.as_array().ok_or_else(|| \
                 {ERROR}::new(\"expected array for {what}\"))?;\n\
                 if __arr.len() != {live_count} {{\n\
                     return ::std::result::Result::Err({ERROR}::new(\
                     \"wrong arity for {what}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({constructor}({args})) }}",
                args = args.join(", ")
            )
        }
        Fields::Named(fields) => {
            let mut inits = Vec::new();
            for (fname, skip) in fields {
                if *skip {
                    inits.push(format!("{fname}: ::std::default::Default::default()"));
                } else {
                    inits.push(format!(
                        "{fname}: ::serde::Deserialize::from_json(\
                         __obj.get(\"{fname}\").unwrap_or(&{VALUE}::Null))?"
                    ));
                }
            }
            format!(
                "{{ let __obj = {source}.as_object().ok_or_else(|| \
                 {ERROR}::new(\"expected object for {what}\"))?;\n\
                 ::std::result::Result::Ok({constructor} {{ {inits} }}) }}",
                inits = inits.join(", ")
            )
        }
    }
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for variant in variants {
        let vname = &variant.name;
        match &variant.fields {
            Fields::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            fields => {
                let build = deserialize_fields(
                    fields,
                    &format!("{name}::{vname}"),
                    "__inner",
                    &format!("{name}::{vname}"),
                );
                data_arms.push_str(&format!(
                    "if let ::std::option::Option::Some(__inner) = __obj.get(\"{vname}\") {{\n\
                         return {build};\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "match __v {{\n\
             {VALUE}::String(__s) => {{\n\
                 match __s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                 ::std::result::Result::Err({ERROR}::new(\
                 \"unknown unit variant for {name}\"))\n\
             }}\n\
             {VALUE}::Object(__obj) => {{\n{data_arms}\
                 ::std::result::Result::Err({ERROR}::new(\
                 \"unknown data variant for {name}\"))\n\
             }}\n\
             _ => ::std::result::Result::Err({ERROR}::new(\
             \"expected string or object for enum {name}\")),\n\
         }}"
    )
}
