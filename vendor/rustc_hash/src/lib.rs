//! Vendored stand-in for the `rustc-hash` crate.
//!
//! Implements the Fx hash function (the Firefox/rustc multiply-xor hash) and
//! the `FxHashMap` / `FxHashSet` aliases. The algorithm matches upstream
//! `rustc-hash` 1.x; only the API surface this workspace uses is provided.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A speedy, non-cryptographic hasher used by rustc and Firefox.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: usize,
}

const SEED: usize = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: usize) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(std::mem::size_of::<usize>()) {
            let mut buf = [0u8; std::mem::size_of::<usize>()];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(usize::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as usize);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as usize);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as usize);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i as usize);
        self.add_to_hash((i >> 32) as usize);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.write_u64(i as u64);
        self.write_u64((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash as u64
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<V> = HashSet<V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"orchestra");
        b.write(b"orchestra");
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }
}
