//! Vendored stand-in for the `criterion` crate.
//!
//! Exposes the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkId`], benchmark groups, `criterion_group!` / `criterion_main!`
//! and [`black_box`] — backed by a simple wall-clock harness: a warm-up
//! phase followed by timed samples, reporting the mean and min/max
//! nanoseconds per iteration. No statistics, plotting or baseline storage.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// An identifier for one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    fn render(&self, group: &str) -> String {
        if self.parameter.is_empty() {
            format!("{group}/{}", self.function)
        } else {
            format!("{group}/{}/{}", self.function, self.parameter)
        }
    }
}

/// Anything usable as a benchmark name within a group: a string or a full
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Converts into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { function: self.to_string(), parameter: String::new() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { function: self, parameter: String::new() }
    }
}

/// Timing parameters shared by [`Criterion`] and its groups.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Applies command-line configuration. The vendored harness recognises
    /// `--quick` (shorter measurement) and ignores everything else,
    /// including the `--bench` flag cargo passes.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--quick") {
            self.settings.warm_up_time = Duration::from_millis(20);
            self.settings.measurement_time = Duration::from_millis(100);
        }
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { settings: self.settings.clone(), report: None };
        f(&mut bencher);
        bencher.print(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), settings: self.settings.clone(), _parent: self }
    }
}

/// A group of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the throughput annotation (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { settings: self.settings.clone(), report: None };
        f(&mut bencher, input);
        bencher.print(&id.render(&self.name));
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { settings: self.settings.clone(), report: None };
        f(&mut bencher);
        bencher.print(&id.into_benchmark_id().render(&self.name));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// A throughput annotation (accepted for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
struct Report {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iterations: u64,
}

/// Times closures; handed to each benchmark body.
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly through a warm-up phase and
    /// `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: discover a per-sample iteration count while warming
        // caches.
        let warm_up_end = Instant::now() + self.settings.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            warm_iters += 1;
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let samples = self.settings.sample_size.max(1);
        let budget = self.settings.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / samples as f64 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);

        let mut total_ns = 0.0;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        let mut iterations = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            total_ns += ns * iters_per_sample as f64;
            iterations += iters_per_sample;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
        }
        self.report =
            Some(Report { mean_ns: total_ns / iterations as f64, min_ns, max_ns, iterations });
    }

    fn print(&self, name: &str) {
        match &self.report {
            Some(r) => println!(
                "{name:<60} mean {:>12} min {:>12} max {:>12} ({} iters)",
                format_ns(r.mean_ns),
                format_ns(r.min_ns),
                format_ns(r.max_ns),
                r.iterations
            ),
            None => println!("{name:<60} (no measurement)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.settings.warm_up_time = Duration::from_millis(1);
        c.settings.measurement_time = Duration::from_millis(5);
        c.settings.sample_size = 2;
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(3u64) * 2);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_ids_render() {
        let id = BenchmarkId::new("f", 42);
        assert_eq!(id.render("g"), "g/f/42");
    }
}
