//! Vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides [`RngCore`], the [`Rng`] extension trait (`gen_range`,
//! `gen_bool`, `gen`), [`SeedableRng`] and [`rngs::StdRng`]. `StdRng` is a
//! xoshiro256++ generator seeded through SplitMix64, so streams are fully
//! deterministic per seed (the property the workload generator relies on);
//! it makes no attempt to match upstream `StdRng`'s exact stream.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A distribution-style range that can be sampled from an [`RngCore`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping is fine for the
                // simulation workloads here (bias < 2^-64).
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let fraction = hits as f64 / 20_000.0;
        assert!((fraction - 0.3).abs() < 0.02, "fraction {fraction}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let diverges = (0..10).any(|_| a.gen_range(0u64..u64::MAX) != b.gen_range(0u64..u64::MAX));
        assert!(diverges);
    }
}
