//! Vendored stand-in for the `proptest` crate.
//!
//! Supports the shapes this workspace's property tests use: the
//! [`strategy::Strategy`] trait over integer ranges, tuples and
//! `prop::collection::vec`, the `proptest!` / `prop_oneof!` /
//! `prop_assert!` / `prop_assert_eq!` macros and
//! [`test_runner::ProptestConfig`]. Inputs are generated from a fixed
//! per-case seed, so failures are reproducible; there is no shrinking — a
//! failing case panics with the case number so it can be replayed.

#![forbid(unsafe_code)]

pub mod strategy;

#[doc(hidden)]
pub use rand as __rand;

/// Runner configuration.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// The `prop` namespace mirrored from upstream (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Derives the deterministic per-case seed for case number `case`.
#[doc(hidden)]
pub fn case_seed(case: u32) -> u64 {
    0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1)
}

/// Declares property tests. Each function runs `config.cases` times with
/// fresh deterministically-seeded inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..config.cases {
                    let mut __rng =
                        <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                            $crate::case_seed(__case),
                        );
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                    let __run = || -> () { $body };
                    if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)).is_err() {
                        panic!(
                            "property {} failed at case {} (seed {:#x})",
                            stringify!($name),
                            __case,
                            $crate::case_seed(__case),
                        );
                    }
                }
            }
        )*
    };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated ranges respect their bounds.
        #[test]
        fn ranges_are_bounded(x in 3u8..10, v in prop::collection::vec(0u32..5, 0..8)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() < 8);
            for item in &v {
                prop_assert!(*item < 5);
            }
        }

        /// Tuple and mapped strategies compose.
        #[test]
        fn tuples_and_maps_compose(pair in (0u8..4, 0u8..4).prop_map(|(a, b)| (b, a))) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }

        /// prop_oneof! picks between alternatives.
        #[test]
        fn oneof_picks_an_alternative(x in prop_oneof![0i32..10, 100i32..110]) {
            prop_assert!((0..10).contains(&x) || (100..110).contains(&x));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strategy = (0u32..1000, 0u32..1000);
        let mut a = StdRng::seed_from_u64(crate::case_seed(3));
        let mut b = StdRng::seed_from_u64(crate::case_seed(3));
        assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
    }
}
