//! The strategy trait and the combinators the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// A uniform choice between boxed strategies of one value type; built by
/// `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Creates a choice over the given alternatives.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let index = rng.gen_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

/// The number of elements a generated collection may have.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange { min: range.start, max: range.end }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { min: len, max: len + 1 }
    }
}

/// A strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
