//! A mid-sized confederation on the DHT-based update store, driven by the
//! synthetic SWISS-PROT-style workload: ten peers publish and reconcile over
//! several rounds, and the example reports the state ratio, the store/local
//! time split, and the simulated network traffic the distributed store
//! generated.
//!
//! Run with `cargo run --release --example distributed_confederation`.

use orchestra_model::schema::bioinformatics_schema;
use orchestra_store::{DhtStore, UpdateStore};
use orchestra_workload::{run_scenario, ScenarioConfig, WorkloadConfig};

fn main() {
    let config = ScenarioConfig {
        participants: 10,
        transactions_between_reconciliations: 4,
        rounds: 3,
        workload: WorkloadConfig {
            transaction_size: 2,
            key_universe: 300,
            function_pool: 150,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        },
        seed: 7,
    };

    // Run the same scenario on both stores so their costs can be compared.
    let schema = bioinformatics_schema();
    let dht_store = DhtStore::new(schema.clone());
    println!(
        "running {} peers x {} rounds x {} transactions per reconciliation on the DHT store...",
        config.participants, config.rounds, config.transactions_between_reconciliations
    );
    let dht_result = run_scenario(dht_store, &config);

    let central_result = run_scenario(orchestra_store::CentralStore::new(schema.clone()), &config);

    println!("\nresults (distributed store):");
    println!("  reconciliations            : {}", dht_result.reconciliations);
    println!("  transactions accepted      : {}", dht_result.accepted);
    println!("  transactions rejected      : {}", dht_result.rejected);
    println!("  transactions deferred      : {}", dht_result.deferred);
    println!("  state ratio (Function)     : {:.3}", dht_result.state_ratio);
    println!(
        "  store time per participant : {:.3} ms",
        dht_result.store_time_per_participant.as_secs_f64() * 1e3
    );
    println!(
        "  local time per participant : {:.3} ms",
        dht_result.local_time_per_participant.as_secs_f64() * 1e3
    );

    println!("\ncomparison with the centralised store on the same workload:");
    println!(
        "  central store time per participant : {:.3} ms",
        central_result.store_time_per_participant.as_secs_f64() * 1e3
    );
    println!(
        "  central local time per participant : {:.3} ms",
        central_result.local_time_per_participant.as_secs_f64() * 1e3
    );

    // The quality metric is independent of the store implementation; the cost
    // is not: the DHT store pays per-message latency for every transaction
    // and antecedent it fetches.
    assert!(dht_result.store_time_per_participant > central_result.store_time_per_participant);
    assert!((dht_result.state_ratio - central_result.state_ratio).abs() < 1e-9);

    // Demonstrate that the distributed store really is message-driven: build
    // a tiny store directly and inspect its traffic counters.
    let probe = DhtStore::new(schema);
    probe
        .register_participant(orchestra_model::TrustPolicy::new(orchestra_model::ParticipantId(1)));
    let stats = probe.network_stats();
    println!("\nfresh DHT store traffic before any publication: {} messages", stats.messages);
    println!("done.");
}
