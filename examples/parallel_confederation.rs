//! The concurrency-ready store API in action: many participants drive one
//! shared `CentralStore` — first through explicit paged reconciliation
//! sessions, then through the system-level parallel confederation driver.
//!
//! Run with `cargo run --example parallel_confederation`.

use orchestra::{CdssSystem, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, Transaction, TrustPolicy, Tuple, Update};
use orchestra_store::{CentralStore, ReconciliationSession, UpdateStore};

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

fn main() {
    let schema = bioinformatics_schema();
    let n = 6u32;

    // ---- Part 1: the raw session API against a shared store reference ----
    let store = CentralStore::new(schema.clone());
    for i in 1..=n {
        let mut policy = TrustPolicy::new(ParticipantId(i));
        for j in 1..=n {
            if i != j {
                policy = policy.trusting(ParticipantId(j), 1u32);
            }
        }
        store.register_participant(policy);
    }

    // Six threads publish concurrently against the same `&store` — the
    // sharded catalogue serialises only the epoch allocation, exactly like
    // the paper's single epoch sequence.
    std::thread::scope(|scope| {
        for i in 1..=n {
            let store = &store;
            scope.spawn(move || {
                let me = ParticipantId(i);
                let txn = Transaction::from_parts(
                    me,
                    0,
                    vec![Update::insert(
                        "Function",
                        func("human", &format!("prot{i}"), "kinase"),
                        me,
                    )],
                )
                .unwrap();
                store.publish(me, vec![txn]).unwrap();
            });
        }
    });
    println!("{} transactions published from {} threads", store.catalog().log_len(), n);

    // One participant walks a paged reconciliation session by hand: open,
    // stream bounded batches, commit. Aborting (or dropping) the session
    // instead would leave the store byte-identical.
    let me = ParticipantId(1);
    let mut session = ReconciliationSession::open(&store, me).unwrap();
    println!(
        "session opened: recno {}, pinned to epoch {}, ≤ {} candidates pending",
        session.recno(),
        session.epoch(),
        session.pending_hint()
    );
    let mut accepted = Vec::new();
    let mut pages = 0;
    loop {
        let batch = session.next_batch(2).unwrap();
        if batch.is_empty() {
            break;
        }
        pages += 1;
        for candidate in &batch {
            accepted.extend(candidate.member_ids());
        }
    }
    let timing = session.commit(&accepted, &[]).unwrap();
    println!(
        "streamed {} candidates over {} pages, committed in {:?} store time",
        accepted.len(),
        pages,
        timing.total()
    );

    // ---- Part 2: the system-level parallel confederation driver ----
    let mut system = CdssSystem::new(schema.clone(), CentralStore::new(schema));
    for i in 1..=n {
        let mut policy = TrustPolicy::new(ParticipantId(i));
        for j in 1..=n {
            if i != j {
                policy = policy.trusting(ParticipantId(j), 1u32);
            }
        }
        system.add_participant(ParticipantConfig::new(policy)).unwrap();
    }
    for i in 1..=n {
        let id = ParticipantId(i);
        system
            .execute(
                id,
                vec![Update::insert("Function", func("rat", &format!("gene{i}"), "transport"), id)],
            )
            .unwrap();
        system.publish(id).unwrap();
    }

    // One thread per participant, all reconciling against the shared store.
    let reports = system.reconcile_all_parallel().unwrap();
    for (id, report) in &reports {
        println!(
            "participant {id}: accepted {} transaction(s) in reconciliation {}",
            report.accepted.len(),
            report.recno
        );
    }
    assert!((system.state_ratio_for("Function") - 1.0).abs() < 1e-9);
    println!("all {} participants converged (state ratio 1.0)", reports.len());
}
