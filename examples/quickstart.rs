//! Quickstart: two collaborating participants sharing protein-function data.
//!
//! Run with `cargo run --example quickstart`.

use orchestra::{CdssSystem, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TrustPolicy, Tuple, Update};
use orchestra_store::CentralStore;

fn main() {
    // Every participant shares the bioinformatics schema of the paper:
    // Function(organism, protein, function) with key (organism, protein),
    // plus a secondary XRef cross-reference relation.
    let schema = bioinformatics_schema();
    let store = CentralStore::new(schema.clone());
    let mut system = CdssSystem::new(schema, store);

    // Two labs that trust each other's curation at the same priority.
    let alice = ParticipantId(1);
    let bob = ParticipantId(2);
    system
        .add_participant(ParticipantConfig::new(TrustPolicy::new(alice).trusting(bob, 1u32)))
        .unwrap();
    system
        .add_participant(ParticipantConfig::new(TrustPolicy::new(bob).trusting(alice, 1u32)))
        .unwrap();

    // Alice curates a new protein-function fact locally.
    system
        .execute(
            alice,
            vec![
                Update::insert(
                    "Function",
                    Tuple::of_text(&["rat", "prot1", "immune-response"]),
                    alice,
                ),
                Update::insert(
                    "XRef",
                    Tuple::of_text(&["rat", "prot1", "genbank", "GB-0001"]),
                    alice,
                ),
            ],
        )
        .expect("local transaction applies");

    // Alice publishes and reconciles; Bob reconciles and imports her work.
    let alice_report = system.publish_and_reconcile(alice).expect("alice reconciles");
    let bob_report = system.publish_and_reconcile(bob).expect("bob reconciles");

    println!(
        "Alice reconciliation {}: accepted {} transactions",
        alice_report.recno,
        alice_report.accepted.len()
    );
    println!(
        "Bob reconciliation {}: accepted {} transactions, {} deferred",
        bob_report.recno,
        bob_report.accepted.len(),
        bob_report.deferred.len()
    );

    let bob_instance = system.participant(bob).expect("bob exists").instance();
    println!("Bob's Function relation now holds:");
    for (key, tuple) in bob_instance.relation_contents("Function") {
        println!("  {key} -> {tuple}");
    }
    println!("State ratio across the confederation: {:.3}", system.state_ratio());

    assert_eq!(bob_instance.total_tuples(), 2);
    assert!((system.state_ratio() - 1.0).abs() < 1e-9);
    println!("quickstart complete: both participants share identical state");
}
