//! Deferral and user-driven conflict resolution: when equally trusted
//! sources disagree, the conflicting transactions are deferred into conflict
//! groups with options, later updates touching the same keys are deferred
//! too (dirty values), and a user decision finally resolves the group.
//!
//! Run with `cargo run --example conflict_resolution`.

use orchestra::{CdssSystem, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TrustPolicy, Tuple, Update};
use orchestra_recon::ResolutionChoice;
use orchestra_store::CentralStore;

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

fn main() {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema.clone(), CentralStore::new(schema));

    let curator = ParticipantId(1);
    let lab_a = ParticipantId(2);
    let lab_b = ParticipantId(3);
    system
        .add_participant(ParticipantConfig::new(
            TrustPolicy::new(curator).trusting(lab_a, 1u32).trusting(lab_b, 1u32),
        ))
        .unwrap();
    system.add_participant(ParticipantConfig::new(TrustPolicy::new(lab_a))).unwrap();
    system.add_participant(ParticipantConfig::new(TrustPolicy::new(lab_b))).unwrap();

    // The two labs publish contradictory findings about the same protein.
    system
        .execute(
            lab_a,
            vec![Update::insert(
                "Function",
                func("zebrafish", "shh", "signal-transduction"),
                lab_a,
            )],
        )
        .unwrap();
    system.publish_and_reconcile(lab_a).unwrap();
    system
        .execute(
            lab_b,
            vec![Update::insert("Function", func("zebrafish", "shh", "cell-cycle-control"), lab_b)],
        )
        .unwrap();
    system.publish_and_reconcile(lab_b).unwrap();

    // The curator trusts both labs equally, so the conflict cannot be decided
    // automatically: both transactions are deferred.
    let report = system.publish_and_reconcile(curator).unwrap();
    println!(
        "first reconciliation: accepted {}, deferred {}",
        report.accepted.len(),
        report.deferred.len()
    );
    assert_eq!(report.deferred.len(), 2);
    {
        let participant = system.participant(curator).unwrap();
        assert_eq!(participant.deferred_conflicts().len(), 1);
        for group in participant.deferred_conflicts() {
            println!("conflict group {}:", group.key);
            for (i, option) in group.options.iter().enumerate() {
                println!("  option {i}: {} (from {:?})", option.description, option.transactions);
            }
        }
    }

    // Lab A revises its finding; the revision touches the dirty key, so it is
    // deferred as well instead of silently invalidating the pending conflict.
    system
        .execute(
            lab_a,
            vec![Update::modify(
                "Function",
                func("zebrafish", "shh", "signal-transduction"),
                func("zebrafish", "shh", "protein-folding"),
                lab_a,
            )],
        )
        .unwrap();
    system.publish_and_reconcile(lab_a).unwrap();
    let report = system.reconcile(curator).unwrap();
    println!("after lab A's revision: {} more transaction(s) deferred", report.deferred.len());
    assert_eq!(report.deferred.len(), 1);

    // The curator finally rules in favour of lab B's interpretation.
    let (group_key, chosen) = {
        let participant = system.participant(curator).unwrap();
        let group = participant
            .deferred_conflicts()
            .iter()
            .find(|g| {
                g.options.iter().any(|o| o.transactions.iter().any(|t| t.participant == lab_b))
            })
            .expect("the zebrafish conflict group exists");
        let idx = group
            .options
            .iter()
            .position(|o| o.transactions.iter().any(|t| t.participant == lab_b))
            .expect("lab B proposed an option");
        (group.key.clone(), idx)
    };
    println!("published transactions in the store so far: {}", system.store().catalog().log_len());

    let resolution = system
        .resolve_conflicts(
            curator,
            &[ResolutionChoice { group: group_key, chosen_option: Some(chosen) }],
        )
        .unwrap();
    println!(
        "resolution: accepted {:?}, rejected {:?}, still deferred {:?}",
        resolution.newly_accepted, resolution.newly_rejected, resolution.still_deferred
    );

    let instance = system.participant(curator).unwrap().instance();
    for (key, tuple) in instance.relation_contents("Function") {
        println!("  {key} -> {tuple}");
    }
    assert!(
        instance.contains_tuple_exact("Function", &func("zebrafish", "shh", "cell-cycle-control"))
    );
    println!("conflict resolved in favour of lab B");
}
