//! A faithful walkthrough of Figure 2 of the paper: three bioinformatics
//! warehouses reconciling updates to `F(organism, protein, function)` over
//! four epochs, with the trust policies of Figure 1.
//!
//! Run with `cargo run --example figure2_walkthrough`.

use orchestra::{CdssSystem, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TrustPolicy, Tuple, Update};
use orchestra_store::CentralStore;

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

fn print_instance(label: &str, system: &CdssSystem<CentralStore>, id: ParticipantId) {
    let instance = system.participant(id).expect("participant exists").instance();
    let rows: Vec<String> =
        instance.relation_contents("Function").iter().map(|(_, t)| t.to_string()).collect();
    println!("  {label}: {{{}}}", rows.join(", "));
}

fn main() {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema.clone(), CentralStore::new(schema));

    // Figure 1's trust graph: p1 trusts p2 and p3 equally; p2 prefers p1
    // (priority 2) over p3 (priority 1); p3 trusts only p2.
    let p1 = ParticipantId(1);
    let p2 = ParticipantId(2);
    let p3 = ParticipantId(3);
    system
        .add_participant(ParticipantConfig::new(
            TrustPolicy::new(p1).trusting(p2, 1u32).trusting(p3, 1u32),
        ))
        .unwrap();
    system
        .add_participant(ParticipantConfig::new(
            TrustPolicy::new(p2).trusting(p1, 2u32).trusting(p3, 1u32),
        ))
        .unwrap();
    system
        .add_participant(ParticipantConfig::new(TrustPolicy::new(p3).trusting(p2, 1u32)))
        .unwrap();

    println!("Epoch 0: all instances empty");

    // Epoch 1: p3 inserts (rat, prot1, cell-metab) in X3:0 and revises it to
    // immune in X3:1, then publishes and reconciles.
    system
        .execute(p3, vec![Update::insert("Function", func("rat", "prot1", "cell-metab"), p3)])
        .unwrap();
    system
        .execute(
            p3,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "cell-metab"),
                func("rat", "prot1", "immune"),
                p3,
            )],
        )
        .unwrap();
    system.publish_and_reconcile(p3).unwrap();
    println!("Epoch 1: p3 publishes X3:0, X3:1 and reconciles");
    print_instance("I3(F)|1", &system, p3);
    assert!(system
        .participant(p3)
        .unwrap()
        .instance()
        .contains_tuple_exact("Function", &func("rat", "prot1", "immune")));

    // Epoch 2: p2 inserts (mouse, prot2, immune) and (rat, prot1, cell-resp),
    // then publishes and reconciles. It trusts p3's updates but they conflict
    // with its own, so it rejects them.
    system
        .execute(p2, vec![Update::insert("Function", func("mouse", "prot2", "immune"), p2)])
        .unwrap();
    system
        .execute(p2, vec![Update::insert("Function", func("rat", "prot1", "cell-resp"), p2)])
        .unwrap();
    let report2 = system.publish_and_reconcile(p2).unwrap();
    println!(
        "Epoch 2: p2 publishes X2:0, X2:1 and reconciles (rejected {} conflicting transactions)",
        report2.rejected.len()
    );
    print_instance("I2(F)|2", &system, p2);
    let i2 = system.participant(p2).unwrap().instance();
    assert!(i2.contains_tuple_exact("Function", &func("mouse", "prot2", "immune")));
    assert!(i2.contains_tuple_exact("Function", &func("rat", "prot1", "cell-resp")));
    assert_eq!(report2.rejected.len(), 2, "p2 rejects X3:0 and X3:1");

    // Epoch 3: p3 reconciles a second time. It applies the mouse update from
    // p2 and rejects the rat tuple that is incompatible with its own state.
    let report3 = system.reconcile(p3).unwrap();
    println!(
        "Epoch 3: p3 reconciles again (accepted {}, rejected {})",
        report3.accepted.len(),
        report3.rejected.len()
    );
    print_instance("I3(F)|3", &system, p3);
    let i3 = system.participant(p3).unwrap().instance();
    assert!(i3.contains_tuple_exact("Function", &func("mouse", "prot2", "immune")));
    assert!(i3.contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
    assert_eq!(report3.accepted.len(), 1);
    assert_eq!(report3.rejected.len(), 1);

    // Epoch 4: p1 reconciles for the first time. It trusts p2 and p3 equally,
    // accepts the non-conflicting mouse update, and must defer the three
    // conflicting rat transactions until a user resolves them.
    let report4 = system.reconcile(p1).unwrap();
    println!(
        "Epoch 4: p1 reconciles (accepted {}, deferred {})",
        report4.accepted.len(),
        report4.deferred.len()
    );
    print_instance("I1(F)|4", &system, p1);
    let i1 = system.participant(p1).unwrap().instance();
    assert!(i1.contains_tuple_exact("Function", &func("mouse", "prot2", "immune")));
    assert_eq!(i1.total_tuples(), 1);
    assert_eq!(report4.accepted.len(), 1, "only the mouse transaction is applied");
    assert_eq!(report4.deferred.len(), 3, "X3:0, X3:1 and X2:1 are deferred");
    println!(
        "  DEFER: {}",
        report4.deferred.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
    );
    println!("  Conflict groups awaiting resolution: {}", report4.conflict_groups.len());

    println!("\nFigure 2 reproduced: every instance matches the paper's table.");
}
