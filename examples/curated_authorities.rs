//! Authority-ranked curation: a human-curated source (SWISS-PROT-like)
//! outranks an automatically populated one (GenBank-like), so conflicts
//! between them are resolved automatically in favour of the curated source —
//! the motivating bioinformatics scenario of the paper's introduction.
//!
//! Run with `cargo run --example curated_authorities`.

use orchestra::{CdssSystem, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{
    AcceptanceRule, ParticipantId, Predicate, TrustPolicy, Tuple, Update, UpdateKind,
};
use orchestra_store::CentralStore;

fn func(org: &str, prot: &str, f: &str) -> Tuple {
    Tuple::of_text(&[org, prot, f])
}

fn main() {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema.clone(), CentralStore::new(schema));

    // Three participants: a biologist's private warehouse, a human-curated
    // database and an automatically populated archive.
    let biologist = ParticipantId(1);
    let swissprot_like = ParticipantId(2);
    let genbank_like = ParticipantId(3);

    // The biologist trusts the curated source at priority 5 and the automated
    // archive at priority 1, and additionally refuses to import deletions
    // from the automated archive at all.
    let biologist_policy =
        TrustPolicy::new(biologist).trusting(swissprot_like, 5u32).with_rule(AcceptanceRule::new(
            Predicate::FromParticipant(genbank_like)
                .and(Predicate::Not(Box::new(Predicate::OfKind(UpdateKind::Delete)))),
            1u32,
        ));
    system.add_participant(ParticipantConfig::new(biologist_policy)).unwrap();
    system.add_participant(ParticipantConfig::new(TrustPolicy::new(swissprot_like))).unwrap();
    system.add_participant(ParticipantConfig::new(TrustPolicy::new(genbank_like))).unwrap();

    // Both sources publish a function for the same protein — and disagree.
    system
        .execute(
            genbank_like,
            vec![Update::insert("Function", func("human", "p53", "kinase-activity"), genbank_like)],
        )
        .unwrap();
    system.publish_and_reconcile(genbank_like).unwrap();

    system
        .execute(
            swissprot_like,
            vec![Update::insert(
                "Function",
                func("human", "p53", "transcription-factor"),
                swissprot_like,
            )],
        )
        .unwrap();
    system.publish_and_reconcile(swissprot_like).unwrap();

    // The automated archive also publishes an uncontroversial fact.
    system
        .execute(
            genbank_like,
            vec![Update::insert("Function", func("mouse", "brca1", "dna-repair"), genbank_like)],
        )
        .unwrap();
    system.publish_and_reconcile(genbank_like).unwrap();

    // The biologist reconciles: the curated value wins the conflict
    // automatically because it carries a strictly higher priority, and the
    // uncontroversial fact is imported too. Nothing needs to be deferred.
    let report = system.publish_and_reconcile(biologist).unwrap();
    println!(
        "biologist reconciliation: accepted {}, rejected {}, deferred {}",
        report.accepted.len(),
        report.rejected.len(),
        report.deferred.len()
    );
    let instance = system.participant(biologist).unwrap().instance();
    for (key, tuple) in instance.relation_contents("Function") {
        println!("  {key} -> {tuple}");
    }

    assert!(
        instance.contains_tuple_exact("Function", &func("human", "p53", "transcription-factor"))
    );
    assert!(!instance.contains_tuple_exact("Function", &func("human", "p53", "kinase-activity")));
    assert!(instance.contains_tuple_exact("Function", &func("mouse", "brca1", "dna-repair")));
    assert!(report.deferred.is_empty(), "priorities resolve the conflict automatically");

    // Later, the automated archive retracts the shared fact; the biologist's
    // policy refuses to import deletions from it, so the fact survives
    // locally (a deliberate divergence).
    system
        .execute(
            genbank_like,
            vec![Update::delete("Function", func("mouse", "brca1", "dna-repair"), genbank_like)],
        )
        .unwrap();
    system.publish_and_reconcile(genbank_like).unwrap();
    system.publish_and_reconcile(biologist).unwrap();
    let instance = system.participant(biologist).unwrap().instance();
    assert!(instance.contains_tuple_exact("Function", &func("mouse", "brca1", "dna-repair")));
    println!("the biologist's instance keeps the fact the automated archive deleted");
    println!("state ratio across the confederation: {:.3}", system.state_ratio_for("Function"));
}
