//! Durable store walkthrough: write-ahead logging, a process crash, and
//! byte-identical recovery.
//!
//! Run with `cargo run --example durable_store`.
//!
//! Three labs share data through a WAL-backed central store. Alice and Bob
//! publish divergent curations of the same protein; Carol trusts both equally,
//! so her reconciliation defers the conflict for human resolution. Before she
//! resolves it the process "crashes": every in-memory structure (catalogue,
//! instances, deferred conflicts) is dropped. The store is then recovered
//! from its durability directory (snapshot + WAL replay) and each participant
//! is rebuilt from the store alone — Carol's deferred conflict is still there
//! to resolve, and the confederation finishes exactly as if nothing had
//! happened.

use orchestra::{CdssSystem, Participant, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TrustPolicy, Tuple, Update};
use orchestra_recon::ResolutionChoice;
use orchestra_store::CentralStore;

fn main() {
    let schema = bioinformatics_schema();
    let dir = std::env::temp_dir().join(format!("orchestra-durable-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let alice = ParticipantId(1);
    let bob = ParticipantId(2);
    let carol = ParticipantId(3);
    let policies = [
        TrustPolicy::new(alice).trusting(bob, 1u32).trusting(carol, 1u32),
        TrustPolicy::new(bob).trusting(alice, 1u32).trusting(carol, 1u32),
        TrustPolicy::new(carol).trusting(alice, 1u32).trusting(bob, 1u32),
    ];

    // ---- Before the crash: a WAL-backed store records every operation. ----
    let store = CentralStore::durable(schema.clone(), &dir).expect("fresh durability directory");
    let mut system = CdssSystem::new(schema.clone(), store);
    for policy in &policies {
        system.add_participant(ParticipantConfig::new(policy.clone())).unwrap();
    }

    // Divergent curation: Alice and Bob publish different functions for
    // prot1. Carol trusts both at the same priority, so neither can win.
    system
        .execute(
            alice,
            vec![Update::insert(
                "Function",
                Tuple::of_text(&["rat", "prot1", "immune-response"]),
                alice,
            )],
        )
        .unwrap();
    system.publish(alice).unwrap();
    system
        .execute(
            bob,
            vec![Update::insert(
                "Function",
                Tuple::of_text(&["rat", "prot1", "cell-metabolism"]),
                bob,
            )],
        )
        .unwrap();
    system.publish(bob).unwrap();

    let report = system.reconcile(carol).unwrap();
    println!("carol reconciled: {} transaction(s) deferred", report.deferred.len());
    assert_eq!(system.participant(carol).unwrap().deferred_conflicts().len(), 1);

    // A compacting snapshot bounds the log; later records land in a fresh
    // WAL generation.
    let generation = system.store().snapshot().expect("snapshot succeeds");
    println!("snapshot installed, WAL generation {generation}");

    // Bob publishes more work that nobody has reconciled yet — it will be
    // replayed from the new generation's WAL.
    system
        .execute(
            bob,
            vec![Update::insert(
                "Function",
                Tuple::of_text(&["mouse", "prot2", "dna-repair"]),
                bob,
            )],
        )
        .unwrap();
    system.publish(bob).unwrap();

    let before = format!("{:?}", system.store().catalog());
    println!(
        "crash! dropping the catalogue, all instances and {} deferred conflict(s)",
        system.participant(carol).unwrap().deferred_conflicts().len()
    );
    drop(system);

    // ---- After the crash: recover the store, rebuild the participants. ----
    let store = CentralStore::recover(&dir).expect("store recovers");
    assert_eq!(format!("{:?}", store.catalog()), before, "recovered state must be identical");
    println!("store recovered byte-identically from snapshot + WAL replay");

    let rebuilt: Vec<Participant> = policies
        .iter()
        .map(|policy| {
            Participant::rebuild_from_store(
                schema.clone(),
                ParticipantConfig::new(policy.clone()),
                &store,
            )
            .unwrap()
        })
        .collect();
    let mut system = CdssSystem::new(schema, store);
    for participant in rebuilt {
        system.adopt_participant(participant).unwrap();
    }

    // Carol's deferred conflict survived the crash (rebuilt from the store's
    // undecided relevant transactions) and can be resolved now.
    let groups = system.participant(carol).unwrap().deferred_conflicts().to_vec();
    assert_eq!(groups.len(), 1, "deferred conflict must survive the crash");
    println!("carol's deferred conflict survived: {} option(s)", groups[0].options.len());
    let keep = groups[0]
        .options
        .iter()
        .position(|o| o.description.contains("cell-metabolism"))
        .expect("bob's option");
    system
        .resolve_conflicts(
            carol,
            &[ResolutionChoice { group: groups[0].key.clone(), chosen_option: Some(keep) }],
        )
        .unwrap();

    // Everyone catches up.
    system.reconcile(alice).unwrap();
    system.reconcile(bob).unwrap();
    system.reconcile(carol).unwrap();
    let carol_instance = system.participant(carol).unwrap().instance();
    assert!(carol_instance
        .contains_tuple_exact("Function", &Tuple::of_text(&["rat", "prot1", "cell-metabolism"])));
    assert!(carol_instance
        .contains_tuple_exact("Function", &Tuple::of_text(&["mouse", "prot2", "dna-repair"])));
    println!(
        "converged after recovery: state ratio {:.3} over Function (lower is more agreement)",
        system.state_ratio_for("Function")
    );

    std::fs::remove_dir_all(&dir).ok();
}
